//! Encoding planner: inspect how SWIFT squeezes a routing table into data-plane
//! tags — bit allocation per AS-path position, backup next-hop coverage, and
//! the wildcard rules a reroute would install (§5 of the paper).
//!
//! Run with: `cargo run --release --example encoding_planner`

use swift::bgp::AsLink;
use swift::core::encoding::{BackupTable, EncodingPlan, ReroutingPolicy, TwoStageTable};
use swift::core::EncodingConfig;
use swift::traces::{Corpus, TraceConfig};

fn main() {
    // Use one synthetic session as the routing table of the SWIFTED router.
    let corpus = Corpus::generate(TraceConfig {
        num_peers: 1,
        table_size: 30_000,
        bursts_per_peer_mean: 1.0,
        seed: 11,
        ..TraceConfig::default()
    });
    let session = corpus.materialize_session(0);
    let table = session.routing_table();
    println!(
        "Routing table: {} prefixes, {} peers\n",
        table.prefix_count(),
        table.peer_count()
    );

    for bits in [13u8, 18, 28] {
        let config = EncodingConfig {
            path_bits: bits,
            ..Default::default()
        };
        let plan = EncodingPlan::from_routing_table(&table, &config);
        println!(
            "path budget {bits:>2} bits -> {:>3} (position, link) codes, {} bits used, per-position bits {:?}",
            plan.total_encoded_links(),
            plan.total_path_bits(),
            plan.bits_per_position()
        );
    }

    let config = EncodingConfig::default();
    let policy = ReroutingPolicy::allow_all();
    let backups = BackupTable::compute(&table, config.max_depth, &policy);
    println!(
        "\nBackup next-hop coverage (depth {}): {:.1}% of protectable (prefix, position) pairs",
        config.max_depth,
        100.0 * backups.coverage(&table)
    );

    let mut two_stage = TwoStageTable::build(&table, &config, &policy);
    println!(
        "Two-stage table: {} stage-1 tags, {} default stage-2 rules",
        two_stage.stage1_len(),
        two_stage.stage2_len()
    );

    // Simulate an inference on the most-used position-1 link.
    let plan = two_stage.plan().clone();
    let busiest: Option<AsLink> = session
        .rib
        .iter()
        .filter_map(|(_, path)| path.link_at_position(1))
        .next();
    if let Some(link) = busiest {
        if plan.encodes(1, &link) {
            let installed = two_stage.install_reroute(&[link]);
            println!(
                "\nRerouting around {link}: {installed} stage-2 rules installed (independent of the {}-prefix table)",
                two_stage.stage1_len()
            );
        } else {
            println!("\nLink {link} is not encoded (too few prefixes) — per-prefix rerouting would be used.");
        }
    }
}
