//! Quickstart: SWIFT on the paper's Fig. 1 scenario.
//!
//! Builds the AS 1 border router's routing table, replays the burst of
//! withdrawals caused by the failure of link (5,6), and shows SWIFT inferring
//! the outage and rerouting every affected prefix with a handful of rules.
//!
//! Run with: `cargo run --release --example quickstart`

use swift::bgp::{AsLink, Asn, ElementaryEvent, PeerId};
use swift::bgpsim::Engine;
use swift::core::encoding::ReroutingPolicy;
use swift::core::{InferenceConfig, SwiftConfig, SwiftRouter};
use swift::topology::Topology;

fn main() {
    // The Fig. 1 topology: AS 6/7/8 originate 1k/2k/2k prefixes (scaled down
    // from the paper's 1k/10k/10k to keep the example instantaneous).
    let topology = Topology::figure1_with_counts(1_000, 2_000, 2_000);
    let mut engine = Engine::new(topology);
    engine.converge();

    // The SWIFTED router sits in AS 1 and monitors its session with AS 2.
    let vantage = Asn(1);
    let neighbor = Asn(2);
    let table = engine.vantage_routing_table(vantage);
    println!(
        "AS 1 router: {} prefixes over {} sessions",
        table.prefix_count(),
        table.peer_count()
    );

    let config = SwiftConfig {
        inference: InferenceConfig {
            // Scaled-down thresholds to match the example's table size.
            burst_start_threshold: 200,
            triggering_threshold: 500,
            use_history: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut router = SwiftRouter::new(config, table, ReroutingPolicy::allow_all());

    // Fail the remote link (5,6) and capture the burst AS 1 receives from AS 2.
    engine.monitor_session(vantage, neighbor);
    engine.fail_link(Asn(5), Asn(6));
    let burst = engine.take_burst(AsLink::new(5, 6));
    let stream = burst.to_message_stream(engine.topology(), 0, 1_000);
    println!(
        "Burst on session (AS1 <- AS2): {} withdrawals, {} updates",
        stream.total_withdrawals(),
        stream.total_announcements()
    );

    // Replay the burst through the SWIFTED router.
    let events: Vec<ElementaryEvent> = stream.elementary_events().collect();
    let peer = PeerId(neighbor.value());
    let actions = router.handle_stream(peer, events.iter());

    match actions.first() {
        Some(action) => {
            println!(
                "SWIFT inference after {} withdrawals ({} ms into the burst):",
                router
                    .engine(peer)
                    .unwrap()
                    .accepted()
                    .unwrap()
                    .withdrawals_seen,
                action.time / 1_000
            );
            println!(
                "  inferred links: {:?}",
                action
                    .links
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
            );
            println!("  prefixes rerouted: {}", action.predicted.len());
            println!("  data-plane rules installed: {}", action.rules_installed);
            let sample = action.predicted.iter().next().unwrap();
            println!(
                "  e.g. {} now forwarded via {:?}",
                sample,
                router.forwarding_next_hop(sample)
            );
        }
        None => println!("no inference was triggered (burst too small?)"),
    }
}
