//! Remote-outage simulation: generate a 300-AS Internet-like topology, fail a
//! random transit link, and compare how a vanilla router and a SWIFTED router
//! recover — the §6.2.2 / §7 scenario end to end.
//!
//! Run with: `cargo run --release --example remote_outage_sim`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swift::bgp::{PeerId, SECOND};
use swift::bgpsim::Engine;
use swift::core::encoding::ReroutingPolicy;
use swift::core::{InferenceConfig, SwiftConfig, SwiftRouter};
use swift::dataplane::{swifted_convergence, vanilla_convergence, FibCostModel};
use swift::topology::{Topology, TopologyConfig};

fn main() {
    let topology = Topology::generate(&TopologyConfig {
        num_ases: 300,
        prefixes_per_as: 10,
        seed: 2017,
        ..Default::default()
    });
    println!(
        "Generated topology: {} ASes, {} links, avg degree {:.1}, {} prefixes",
        topology.num_ases(),
        topology.links().len(),
        topology.graph().average_degree(),
        topology.total_prefixes()
    );

    let mut engine = Engine::new(topology.clone());
    let stats = engine.converge();
    println!(
        "Initial BGP convergence: {} messages processed",
        stats.messages_processed
    );

    // Pick a vantage AS and a remote transit link whose failure actually
    // withdraws prefixes on the monitored session. At the paper's average
    // degree most links have alternates (failing them yields update-only
    // bursts SWIFT need not handle), so trial-fail heavy candidate links on a
    // scratch engine until one produces a real withdrawal burst.
    let mut rng = StdRng::seed_from_u64(99);
    let (vantage, neighbor, failed) = 'search: loop {
        let vantage = swift::bgp::Asn(rng.gen_range(1..=300u32));
        let neighbors: Vec<_> = topology.graph().neighbors(vantage).collect();
        if neighbors.is_empty() {
            continue;
        }
        let neighbor = neighbors[0];
        let table = engine.vantage_routing_table(vantage);
        let mut heavy: Vec<_> = table
            .link_prefix_counts(PeerId(neighbor.value()))
            .into_iter()
            .filter(|(l, c)| *c >= 100 && !l.has_endpoint(vantage) && !l.has_endpoint(neighbor))
            .collect();
        // Tie-break on the link itself: link_prefix_counts is a HashMap and
        // equal counts are common, so a count-only sort would make the chosen
        // link (and the whole printout) vary across runs despite the seeds.
        heavy.sort_by_key(|(l, c)| (std::cmp::Reverse(*c), *l));
        for (link, _) in heavy.into_iter().take(5) {
            let mut trial = engine.clone();
            trial.monitor_session(vantage, neighbor);
            trial.fail_link(link.from, link.to);
            if trial
                .take_burst(link)
                .withdrawn_prefixes(trial.topology())
                .len()
                >= 200
            {
                break 'search (vantage, neighbor, link);
            }
        }
    };
    println!("Vantage: {vantage}, monitored session with {neighbor}, failing link {failed}");

    let table = engine.vantage_routing_table(vantage);
    let config = SwiftConfig {
        inference: InferenceConfig {
            burst_start_threshold: 100,
            triggering_threshold: 200,
            use_history: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut router = SwiftRouter::new(config, table, ReroutingPolicy::allow_all());

    engine.monitor_session(vantage, neighbor);
    engine.fail_link(failed.from, failed.to);
    let burst = engine.take_burst(failed);
    let stream = burst.to_message_stream(engine.topology(), 0, 2_000);
    let withdrawn = burst.withdrawn_prefixes(engine.topology());
    println!(
        "Burst observed: {} withdrawals / {} updates ({} prefixes withdrawn in total)",
        stream.total_withdrawals(),
        stream.total_announcements(),
        withdrawn.len()
    );

    let events: Vec<_> = stream.elementary_events().collect();
    let actions = router.handle_stream(PeerId(neighbor.value()), events.iter());
    let cost = FibCostModel::default();
    let affected: Vec<_> = withdrawn.iter().copied().collect();
    let vanilla = vanilla_convergence(&affected, &cost);

    match actions.first() {
        Some(action) => {
            println!(
                "SWIFT inferred {:?}",
                action
                    .links
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
            );
            println!(
                "  (ground truth failed link: {failed}; inference endpoints cover it: {})",
                action
                    .links
                    .iter()
                    .any(|l| l.has_endpoint(failed.from) || l.has_endpoint(failed.to))
            );
            let swifted = swifted_convergence(
                &affected,
                &[],
                router
                    .engine(PeerId(neighbor.value()))
                    .unwrap()
                    .accepted()
                    .unwrap()
                    .withdrawals_seen,
                action.rules_installed,
                &cost,
            );
            println!(
                "Convergence: vanilla BGP {:.2} s vs SWIFTED {:.3} s ({:.1}% faster)",
                vanilla.completion as f64 / SECOND as f64,
                swifted.completion as f64 / SECOND as f64,
                100.0 * (1.0 - swifted.completion as f64 / vanilla.completion.max(1) as f64)
            );
        }
        None => {
            println!(
                "The burst was too small to trigger SWIFT ({} withdrawals); vanilla BGP would take {:.2} s",
                stream.total_withdrawals(),
                vanilla.completion as f64 / SECOND as f64
            );
        }
    }
}
