//! Trace replay: run the SWIFT inference over a synthetic RouteViews-like
//! session (the §6.2/§6.3 methodology at small scale) and report per-burst
//! localisation and prediction accuracy.
//!
//! Run with: `cargo run --release --example trace_replay`

use swift::core::inference::InferenceEngine;
use swift::core::metrics::Classification;
use swift::core::InferenceConfig;
use swift::traces::{Corpus, TraceConfig};

fn main() {
    let corpus = Corpus::generate(TraceConfig {
        num_peers: 3,
        table_size: 20_000,
        bursts_per_peer_mean: 5.0,
        seed: 7,
        ..TraceConfig::default()
    });
    println!(
        "Corpus: {} sessions, {} bursts catalogued\n",
        corpus.num_sessions(),
        corpus.total_bursts()
    );

    let config = InferenceConfig::default();
    for s in 0..corpus.num_sessions() {
        let session = corpus.materialize_session(s);
        println!(
            "session {} ({} prefixes in the Adj-RIB-In, {} bursts):",
            session.meta.peer,
            session.rib.len(),
            session.bursts.len()
        );
        for (i, burst) in session.bursts.iter().enumerate() {
            let mut engine = InferenceEngine::from_interned(config.clone(), &session.rib);
            let events: Vec<_> = burst.stream.elementary_events().collect();
            let mut accepted = None;
            for ev in &events {
                if let (_, Some(r)) = engine.process(ev) {
                    accepted = Some(r);
                    break;
                }
            }
            match accepted {
                Some(result) => {
                    let predicted = result.prediction.affected();
                    let c =
                        Classification::from_sets(&predicted, &burst.withdrawn, session.rib.len());
                    println!(
                        "  burst {:>2}: {:>6} withdrawals | inferred {:?} after {:>5} | TPR {:>5.1}% FPR {:>4.1}%",
                        i,
                        burst.withdrawn.len(),
                        result.links.links.iter().map(|l| l.to_string()).collect::<Vec<_>>(),
                        result.withdrawals_seen,
                        100.0 * c.tpr(),
                        100.0 * c.fpr(),
                    );
                }
                None => println!(
                    "  burst {:>2}: {:>6} withdrawals | below the burst-detection threshold",
                    i,
                    burst.withdrawn.len()
                ),
            }
        }
        println!();
    }
}
