//! Integration tests of the trace-driven evaluation pipeline (corpus →
//! inference → metrics → encoding), mirroring what the experiment binaries do
//! at a scale suitable for CI.

use swift::core::encoding::{ReroutingPolicy, TwoStageTable};
use swift::core::inference::InferenceEngine;
use swift::core::metrics::Classification;
use swift::core::{EncodingConfig, InferenceConfig};
use swift::traces::{extract_bursts, Corpus, ExtractConfig, TraceConfig};

fn test_corpus() -> Corpus {
    Corpus::generate(TraceConfig {
        num_peers: 2,
        table_size: 20_000,
        bursts_per_peer_mean: 8.0,
        seed: 123,
        ..TraceConfig::default()
    })
}

#[test]
fn corpus_bursts_are_detected_by_the_paper_extraction() {
    let corpus = test_corpus();
    let session = corpus.materialize_session(0);
    let mut detected = 0;
    for burst in &session.bursts {
        let extracted = extract_bursts(&burst.stream, &ExtractConfig::default());
        if burst.withdrawn.len() >= 1_500 {
            assert!(
                !extracted.is_empty(),
                "a {}-withdrawal burst was not detected",
                burst.withdrawn.len()
            );
            // The extracted burst covers the bulk of the generated one.
            let biggest = extracted.iter().map(|b| b.withdrawals).max().unwrap();
            assert!(biggest * 10 >= burst.withdrawn.len() * 7);
            detected += 1;
        }
    }
    assert!(detected >= 1);
}

#[test]
fn inference_on_corpus_bursts_is_accurate_and_rarely_wrong() {
    let corpus = test_corpus();
    let config = InferenceConfig::default();
    let mut evaluated = 0;
    let mut good = 0;
    for s in 0..corpus.num_sessions() {
        let session = corpus.materialize_session(s);
        for burst in &session.bursts {
            let mut engine = InferenceEngine::from_interned(config.clone(), &session.rib);
            let mut accepted = None;
            for ev in burst.stream.elementary_events() {
                if let (_, Some(r)) = engine.process(&ev) {
                    accepted = Some(r);
                    break;
                }
            }
            let Some(result) = accepted else { continue };
            evaluated += 1;
            // The inferred links must include the synthetic failed link or a
            // link sharing an endpoint with it (paper: exact or adjacent).
            assert!(
                result.links.links.iter().any(|l| {
                    l.same_undirected(&burst.failed_link)
                        || l.has_endpoint(burst.failed_link.from)
                        || l.has_endpoint(burst.failed_link.to)
                }),
                "inference {:?} unrelated to failed link {}",
                result.links.links,
                burst.failed_link
            );
            let c = Classification::from_sets(
                &result.prediction.affected(),
                &burst.withdrawn,
                session.rib.len(),
            );
            if c.tpr() >= 0.5 && c.fpr() < 0.5 {
                good += 1;
            }
        }
    }
    assert!(evaluated >= 3, "not enough bursts were evaluated");
    assert!(
        good * 10 >= evaluated * 6,
        "only {good}/{evaluated} inferences landed in the good quadrant"
    );
}

#[test]
fn encoding_covers_most_predicted_prefixes_at_18_bits() {
    let corpus = test_corpus();
    let infer_config = InferenceConfig::default();
    let enc = EncodingConfig::default();
    let session = corpus.materialize_session(0);
    let table = session.routing_table();
    let two_stage = TwoStageTable::build(&table, &enc, &ReroutingPolicy::allow_all());
    assert_eq!(two_stage.stage1_len(), table.prefix_count());

    let mut checked = 0;
    for burst in &session.bursts {
        let mut engine = InferenceEngine::from_interned(infer_config.clone(), &session.rib);
        let mut accepted = None;
        for ev in burst.stream.elementary_events() {
            if let (_, Some(r)) = engine.process(&ev) {
                accepted = Some(r);
                break;
            }
        }
        let Some(result) = accepted else { continue };
        let perf =
            two_stage.encoding_performance(&result.prediction.predicted, &result.links.links);
        // Large bursts come from heavily-used links, which the 18-bit plan
        // encodes; the backup-provisioned fraction of the table bounds the rest.
        if burst.withdrawn.len() >= 2_500 {
            assert!(perf > 0.8, "encoding performance {perf} too low");
            checked += 1;
        }
    }
    assert!(checked >= 1, "no large burst was checked");
}

#[test]
fn corpus_generation_is_reproducible_across_calls() {
    let a = test_corpus();
    let b = test_corpus();
    assert_eq!(a.total_bursts(), b.total_bursts());
    let sa = a.materialize_session(1);
    let sb = b.materialize_session(1);
    assert_eq!(sa.rib, sb.rib);
    assert_eq!(sa.bursts.len(), sb.bursts.len());
    for (x, y) in sa.bursts.iter().zip(sb.bursts.iter()) {
        assert_eq!(x.withdrawn, y.withdrawn);
        assert_eq!(x.failed_link, y.failed_link);
    }
}
