//! Workspace smoke test: asserts the umbrella `swift` crate's re-exports are
//! reachable under their documented paths and that a minimal
//! [`swift::core::SwiftRouter`] round-trip runs — a fast bootstrap check that
//! the crate graph is wired together (manifests, re-exports, visibility)
//! without exercising the heavier end-to-end scenarios.

use swift::bgp::{AsLink, Asn, PeerId, RoutingTable, Timestamp, SECOND};
use swift::bgpsim::Engine;
use swift::core::encoding::ReroutingPolicy;
use swift::core::{InferenceConfig, SwiftConfig, SwiftRouter};
use swift::dataplane::FibCostModel;
use swift::topology::Topology;
use swift::traces::TraceConfig;

#[test]
fn umbrella_reexports_are_reachable() {
    // One value-level touch per re-exported crate, through the umbrella paths.
    let prefix: swift::bgp::Prefix = "10.0.0.0/8".parse().unwrap();
    assert_eq!(prefix.to_string(), "10.0.0.0/8");

    let topology = Topology::figure1();
    assert!(topology.graph().has_edge(Asn(5), Asn(6)));

    let engine = Engine::new(Topology::figure1());
    assert_eq!(engine.topology().graph().nodes().count(), 8);

    let config = TraceConfig::small();
    assert!(config.table_size > 0);

    let cost = FibCostModel::fast();
    assert!(cost.prefix_updates(1_000) > 0);

    let one_second: Timestamp = SECOND;
    assert_eq!(one_second, 1_000_000);
}

#[test]
fn minimal_swift_router_round_trip() {
    // An empty router is valid and takes no actions.
    let empty = SwiftRouter::new(
        SwiftConfig::default(),
        RoutingTable::new(),
        ReroutingPolicy::allow_all(),
    );
    assert!(empty.actions().is_empty());

    // The smallest meaningful round-trip: converge the Fig. 1 topology, fail
    // the remote link (5,6), and feed the resulting burst to a SwiftRouter at
    // the vantage AS 1. Thresholds are scaled to the tiny prefix counts.
    let mut engine = Engine::new(Topology::figure1_with_counts(60, 120, 120));
    engine.converge();
    let table = engine.vantage_routing_table(Asn(1));

    engine.monitor_session(Asn(1), Asn(2));
    engine.fail_link(Asn(5), Asn(6));
    let burst = engine.take_burst(AsLink::new(5, 6));

    let config = SwiftConfig {
        inference: InferenceConfig {
            burst_start_threshold: 10,
            triggering_threshold: 25,
            use_history: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut router = SwiftRouter::new(config, table, ReroutingPolicy::allow_all());
    let stream = burst.to_message_stream(engine.topology(), 0, 1_000);
    let events: Vec<_> = stream.elementary_events().collect();
    let actions = router.handle_stream(PeerId(2), events.iter());

    // The burst triggers at least one reroute action whose inferred region
    // touches the failed link.
    assert!(!actions.is_empty(), "burst produced no reroute action");
    assert!(actions.iter().any(|a| {
        a.links
            .iter()
            .any(|l| l.has_endpoint(Asn(5)) || l.has_endpoint(Asn(6)))
    }));
}
