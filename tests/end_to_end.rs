//! Workspace-level integration tests: the full SWIFT pipeline across crates —
//! topology generation → control-plane simulation → inference → encoding →
//! data-plane reroute — on the paper's Fig. 1 scenario and on generated
//! topologies.

use swift::bgp::{AsLink, Asn, PeerId, Prefix, SECOND};
use swift::bgpsim::Engine;
use swift::core::encoding::ReroutingPolicy;
use swift::core::{InferenceConfig, SwiftConfig, SwiftRouter};
use swift::dataplane::{swifted_convergence, vanilla_convergence, FibCostModel};
use swift::topology::{Topology, TopologyConfig};

fn fig1_router_and_burst() -> (
    SwiftRouter,
    Vec<swift::bgp::ElementaryEvent>,
    swift::bgp::PrefixSet,
) {
    let topology = Topology::figure1_with_counts(500, 1_000, 1_000);
    let mut engine = Engine::new(topology);
    engine.converge();
    let mut table = engine.vantage_routing_table(Asn(1));
    // As in the paper's Fig. 1, AS 1 prefers the routes learned from AS 2 for
    // commercial reasons; model that with a higher LOCAL_PREF so the forwarding
    // plane (and therefore the encoding plan) actually uses the (2 5 6 ...)
    // paths the outage will break.
    let boosted: Vec<_> = table
        .adj_rib_in(PeerId(2))
        .unwrap()
        .iter()
        .map(|(p, r)| (*p, r.attrs.clone()))
        .collect();
    for (prefix, attrs) in boosted {
        let attrs = attrs.with_local_pref(200);
        table.announce(
            PeerId(2),
            prefix,
            swift::bgp::Route::new(PeerId(2), attrs, 0),
        );
    }

    let config = SwiftConfig {
        inference: InferenceConfig {
            burst_start_threshold: 100,
            triggering_threshold: 250,
            use_history: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let router = SwiftRouter::new(config, table, ReroutingPolicy::allow_all());

    engine.monitor_session(Asn(1), Asn(2));
    engine.fail_link(Asn(5), Asn(6));
    let burst = engine.take_burst(AsLink::new(5, 6));
    let withdrawn = burst.withdrawn_prefixes(engine.topology());
    let stream = burst.to_message_stream(engine.topology(), 0, 1_000);
    (router, stream.elementary_events().collect(), withdrawn)
}

#[test]
fn fig1_outage_is_inferred_and_rerouted_end_to_end() {
    let (mut router, events, withdrawn) = fig1_router_and_burst();
    let actions = router.handle_stream(PeerId(2), events.iter());
    assert_eq!(actions.len(), 1, "exactly one reroute action for the burst");
    let action = &actions[0];

    // The inferred region covers the failed link (5,6): either the link itself
    // or links sharing an endpoint with it.
    assert!(
        action
            .links
            .iter()
            .any(|l| l.has_endpoint(Asn(5)) || l.has_endpoint(Asn(6))),
        "inferred links {:?} unrelated to the outage",
        action.links
    );

    // Rerouting is prefix-count independent: a handful of rules.
    assert!(action.rules_installed > 0);
    assert!(action.rules_installed <= 16);

    // The prediction covers the majority of the actually-withdrawn prefixes.
    let covered = action.predicted.intersection_len(&withdrawn);
    assert!(
        covered * 10 >= withdrawn.len() * 5,
        "only {covered} of {} withdrawn prefixes predicted",
        withdrawn.len()
    );

    // Safety (Lemma 3.3): no rerouted prefix is sent to a next-hop whose path
    // crosses an inferred link.
    let unsafe_set = router.unsafe_reroutes(&action.predicted, &action.links);
    assert!(unsafe_set.is_empty());
}

#[test]
fn swift_brings_convergence_under_two_seconds_where_bgp_needs_tens() {
    let (mut router, events, withdrawn) = fig1_router_and_burst();
    let actions = router.handle_stream(PeerId(2), events.iter());
    let action = &actions[0];
    let cost = FibCostModel::default();
    let affected: Vec<Prefix> = withdrawn.iter().copied().collect();

    // Scale the affected set up to the paper's 290k to compare convergence.
    let scaled: Vec<Prefix> = (0..290_000u32).map(Prefix::nth_slash24).collect();
    let vanilla = vanilla_convergence(&scaled, &cost);
    let swifted = swifted_convergence(&scaled, &[], 2_500, action.rules_installed, &cost);
    assert!(vanilla.completion > 100 * SECOND);
    assert!(swifted.completion < 2 * SECOND);
    assert!(1.0 - (swifted.completion as f64 / vanilla.completion as f64) > 0.98);

    // Also holds at the (smaller) actual scale of this test topology.
    let vanilla_small = vanilla_convergence(&affected, &cost);
    assert!(swifted.completion < vanilla_small.completion * 3);
}

#[test]
fn generated_topology_outages_never_produce_unsafe_reroutes() {
    // A sparser-than-average topology so that link failures actually
    // disconnect destinations from some neighbours (dense graphs always have
    // alternates and produce update-only bursts, which SWIFT need not handle).
    let topology = Topology::generate(&TopologyConfig {
        num_ases: 120,
        prefixes_per_as: 8,
        avg_degree: 2.6,
        seed: 42,
        ..Default::default()
    });
    let mut base = Engine::new(topology.clone());
    base.converge();

    // Pick (vantage, neighbour) sessions and fail links that carry many
    // prefixes on that session, so the failure actually produces a burst.
    let mut tested = 0;
    'outer: for vantage_id in (1u32..=120).step_by(3) {
        let vantage = Asn(vantage_id);
        let Some(neighbor) = topology.graph().neighbors(vantage).next() else {
            continue;
        };
        let table_probe = base.vantage_routing_table(vantage);
        let mut counts: Vec<_> = table_probe
            .link_prefix_counts(PeerId(neighbor.value()))
            .into_iter()
            .filter(|(l, c)| *c >= 100 && !l.has_endpoint(vantage) && !l.has_endpoint(neighbor))
            .collect();
        counts.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        for (link, _) in counts.into_iter().take(3) {
            let link = &link;
            let mut engine = base.clone();
            engine.monitor_session(vantage, neighbor);
            let table = engine.vantage_routing_table(vantage);
            engine.fail_link(link.from, link.to);
            let burst = engine.take_burst(*link);
            if burst.withdrawal_count(engine.topology()) < 20 {
                continue;
            }
            tested += 1;

            let config = SwiftConfig {
                inference: InferenceConfig {
                    burst_start_threshold: 10,
                    triggering_threshold: 20,
                    use_history: false,
                    ..Default::default()
                },
                encoding: swift::core::EncodingConfig {
                    min_prefixes_per_link: 50,
                    ..Default::default()
                },
            };
            let monitored = PeerId(neighbor.value());
            let mut router = SwiftRouter::new(config, table, ReroutingPolicy::allow_all());
            let stream = burst.to_message_stream(engine.topology(), 0, 500);
            let events: Vec<_> = stream.elementary_events().collect();
            let actions = router.handle_stream(monitored, events.iter());
            for action in &actions {
                // Safety (Lemma 3.3) for every prefix that was actually moved
                // to a backup next-hop: the backup's path must not cross any
                // inferred link. Prefixes with no eligible backup keep their
                // primary next-hop (and lose traffic exactly as vanilla BGP
                // would, which the paper accepts); they are not "reroutes".
                let unsafe_set = router.unsafe_reroutes(&action.predicted, &action.links);
                let moved_and_unsafe: Vec<_> = unsafe_set
                    .iter()
                    .filter(|p| router.forwarding_next_hop(p) != Some(monitored))
                    .collect();
                assert!(
                    moved_and_unsafe.is_empty(),
                    "unsafe reroute for failure of {link} observed at {vantage}"
                );
            }
            if tested >= 3 {
                break 'outer;
            }
        }
    }
    assert!(tested >= 1, "no failure produced an analysable burst");
}

#[test]
fn umbrella_crate_reexports_are_usable() {
    // Compile-time check that the re-exported paths line up, plus a tiny
    // runtime sanity check across three crates.
    let prefix: swift::bgp::Prefix = "10.0.0.0/8".parse().unwrap();
    assert_eq!(prefix.to_string(), "10.0.0.0/8");
    let topo = Topology::figure1_with_counts(5, 5, 5);
    assert_eq!(topo.num_ases(), 8);
    let cfg = SwiftConfig::default();
    assert_eq!(cfg.encoding.total_bits, 48);
}
