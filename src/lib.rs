//! # swift
//!
//! Umbrella crate of the SWIFT reproduction (Holterbach et al., *SWIFT:
//! Predictive Fast Reroute*, SIGCOMM 2017). It re-exports the workspace crates
//! so downstream users can depend on a single crate:
//!
//! * [`bgp`] — BGP substrate (prefixes, AS paths, messages, RIBs, sessions);
//! * [`topology`] — AS-level topology generation;
//! * [`bgpsim`] — policy-compliant control-plane simulator;
//! * [`traces`] — synthetic RouteViews/RIS-like trace corpus;
//! * [`core`] — the SWIFT inference algorithm and encoding scheme;
//! * [`runtime`] — the sharded multi-session runtime driving every peer
//!   engine concurrently;
//! * [`dataplane`] — data-plane convergence/downtime model;
//! * [`telemetry`] — metrics registry, mergeable log-linear histograms,
//!   sampled pipeline tracing, flight recorder and the JSON-lines exporter.
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the experiment harness reproducing every table and figure of the paper.

#![deny(missing_docs)]

pub use swift_bgp as bgp;
pub use swift_bgpsim as bgpsim;
pub use swift_core as core;
pub use swift_dataplane as dataplane;
pub use swift_runtime as runtime;
pub use swift_telemetry as telemetry;
pub use swift_topology as topology;
pub use swift_traces as traces;

pub use swift_core::{RerouteAction, SwiftConfig, SwiftRouter};
pub use swift_runtime::{RuntimeConfig, RuntimeReport, ShardedRuntime};
