//! Offline shim for the subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API used by the SWIFT workspace.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! drop-in, dependency-free implementation of exactly the surface the
//! workspace consumes:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator;
//! * [`SeedableRng::seed_from_u64`] — splitmix64-based seeding;
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer and
//!   float ranges) and [`Rng::gen_bool`].
//!
//! Streams differ from upstream `rand` (the shim does not reproduce ChaCha12
//! output), but every generator here is fully deterministic for a given seed,
//! which is the property the workspace actually relies on.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly random value of `Self` from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits to a float uniform in `[0, 1)` (53-bit precision).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen_range`] can sample uniformly from a range of.
///
/// Mirroring upstream `rand`, [`SampleRange`] has a single blanket impl per
/// range type over this trait, which is what lets integer-literal ranges
/// (`0..2_000`) unify with the surrounding arithmetic's integer type.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform sample from `[lo, hi]`. Panics if the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw =
                    ((u128::from(rng.next_u64()) * (u128::from(span) + 1)) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + unit_f64(rng.next_u64()) * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform sample from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256\*\*).
    ///
    /// Unlike upstream `rand`, the output stream is stable across shim
    /// versions — experiment seeds reproduce identical corpora forever.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// splitmix64 step, used to expand a 64-bit seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let u: usize = rng.gen_range(3..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.1));
    }

    #[test]
    fn range_samples_cover_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
