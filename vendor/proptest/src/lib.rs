//! Offline shim for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API used by the SWIFT
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate implements
//! a compact property-testing harness with the same surface syntax:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`];
//! * [`any`] for primitive integers, ranges as strategies, tuple strategies;
//! * [`collection::vec`] and [`collection::btree_set`];
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: no shrinking (a failing case reports the seed
//! and case index instead), and a fixed deterministic seed per test function
//! so CI failures always reproduce locally.

#![deny(missing_docs)]
#![warn(clippy::all)]

/// Number of cases each `proptest!` test function runs.
pub const NUM_CASES: u32 = 256;

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The deterministic random source driving case generation.
pub mod test_runner {
    /// A splitmix64-based generator; one instance drives a whole test fn.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the deterministic per-test generator.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5157_1f7c_a5e5_2017,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating arbitrary values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Types with a canonical full-domain strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Generates a uniformly random value over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `T`: `any::<u32>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// Collection strategies: `proptest::collection::vec`, `btree_set`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with *up to* `size.end - 1` distinct elements
    /// (duplicates generated by `element` collapse, as in upstream proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }
}

/// Defines property-based test functions.
///
/// Each function in the block is usually annotated `#[test]`; the example
/// below omits the attribute and calls the generated function directly so the
/// property actually runs as a doctest.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u32..1_000, b in 0u32..1_000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            let __strategies = ($($strat,)+);
            for __case in 0..$crate::NUM_CASES {
                #[allow(non_snake_case)]
                let ($(ref $arg,)+) = __strategies;
                $(let $arg = $crate::strategy::Strategy::sample($arg, &mut __rng);)+
                let __run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(msg) = __run() {
                    panic!("proptest case {__case} failed: {msg}");
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 5u32..10, b in 0u8..=3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!(b <= 3);
        }

        #[test]
        fn mapping_and_collections(
            v in crate::collection::vec(1u64..100, 0..12),
            s in crate::collection::btree_set(0u32..50, 1..20),
        ) {
            prop_assert!(v.len() < 12);
            prop_assert!(v.iter().all(|x| (1..100).contains(x)));
            prop_assert!(!s.is_empty() || s.len() < 20);
            let doubled = (1u64..100).prop_map(|x| x * 2);
            let d = Strategy::sample(&doubled, &mut TestRng::deterministic());
            prop_assert_eq!(d % 2, 0);
            prop_assert_ne!(d, 1);
        }

        #[test]
        fn tuples_and_any(pair in (any::<u32>(), 1u32..5)) {
            let (_, small) = pair;
            prop_assert!((1..5).contains(&small));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
