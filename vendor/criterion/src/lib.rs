//! Offline shim for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API used by the SWIFT
//! workspace benches.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! compact wall-clock harness with the same surface: [`Criterion`],
//! [`Bencher::iter`], [`Criterion::benchmark_group`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark is warmed up briefly, then timed over an adaptive number of
//! iterations (targeting ~200 ms of measurement), and the mean per-iteration
//! time is printed. There are no statistical comparisons or HTML reports.
//!
//! Passing `--quick-check` (e.g. `cargo bench -- --quick-check`) runs every
//! benchmark body exactly once without the measurement phase — a fast CI rot
//! check that the benches still compile and execute, not a measurement.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Returns `true` when `--quick-check` was passed on the command line.
fn quick_check() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().any(|a| a == "--quick-check"))
}

/// Re-exports of the most commonly used items, mirroring upstream.
pub mod prelude {
    pub use crate::{
        black_box, criterion_group, criterion_main, Bencher, BenchmarkGroup, BenchmarkId, Criterion,
    };
}

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    /// Mean per-iteration time of the measurement phase, filled by `iter`.
    elapsed_per_iter: Duration,
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed_per_iter: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Runs `f` repeatedly and records its mean wall-clock time.
    ///
    /// With `--quick-check`, runs `f` exactly once and records that single
    /// execution instead of entering the measurement phase.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run once to estimate cost (and fault in caches/pages).
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        if quick_check() {
            self.iterations = 1;
            self.elapsed_per_iter = once;
            return;
        }

        // Aim for ~200 ms of measurement, capped to keep huge bodies fast.
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.iterations = iters;
        self.elapsed_per_iter = total / u32::try_from(iters).unwrap_or(u32::MAX);
    }
}

/// Identifies one benchmark within a group, e.g. by its input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and an input descriptor.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the input parameter alone (the group supplies the name).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs a benchmark inside the group without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    /// Finishes the group (a no-op in the shim; consumes the group).
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new();
    f(&mut bencher);
    println!(
        "{label:<50} {:>12.3} µs/iter ({} iterations)",
        bencher.elapsed_per_iter.as_secs_f64() * 1e6,
        bencher.iterations,
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the `main` function for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut counter = 0u64;
        Criterion::default().bench_function("shim/smoke", |b| {
            b.iter(|| {
                counter += 1;
                black_box(counter)
            })
        });
        assert!(counter > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut hits = 0u32;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        for n in [1u32, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| {
                    hits += 1;
                    black_box(n)
                })
            });
        }
        group.finish();
        assert!(hits >= 2);
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
