//! AS business relationships and tier assignment.
//!
//! The paper derives relationships from the generated graph as follows (§6.1):
//! the three highest-degree ASes are Tier-1s and fully meshed; ASes directly
//! connected to a Tier-1 are Tier-2s; ASes connected to a Tier-2 but not a
//! Tier-1 are Tier-3s, and so on. Two connected ASes on the same level have a
//! peer-to-peer relationship; otherwise the lower-tier (larger tier number) AS
//! is the customer of the higher-tier one.

use crate::graph::AsGraph;
use std::collections::BTreeMap;
use swift_bgp::Asn;

/// The role of a neighbour relative to a given AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// The neighbour is a customer of this AS (this AS provides transit).
    Customer,
    /// The neighbour is a provider of this AS (this AS buys transit).
    Provider,
    /// The neighbour is a settlement-free peer.
    Peer,
}

impl Relationship {
    /// The relationship as seen from the other side of the link.
    pub fn inverse(&self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
        }
    }
}

/// Tier assignment and pairwise relationships for a topology.
#[derive(Debug, Clone, Default)]
pub struct TierMap {
    tiers: BTreeMap<Asn, usize>,
}

impl TierMap {
    /// Assigns tiers to every AS of `graph`.
    ///
    /// `tier1_count` highest-degree ASes become Tier-1 (tier number 1); every
    /// other AS gets `1 + (BFS distance to the nearest Tier-1)`. The paper uses
    /// `tier1_count = 3`. The Tier-1 clique is **not** added here — callers that
    /// want a full mesh (as the paper does) should call
    /// [`TierMap::mesh_tier1`] before building relationships.
    pub fn assign(graph: &AsGraph, tier1_count: usize) -> Self {
        let by_degree = graph.nodes_by_degree();
        let tier1: Vec<Asn> = by_degree.into_iter().take(tier1_count).collect();
        let levels = graph.bfs_levels(&tier1);
        let mut tiers = BTreeMap::new();
        for node in graph.nodes() {
            // Unreachable nodes (disconnected from every Tier-1) get a deep tier.
            let level = levels.get(&node).copied().unwrap_or(usize::MAX - 1);
            tiers.insert(node, level + 1);
        }
        TierMap { tiers }
    }

    /// Adds the missing edges of the Tier-1 full mesh to `graph`.
    pub fn mesh_tier1(&self, graph: &mut AsGraph) {
        let tier1: Vec<Asn> = self.ases_in_tier(1);
        for (i, a) in tier1.iter().enumerate() {
            for b in &tier1[i + 1..] {
                graph.add_edge(*a, *b);
            }
        }
    }

    /// The tier number of an AS (1 = Tier-1). `None` if unknown.
    pub fn tier(&self, asn: Asn) -> Option<usize> {
        self.tiers.get(&asn).copied()
    }

    /// All ASes in a given tier, ascending AS number.
    pub fn ases_in_tier(&self, tier: usize) -> Vec<Asn> {
        self.tiers
            .iter()
            .filter(|(_, t)| **t == tier)
            .map(|(a, _)| *a)
            .collect()
    }

    /// The largest tier number present.
    pub fn max_tier(&self) -> usize {
        self.tiers.values().copied().max().unwrap_or(0)
    }

    /// Number of ASes with an assigned tier.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Returns `true` if no tiers are assigned.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// The relationship of `neighbor` relative to `asn` for a direct adjacency:
    /// same tier → peer; deeper tier → customer; shallower tier → provider.
    ///
    /// Returns `None` if either AS has no tier assigned.
    pub fn relationship(&self, asn: Asn, neighbor: Asn) -> Option<Relationship> {
        let ta = self.tier(asn)?;
        let tb = self.tier(neighbor)?;
        Some(match tb.cmp(&ta) {
            std::cmp::Ordering::Equal => Relationship::Peer,
            std::cmp::Ordering::Greater => Relationship::Customer,
            std::cmp::Ordering::Less => Relationship::Provider,
        })
    }

    /// Iterates over `(asn, tier)` pairs in ascending AS number.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, usize)> + '_ {
        self.tiers.iter().map(|(a, t)| (*a, *t))
    }
}

impl FromIterator<(Asn, usize)> for TierMap {
    /// Builds a tier map from explicit `(asn, tier)` assignments — used by
    /// hand-crafted fixtures such as the paper's Fig. 1 topology.
    fn from_iter<T: IntoIterator<Item = (Asn, usize)>>(iter: T) -> Self {
        TierMap {
            tiers: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small 3-level topology:
    ///
    /// ```text
    ///   1 --- 2        (high-degree cores)
    ///   |     |
    ///   3     4        (connected to cores)
    ///   |     |
    ///   5     6        (stubs)
    /// ```
    fn small_graph() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_edge(1u32, 2u32);
        g.add_edge(1u32, 3u32);
        g.add_edge(2u32, 4u32);
        g.add_edge(3u32, 5u32);
        g.add_edge(4u32, 6u32);
        // Boost the degree of 1 and 2 so they are picked as Tier-1s.
        g.add_edge(1u32, 7u32);
        g.add_edge(2u32, 7u32);
        g
    }

    #[test]
    fn tier_assignment_levels() {
        let g = small_graph();
        let tiers = TierMap::assign(&g, 2);
        assert_eq!(tiers.tier(Asn(1)), Some(1));
        assert_eq!(tiers.tier(Asn(2)), Some(1));
        assert_eq!(tiers.tier(Asn(3)), Some(2));
        assert_eq!(tiers.tier(Asn(4)), Some(2));
        assert_eq!(tiers.tier(Asn(7)), Some(2));
        assert_eq!(tiers.tier(Asn(5)), Some(3));
        assert_eq!(tiers.tier(Asn(6)), Some(3));
        assert_eq!(tiers.max_tier(), 3);
        assert_eq!(tiers.len(), 7);
        assert!(!tiers.is_empty());
        assert_eq!(tiers.ases_in_tier(1), vec![Asn(1), Asn(2)]);
    }

    #[test]
    fn relationships_follow_tiers() {
        let g = small_graph();
        let tiers = TierMap::assign(&g, 2);
        // 1 and 2 are both Tier-1 → peers.
        assert_eq!(tiers.relationship(Asn(1), Asn(2)), Some(Relationship::Peer));
        // 3 is below 1 → 3 is a customer of 1; 1 is a provider of 3.
        assert_eq!(
            tiers.relationship(Asn(1), Asn(3)),
            Some(Relationship::Customer)
        );
        assert_eq!(
            tiers.relationship(Asn(3), Asn(1)),
            Some(Relationship::Provider)
        );
        assert_eq!(tiers.relationship(Asn(3), Asn(99)), None);
        assert_eq!(Relationship::Customer.inverse(), Relationship::Provider);
        assert_eq!(Relationship::Peer.inverse(), Relationship::Peer);
    }

    #[test]
    fn tier1_meshing_adds_missing_edges() {
        let mut g = AsGraph::new();
        // Three hubs not directly connected to each other.
        for hub in [1u32, 2, 3] {
            for leaf in 0..4u32 {
                g.add_edge(hub, 10 + hub * 10 + leaf);
            }
        }
        let tiers = TierMap::assign(&g, 3);
        assert_eq!(tiers.ases_in_tier(1), vec![Asn(1), Asn(2), Asn(3)]);
        assert!(!g.has_edge(Asn(1), Asn(2)));
        tiers.mesh_tier1(&mut g);
        assert!(g.has_edge(Asn(1), Asn(2)));
        assert!(g.has_edge(Asn(1), Asn(3)));
        assert!(g.has_edge(Asn(2), Asn(3)));
    }

    #[test]
    fn iter_yields_all() {
        let g = small_graph();
        let tiers = TierMap::assign(&g, 2);
        assert_eq!(tiers.iter().count(), 7);
        assert!(tiers.iter().all(|(_, t)| (1..=3).contains(&t)));
    }
}
