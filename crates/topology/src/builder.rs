//! Topology assembly: graph + tiers + relationships + originated prefixes.

use crate::graph::AsGraph;
use crate::hyperbolic::{HyperbolicConfig, HyperbolicGenerator};
use crate::relationships::{Relationship, TierMap};
use std::collections::BTreeMap;
use swift_bgp::{AsLink, Asn, Prefix};

/// Configuration of a generated topology (defaults match the paper, §6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyConfig {
    /// Number of ASes (paper: 1,000).
    pub num_ases: usize,
    /// Target average degree (paper: 8.4).
    pub avg_degree: f64,
    /// Power-law exponent of the degree distribution (paper: 2.1).
    pub gamma: f64,
    /// Number of highest-degree ASes forming the fully-meshed Tier-1 clique
    /// (paper: 3).
    pub tier1_count: usize,
    /// Number of prefixes each AS originates (paper: 20, 20k total).
    pub prefixes_per_as: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            num_ases: 1_000,
            avg_degree: 8.4,
            gamma: 2.1,
            tier1_count: 3,
            prefixes_per_as: 20,
            seed: 0x5717_f00d,
        }
    }
}

/// A complete AS-level topology: the graph, the tier/relationship labelling and
/// the prefixes each AS originates.
#[derive(Debug, Clone)]
pub struct Topology {
    graph: AsGraph,
    tiers: TierMap,
    origins: BTreeMap<Asn, Vec<Prefix>>,
}

impl Topology {
    /// Generates a topology according to `config` (hyperbolic graph, Tier-1
    /// meshing, tier-derived relationships, per-AS prefix origination).
    pub fn generate(config: &TopologyConfig) -> Self {
        let mut graph = HyperbolicGenerator::new(HyperbolicConfig {
            nodes: config.num_ases,
            target_avg_degree: config.avg_degree,
            gamma: config.gamma,
            seed: config.seed,
        })
        .generate();
        let tiers = TierMap::assign(&graph, config.tier1_count);
        tiers.mesh_tier1(&mut graph);
        let origins = Self::assign_prefixes(&graph, config.prefixes_per_as);
        Topology {
            graph,
            tiers,
            origins,
        }
    }

    /// Builds a topology from explicit parts (used by fixtures and tests).
    pub fn from_parts(graph: AsGraph, tiers: TierMap, origins: BTreeMap<Asn, Vec<Prefix>>) -> Self {
        Topology {
            graph,
            tiers,
            origins,
        }
    }

    /// The Fig. 1 topology of the paper with the paper's prefix counts
    /// (S6 = 1k, S7 = 10k, S8 = 10k). See [`Topology::figure1_with_counts`].
    pub fn figure1() -> Self {
        Self::figure1_with_counts(1_000, 10_000, 10_000)
    }

    /// The Fig. 1 topology of the paper with configurable prefix counts for
    /// AS 6, AS 7 and AS 8 (the other ASes originate 10 prefixes each so that
    /// the "ASes inject at least one prefix per adjacent link" soundness
    /// condition of Theorem 4.1 holds).
    ///
    /// Edges: 1–2, 1–3, 1–4, 2–5, 4–5, 5–6, 3–6, 6–7, 6–8.
    /// Tiers: {5, 6} are Tier-1; {2, 3, 4, 7, 8} are Tier-2; {1} is Tier-3.
    pub fn figure1_with_counts(s6: usize, s7: usize, s8: usize) -> Self {
        let mut graph = AsGraph::new();
        for (a, b) in [
            (1u32, 2u32),
            (1, 3),
            (1, 4),
            (2, 5),
            (4, 5),
            (5, 6),
            (3, 6),
            (6, 7),
            (6, 8),
        ] {
            graph.add_edge(a, b);
        }
        let tiers: TierMap = [
            (Asn(5), 1),
            (Asn(6), 1),
            (Asn(2), 2),
            (Asn(3), 2),
            (Asn(4), 2),
            (Asn(7), 2),
            (Asn(8), 2),
            (Asn(1), 3),
        ]
        .into_iter()
        .collect();

        let mut origins: BTreeMap<Asn, Vec<Prefix>> = BTreeMap::new();
        let mut next = 0u32;
        let mut take = |count: usize| -> Vec<Prefix> {
            let v: Vec<Prefix> = (0..count)
                .map(|i| Prefix::nth_slash24(next + i as u32))
                .collect();
            next += count as u32;
            v
        };
        for asn in [1u32, 2, 3, 4, 5] {
            origins.insert(Asn(asn), take(10));
        }
        origins.insert(Asn(6), take(s6));
        origins.insert(Asn(7), take(s7));
        origins.insert(Asn(8), take(s8));

        Topology {
            graph,
            tiers,
            origins,
        }
    }

    /// Deterministically assigns `per_as` prefixes to every AS, in AS order.
    fn assign_prefixes(graph: &AsGraph, per_as: usize) -> BTreeMap<Asn, Vec<Prefix>> {
        let mut origins = BTreeMap::new();
        let mut next = 0u32;
        for asn in graph.nodes() {
            let prefixes: Vec<Prefix> = (0..per_as)
                .map(|i| Prefix::nth_slash24(next + i as u32))
                .collect();
            next += per_as as u32;
            origins.insert(asn, prefixes);
        }
        origins
    }

    /// The AS graph.
    pub fn graph(&self) -> &AsGraph {
        &self.graph
    }

    /// The tier assignment.
    pub fn tiers(&self) -> &TierMap {
        &self.tiers
    }

    /// The prefixes originated by `asn` (empty slice if unknown).
    pub fn originated_prefixes(&self, asn: Asn) -> &[Prefix] {
        self.origins.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over `(asn, prefixes)` pairs in ascending AS number.
    pub fn origins(&self) -> impl Iterator<Item = (Asn, &[Prefix])> {
        self.origins.iter().map(|(a, p)| (*a, p.as_slice()))
    }

    /// The AS that originates `prefix`, if any.
    pub fn origin_of(&self, prefix: &Prefix) -> Option<Asn> {
        self.origins
            .iter()
            .find(|(_, ps)| ps.contains(prefix))
            .map(|(a, _)| *a)
    }

    /// Total number of originated prefixes.
    pub fn total_prefixes(&self) -> usize {
        self.origins.values().map(Vec::len).sum()
    }

    /// The relationship of `neighbor` relative to `asn`, if they are adjacent.
    pub fn relationship(&self, asn: Asn, neighbor: Asn) -> Option<Relationship> {
        if !self.graph.has_edge(asn, neighbor) {
            return None;
        }
        self.tiers.relationship(asn, neighbor)
    }

    /// All undirected AS links.
    pub fn links(&self) -> Vec<AsLink> {
        self.graph.edges().collect()
    }

    /// Number of ASes.
    pub fn num_ases(&self) -> usize {
        self.graph.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_structure() {
        let t = Topology::figure1_with_counts(10, 100, 100);
        assert_eq!(t.num_ases(), 8);
        assert_eq!(t.graph().edge_count(), 9);
        assert_eq!(t.originated_prefixes(Asn(6)).len(), 10);
        assert_eq!(t.originated_prefixes(Asn(7)).len(), 100);
        assert_eq!(t.originated_prefixes(Asn(8)).len(), 100);
        assert_eq!(t.total_prefixes(), 10 + 100 + 100 + 5 * 10);
        // All prefixes are distinct.
        let all: std::collections::HashSet<_> =
            t.origins().flat_map(|(_, ps)| ps.iter().copied()).collect();
        assert_eq!(all.len(), t.total_prefixes());
    }

    #[test]
    fn figure1_relationships() {
        let t = Topology::figure1();
        assert_eq!(t.relationship(Asn(5), Asn(6)), Some(Relationship::Peer));
        assert_eq!(
            t.relationship(Asn(1), Asn(2)),
            Some(Relationship::Provider),
            "AS 2 is a provider of AS 1"
        );
        assert_eq!(
            t.relationship(Asn(6), Asn(8)),
            Some(Relationship::Customer),
            "AS 8 is a customer of AS 6"
        );
        assert_eq!(t.relationship(Asn(1), Asn(6)), None, "not adjacent");
    }

    #[test]
    fn figure1_paper_prefix_counts() {
        let t = Topology::figure1();
        assert_eq!(t.originated_prefixes(Asn(6)).len(), 1_000);
        assert_eq!(t.originated_prefixes(Asn(7)).len(), 10_000);
        assert_eq!(t.originated_prefixes(Asn(8)).len(), 10_000);
    }

    #[test]
    fn origin_of_lookup() {
        let t = Topology::figure1_with_counts(5, 5, 5);
        let p6 = t.originated_prefixes(Asn(6))[0];
        assert_eq!(t.origin_of(&p6), Some(Asn(6)));
        assert_eq!(
            t.origin_of(&Prefix::nth_slash24(9_999_999 % 1000 + 100000)),
            None
        );
    }

    #[test]
    fn generated_topology_matches_config() {
        let config = TopologyConfig {
            num_ases: 150,
            prefixes_per_as: 3,
            seed: 11,
            ..Default::default()
        };
        let t = Topology::generate(&config);
        assert_eq!(t.num_ases(), 150);
        assert_eq!(t.total_prefixes(), 450);
        assert!(t.graph().is_connected());
        // Tier-1 clique is meshed.
        let tier1 = t.tiers().ases_in_tier(1);
        assert_eq!(tier1.len(), config.tier1_count);
        for a in &tier1 {
            for b in &tier1 {
                if a != b {
                    assert!(t.graph().has_edge(*a, *b));
                }
            }
        }
        // Every AS has a tier and at least one neighbour.
        for asn in t.graph().nodes() {
            assert!(t.tiers().tier(asn).is_some());
            assert!(t.graph().degree(asn) >= 1);
        }
    }

    #[test]
    fn generated_topology_is_deterministic() {
        let config = TopologyConfig {
            num_ases: 100,
            seed: 5,
            ..Default::default()
        };
        let a = Topology::generate(&config);
        let b = Topology::generate(&config);
        assert_eq!(a.links(), b.links());
        assert_eq!(
            a.originated_prefixes(Asn(50)),
            b.originated_prefixes(Asn(50))
        );
    }

    #[test]
    fn default_config_matches_paper() {
        let c = TopologyConfig::default();
        assert_eq!(c.num_ases, 1_000);
        assert_eq!(c.prefixes_per_as, 20);
        assert_eq!(c.tier1_count, 3);
    }
}
