//! The AS-level graph: nodes are ASes, edges are inter-AS adjacencies.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use swift_bgp::{AsLink, Asn};

/// An undirected AS-level graph.
///
/// Edges are stored undirected (canonical endpoint order) but can be queried
/// with either orientation. Node and edge iteration order is deterministic
/// (ascending AS number), which keeps every downstream simulation reproducible.
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    adjacency: BTreeMap<Asn, BTreeSet<Asn>>,
}

impl AsGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node without any edges (idempotent).
    pub fn add_node(&mut self, asn: impl Into<Asn>) {
        self.adjacency.entry(asn.into()).or_default();
    }

    /// Adds an undirected edge, creating the endpoints if necessary.
    /// Self-loops are ignored. Returns `true` if the edge was new.
    pub fn add_edge(&mut self, a: impl Into<Asn>, b: impl Into<Asn>) -> bool {
        let (a, b) = (a.into(), b.into());
        if a == b {
            return false;
        }
        let new1 = self.adjacency.entry(a).or_default().insert(b);
        let new2 = self.adjacency.entry(b).or_default().insert(a);
        new1 || new2
    }

    /// Removes an undirected edge. Returns `true` if it existed.
    pub fn remove_edge(&mut self, a: Asn, b: Asn) -> bool {
        let r1 = self
            .adjacency
            .get_mut(&a)
            .map(|s| s.remove(&b))
            .unwrap_or(false);
        let r2 = self
            .adjacency
            .get_mut(&b)
            .map(|s| s.remove(&a))
            .unwrap_or(false);
        r1 || r2
    }

    /// Returns `true` if the node exists.
    pub fn has_node(&self, asn: Asn) -> bool {
        self.adjacency.contains_key(&asn)
    }

    /// Returns `true` if the undirected edge exists.
    pub fn has_edge(&self, a: Asn, b: Asn) -> bool {
        self.adjacency
            .get(&a)
            .map(|s| s.contains(&b))
            .unwrap_or(false)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Degree of a node (0 if absent).
    pub fn degree(&self, asn: Asn) -> usize {
        self.adjacency.get(&asn).map(|s| s.len()).unwrap_or(0)
    }

    /// Average node degree (`2 * |E| / |V|`), 0 for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count() as f64
        }
    }

    /// Iterates over the nodes in ascending AS number.
    pub fn nodes(&self) -> impl Iterator<Item = Asn> + '_ {
        self.adjacency.keys().copied()
    }

    /// Iterates over a node's neighbours in ascending AS number.
    pub fn neighbors(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.adjacency
            .get(&asn)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Iterates over the undirected edges, each reported once with
    /// `from < to`, in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = AsLink> + '_ {
        self.adjacency.iter().flat_map(|(a, nbrs)| {
            nbrs.iter()
                .filter(move |b| *a < **b)
                .map(move |b| AsLink::new(*a, *b))
        })
    }

    /// The nodes sorted by decreasing degree (ties broken by AS number).
    pub fn nodes_by_degree(&self) -> Vec<Asn> {
        let mut nodes: Vec<Asn> = self.nodes().collect();
        nodes.sort_by_key(|a| (std::cmp::Reverse(self.degree(*a)), *a));
        nodes
    }

    /// Breadth-first distances (in hops) from `source` to every reachable node.
    pub fn bfs_distances(&self, source: Asn) -> BTreeMap<Asn, usize> {
        let mut dist = BTreeMap::new();
        if !self.has_node(source) {
            return dist;
        }
        dist.insert(source, 0);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            for v in self.neighbors(u) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Multi-source BFS levels: distance from the nearest of the `sources`.
    pub fn bfs_levels(&self, sources: &[Asn]) -> BTreeMap<Asn, usize> {
        let mut dist = BTreeMap::new();
        let mut queue = VecDeque::new();
        for s in sources {
            if self.has_node(*s) && !dist.contains_key(s) {
                dist.insert(*s, 0);
                queue.push_back(*s);
            }
        }
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            for v in self.neighbors(u) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Returns `true` if every node is reachable from every other node.
    pub fn is_connected(&self) -> bool {
        match self.nodes().next() {
            None => true,
            Some(first) => self.bfs_distances(first).len() == self.node_count(),
        }
    }

    /// The connected components, each a sorted list of ASes; components are
    /// ordered by their smallest member.
    pub fn connected_components(&self) -> Vec<Vec<Asn>> {
        let mut seen: BTreeSet<Asn> = BTreeSet::new();
        let mut components = Vec::new();
        for n in self.nodes() {
            if seen.contains(&n) {
                continue;
            }
            let comp: Vec<Asn> = self.bfs_distances(n).keys().copied().collect();
            seen.extend(comp.iter().copied());
            components.push(comp);
        }
        components
    }

    /// The degree distribution as (degree, node count) pairs sorted by degree.
    pub fn degree_histogram(&self) -> Vec<(usize, usize)> {
        let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
        for n in self.nodes() {
            *hist.entry(self.degree(n)).or_insert(0) += 1;
        }
        hist.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asn(i: u32) -> Asn {
        Asn(i)
    }

    fn triangle() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_edge(1u32, 2u32);
        g.add_edge(2u32, 3u32);
        g.add_edge(3u32, 1u32);
        g
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = AsGraph::new();
        assert!(g.add_edge(1u32, 2u32));
        assert!(!g.add_edge(2u32, 1u32), "edge is undirected");
        assert!(!g.add_edge(1u32, 1u32), "self loops ignored");
        assert!(g.has_edge(asn(1), asn(2)));
        assert!(g.has_edge(asn(2), asn(1)));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(asn(1), asn(2)));
        assert!(!g.remove_edge(asn(1), asn(2)));
        assert_eq!(g.edge_count(), 0);
        assert!(g.has_node(asn(1)), "nodes survive edge removal");
    }

    #[test]
    fn degree_and_average() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for n in g.nodes() {
            assert_eq!(g.degree(n), 2);
        }
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.degree(asn(99)), 0);
    }

    #[test]
    fn edges_reported_once_in_order() {
        let g = triangle();
        let edges: Vec<AsLink> = g.edges().collect();
        assert_eq!(
            edges,
            vec![AsLink::new(1, 2), AsLink::new(1, 3), AsLink::new(2, 3)]
        );
    }

    #[test]
    fn bfs_distances_line_graph() {
        let mut g = AsGraph::new();
        for i in 1..5u32 {
            g.add_edge(i, i + 1);
        }
        let d = g.bfs_distances(asn(1));
        assert_eq!(d[&asn(1)], 0);
        assert_eq!(d[&asn(3)], 2);
        assert_eq!(d[&asn(5)], 4);
    }

    #[test]
    fn multi_source_bfs() {
        let mut g = AsGraph::new();
        for i in 1..7u32 {
            g.add_edge(i, i + 1);
        }
        let levels = g.bfs_levels(&[asn(1), asn(7)]);
        assert_eq!(levels[&asn(1)], 0);
        assert_eq!(levels[&asn(7)], 0);
        assert_eq!(levels[&asn(4)], 3);
        assert_eq!(levels[&asn(2)], 1);
        assert_eq!(levels[&asn(6)], 1);
    }

    #[test]
    fn connectivity_and_components() {
        let mut g = triangle();
        assert!(g.is_connected());
        g.add_edge(10u32, 11u32);
        assert!(!g.is_connected());
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![asn(1), asn(2), asn(3)]);
        assert_eq!(comps[1], vec![asn(10), asn(11)]);
        assert!(AsGraph::new().is_connected(), "empty graph is connected");
    }

    #[test]
    fn nodes_by_degree_ordering() {
        let mut g = AsGraph::new();
        g.add_edge(1u32, 2u32);
        g.add_edge(1u32, 3u32);
        g.add_edge(1u32, 4u32);
        g.add_edge(2u32, 3u32);
        let order = g.nodes_by_degree();
        assert_eq!(order[0], asn(1));
        assert_eq!(order[1], asn(2));
        assert_eq!(*order.last().unwrap(), asn(4));
    }

    #[test]
    fn degree_histogram_counts() {
        let g = triangle();
        assert_eq!(g.degree_histogram(), vec![(2, 3)]);
    }
}
