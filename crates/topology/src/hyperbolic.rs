//! Random hyperbolic graph generation.
//!
//! The paper generates its 1,000-AS evaluation topology with the Hyperbolic
//! Graph Generator of Aldecoa, Orsini and Krioukov (2015): nodes are placed in
//! a hyperbolic disk (radial density controlled by the target power-law
//! exponent, angles uniform) and two nodes are adjacent when their hyperbolic
//! distance is below a connection radius. Degree heterogeneity emerges from the
//! radial coordinate — nodes near the centre become the high-degree "core"
//! (Internet-like), while peripheral nodes are stubs.
//!
//! Instead of deriving the connection radius analytically, [`HyperbolicGenerator`]
//! computes all pairwise distances and picks the radius that exactly yields the
//! requested average degree; this makes the target (8.4 in the paper) hit
//! deterministically for any seed.

use crate::graph::AsGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swift_bgp::Asn;

/// Configuration of the hyperbolic graph generator.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperbolicConfig {
    /// Number of ASes to generate (paper: 1,000).
    pub nodes: usize,
    /// Target average node degree (paper: 8.4, the CAIDA Oct-2016 value).
    pub target_avg_degree: f64,
    /// Target power-law exponent of the degree distribution (paper: 2.1).
    pub gamma: f64,
    /// RNG seed; the same seed always yields the same graph.
    pub seed: u64,
}

impl Default for HyperbolicConfig {
    fn default() -> Self {
        HyperbolicConfig {
            nodes: 1_000,
            target_avg_degree: 8.4,
            gamma: 2.1,
            seed: 0x5717_f00d,
        }
    }
}

/// A generator producing connected, degree-calibrated hyperbolic graphs.
#[derive(Debug, Clone)]
pub struct HyperbolicGenerator {
    config: HyperbolicConfig,
}

/// Polar coordinates of a node in the hyperbolic disk.
#[derive(Debug, Clone, Copy)]
struct Coord {
    r: f64,
    theta: f64,
}

impl HyperbolicGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: HyperbolicConfig) -> Self {
        HyperbolicGenerator { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &HyperbolicConfig {
        &self.config
    }

    /// Generates the graph. ASes are numbered `1..=nodes`.
    ///
    /// The result is always connected: after thresholding on the connection
    /// radius, any remaining components are attached to the giant component
    /// through their hyperbolically-closest node pair (mirroring what the
    /// reference generator achieves with its own post-processing).
    pub fn generate(&self) -> AsGraph {
        let n = self.config.nodes;
        let mut graph = AsGraph::new();
        for i in 1..=n {
            graph.add_node(i as u32);
        }
        if n < 2 {
            return graph;
        }

        let coords = self.sample_coordinates();
        let mut distances: Vec<(f64, usize, usize)> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                distances.push((hyperbolic_distance(&coords[i], &coords[j]), i, j));
            }
        }
        distances.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Pick exactly the number of edges that yields the target average degree.
        let target_edges = ((self.config.target_avg_degree * n as f64) / 2.0).round() as usize;
        let target_edges = target_edges.min(distances.len());
        for &(_, i, j) in distances.iter().take(target_edges) {
            graph.add_edge((i + 1) as u32, (j + 1) as u32);
        }

        self.connect_components(&mut graph, &coords);
        graph
    }

    /// Samples radial and angular coordinates.
    ///
    /// The radial density `ρ(r) ∝ sinh(α·r)` with `α = (γ − 1) / 2` produces a
    /// degree distribution with power-law exponent `γ` in the thresholded
    /// graph; angles are uniform.
    fn sample_coordinates(&self) -> Vec<Coord> {
        let n = self.config.nodes;
        let alpha = (self.config.gamma - 1.0) / 2.0;
        // Disk radius: the standard choice R0 ~ 2 ln N.
        let r0 = 2.0 * (n as f64).ln();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let cosh_max = (alpha * r0).cosh();
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                // Inverse CDF of ρ(r) ∝ sinh(α r) on [0, R0].
                let r = ((1.0 + u * (cosh_max - 1.0)).acosh()) / alpha;
                let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                Coord { r, theta }
            })
            .collect()
    }

    /// Attaches every non-giant component to the giant component by its
    /// hyperbolically-closest cross-component node pair.
    fn connect_components(&self, graph: &mut AsGraph, coords: &[Coord]) {
        loop {
            let components = graph.connected_components();
            if components.len() <= 1 {
                return;
            }
            // Identify the giant component.
            let giant_idx = components
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| c.len())
                .map(|(i, _)| i)
                .expect("components.len() > 1 checked above");
            let giant: std::collections::BTreeSet<Asn> =
                components[giant_idx].iter().copied().collect();

            // Attach each other component via its closest pair to the giant.
            for (idx, comp) in components.iter().enumerate() {
                if idx == giant_idx {
                    continue;
                }
                let mut best: Option<(f64, Asn, Asn)> = None;
                for a in comp {
                    for b in &giant {
                        let d = hyperbolic_distance(
                            &coords[(a.value() - 1) as usize],
                            &coords[(b.value() - 1) as usize],
                        );
                        if best.map(|(bd, _, _)| d < bd).unwrap_or(true) {
                            best = Some((d, *a, *b));
                        }
                    }
                }
                if let Some((_, a, b)) = best {
                    graph.add_edge(a, b);
                }
            }
        }
    }
}

/// Hyperbolic distance between two points in the native (polar) representation.
fn hyperbolic_distance(a: &Coord, b: &Coord) -> f64 {
    if (a.r - b.r).abs() < f64::EPSILON && (a.theta - b.theta).abs() < f64::EPSILON {
        return 0.0;
    }
    let dtheta = std::f64::consts::PI - ((std::f64::consts::PI - (a.theta - b.theta).abs()).abs());
    let arg = a.r.cosh() * b.r.cosh() - a.r.sinh() * b.r.sinh() * dtheta.cos();
    // Numerical noise can push the argument slightly below 1.
    arg.max(1.0).acosh()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> HyperbolicConfig {
        HyperbolicConfig {
            nodes: 200,
            target_avg_degree: 8.4,
            gamma: 2.1,
            seed,
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Coord { r: 3.0, theta: 0.5 };
        let b = Coord { r: 5.0, theta: 2.5 };
        let ab = hyperbolic_distance(&a, &b);
        let ba = hyperbolic_distance(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
        assert!(ab > 0.0);
        assert_eq!(hyperbolic_distance(&a, &a), 0.0);
    }

    #[test]
    fn generates_requested_node_count_and_degree() {
        let g = HyperbolicGenerator::new(small_config(1)).generate();
        assert_eq!(g.node_count(), 200);
        // Component-connection may add a handful of extra edges beyond the
        // exact target, so allow a small overshoot only.
        let avg = g.average_degree();
        assert!(
            (8.3..=9.5).contains(&avg),
            "average degree {avg} out of range"
        );
    }

    #[test]
    fn generated_graph_is_connected() {
        for seed in 0..3 {
            let g = HyperbolicGenerator::new(small_config(seed)).generate();
            assert!(
                g.is_connected(),
                "seed {seed} produced a disconnected graph"
            );
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = HyperbolicGenerator::new(HyperbolicConfig {
            nodes: 500,
            ..small_config(7)
        })
        .generate();
        let degrees: Vec<usize> = g.nodes().map(|n| g.degree(n)).collect();
        let max = *degrees.iter().max().unwrap();
        let avg = g.average_degree();
        // A heavy-tailed (power-law-like) distribution has a hub far above the
        // mean; for γ=2.1 and n=500 the largest hub is typically >5× the mean.
        assert!(
            (max as f64) > 4.0 * avg,
            "max degree {max} not much larger than average {avg}"
        );
        // And most nodes sit below the mean.
        let below = degrees.iter().filter(|d| (**d as f64) < avg).count();
        assert!(below * 2 > degrees.len());
    }

    #[test]
    fn same_seed_same_graph_different_seed_different_graph() {
        let a = HyperbolicGenerator::new(small_config(42)).generate();
        let b = HyperbolicGenerator::new(small_config(42)).generate();
        let c = HyperbolicGenerator::new(small_config(43)).generate();
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        let ec: Vec<_> = c.edges().collect();
        assert_eq!(ea, eb);
        assert_ne!(ea, ec);
    }

    #[test]
    fn tiny_graphs_are_handled() {
        let g = HyperbolicGenerator::new(HyperbolicConfig {
            nodes: 1,
            ..small_config(0)
        })
        .generate();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        let g2 = HyperbolicGenerator::new(HyperbolicConfig {
            nodes: 2,
            target_avg_degree: 1.0,
            ..small_config(0)
        })
        .generate();
        assert_eq!(g2.node_count(), 2);
        assert!(g2.is_connected());
    }

    #[test]
    fn default_config_matches_paper_parameters() {
        let c = HyperbolicConfig::default();
        assert_eq!(c.nodes, 1_000);
        assert!((c.target_avg_degree - 8.4).abs() < 1e-9);
        assert!((c.gamma - 2.1).abs() < 1e-9);
    }
}
