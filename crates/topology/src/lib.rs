//! # swift-topology
//!
//! AS-level topology generation for the SWIFT reproduction.
//!
//! The paper's controlled evaluation (§6.1) builds a 1,000-AS topology with the
//! *Hyperbolic Graph Generator* (Aldecoa, Orsini, Krioukov 2015), sets the
//! average node degree to 8.4 (the October-2016 CAIDA AS-level value), a
//! power-law degree exponent of 2.1, and then derives business relationships:
//! the three highest-degree ASes are fully-meshed Tier-1s, ASes adjacent to a
//! Tier-1 are Tier-2s, and so on; same-tier adjacencies are peer-to-peer, and
//! cross-tier adjacencies are customer-provider.
//!
//! This crate reimplements that pipeline:
//!
//! * [`hyperbolic`] — random hyperbolic graph generation with a degree-targeted
//!   connection radius;
//! * [`graph`] — the AS graph structure with adjacency and reachability queries;
//! * [`relationships`] — tier assignment and Gao–Rexford relationship labelling;
//! * [`builder`] — the [`Topology`](builder::Topology) bundle (graph + tiers +
//!   relationships + per-AS originated prefixes) plus hand-built fixtures such
//!   as the paper's Fig. 1 topology.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod builder;
pub mod graph;
pub mod hyperbolic;
pub mod relationships;

pub use builder::{Topology, TopologyConfig};
pub use graph::AsGraph;
pub use hyperbolic::{HyperbolicConfig, HyperbolicGenerator};
pub use relationships::{Relationship, TierMap};
