//! Log-linear mergeable histogram (HDR-style) with a bounded relative error.
//!
//! The runtime previously summarised latencies from a bounded ring of raw
//! samples ([`LatencyRecorder`](../../core/src/metrics.rs) in `swift-core`),
//! which evicts under load: merging shard windows approximates cross-shard
//! percentiles by whatever samples survived. This histogram never evicts.
//! Values are binned into log-linear buckets — [`GROUP_BITS`] sub-buckets per
//! power of two — so any recorded value is represented by its bucket floor
//! with a relative error of at most `1/2^GROUP_BITS` (3.125%), merges are a
//! bucketwise add (exactly associative and commutative), and memory is bounded
//! by the value range (≤ [`MAX_BUCKETS`] u64 slots), not the sample count.
//!
//! Reported percentiles are **bucket floors**: for any nearest-rank percentile
//! `e` of the exact sample multiset, the histogram reports `h` with
//! `h <= e` and `e - h < max(1, e >> GROUP_BITS)`; values below
//! `2 * 2^GROUP_BITS` (64) are exact. The proptests in
//! `tests/proptest_histogram.rs` exercise this bound against exact
//! percentiles on random sample sets.

/// Sub-bucket resolution: `2^GROUP_BITS` linear buckets per octave.
pub const GROUP_BITS: u32 = 5;

/// Sub-buckets per octave (32).
const GROUP: u64 = 1 << GROUP_BITS;

/// Upper bound on the bucket index space for `u64` values.
///
/// Values below `2 * GROUP` get one exact bucket each (`2 * GROUP` buckets);
/// each of the 58 remaining octaves contributes `GROUP` buckets.
pub const MAX_BUCKETS: usize = (2 * GROUP as usize) + (63 - GROUP_BITS as usize) * GROUP as usize;

/// A mergeable log-linear histogram over `u64` samples.
///
/// Tracks the exact `count`, `sum`, `min` and `max` alongside the bucket
/// array, so means and extrema carry no quantisation error at all.
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    /// Bucket counts, indexed by [`bucket_of`]; grown on demand so an idle
    /// histogram costs a few machine words.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Index of the bucket holding `v`.
///
/// Values below `2 * GROUP` map to themselves (exact); above that, the top
/// `GROUP_BITS + 1` significant bits select the bucket, giving `GROUP` linear
/// sub-buckets per power of two.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < 2 * GROUP {
        v as usize
    } else {
        let exponent = 63 - v.leading_zeros();
        let shift = exponent - GROUP_BITS;
        let sub = (v >> shift) - GROUP;
        ((shift as u64 + 1) * GROUP + sub) as usize
    }
}

/// Smallest value mapping to bucket `b` (the value the histogram reports for
/// any sample binned there).
#[inline]
pub fn bucket_floor(b: usize) -> u64 {
    let b = b as u64;
    if b < 2 * GROUP {
        b
    } else {
        let shift = b / GROUP - 1;
        let sub = b % GROUP;
        (GROUP + sub) << shift
    }
}

impl LogHistogram {
    /// An empty histogram. Allocates nothing until the first record.
    pub fn new() -> Self {
        LogHistogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of the same sample in one step.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = bucket_of(v);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`: a bucketwise add, so merging is exactly
    /// associative and commutative and loses nothing (unlike the sample-ring
    /// merge it replaces, which evicts down to a window).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of all recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Nearest-rank percentile, reported as the holding bucket's floor.
    ///
    /// `p` is clamped to `[0, 100]`. Returns 0 on an empty histogram. The
    /// result underestimates the exact nearest-rank value by strictly less
    /// than `max(1, exact >> GROUP_BITS)` — see the module docs.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest rank: the k-th smallest sample, k = ceil(p/100 * count),
        // clamped to at least 1 (p = 0 reports the minimum).
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                // The exact rank-th sample lies in this bucket; its floor can
                // only undershoot, never overshoot, and min tightens the
                // lowest bucket without breaking that property.
                return bucket_floor(b).max(self.min);
            }
        }
        self.max
    }

    /// Percentile summary in the recorded unit.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            max: self.max(),
            mean: self.mean(),
        }
    }
}

/// Point-in-time percentile summary of a [`LogHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples behind the summary.
    pub count: u64,
    /// Median (nearest-rank, bucket floor).
    pub p50: u64,
    /// 90th percentile (nearest-rank, bucket floor).
    pub p90: u64,
    /// 99th percentile (nearest-rank, bucket floor).
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
}

impl HistogramSummary {
    /// Rescales every value field by `divisor` (e.g. 1 000 for ns → µs),
    /// keeping the count.
    pub fn scaled_down(&self, divisor: u64) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            p50: self.p50 / divisor,
            p90: self.p90 / divisor,
            p99: self.p99 / divisor,
            max: self.max / divisor,
            mean: self.mean / divisor as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..(2 * GROUP) {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_floors_invert() {
        let mut values: Vec<u64> = Vec::new();
        for e in 0..64u32 {
            for off in [0u64, 1, 2, 17] {
                values.push((1u64 << e).saturating_add(off << e.saturating_sub(6)));
            }
        }
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of not monotone at {v}");
            prev = b;
            let floor = bucket_floor(b);
            assert!(floor <= v, "{floor} > {v}");
            assert_eq!(bucket_of(floor), b, "floor of {v} leaves bucket");
            // Width bound: the floor undershoots by at most v/32.
            assert!(v - floor <= (v >> GROUP_BITS).max(1));
        }
        assert_eq!(bucket_of(u64::MAX) + 1, MAX_BUCKETS);
    }

    #[test]
    fn exact_stats_and_percentiles_on_a_known_set() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.percentile(50.0), 50);
        // 99th rank is 99; 99 > 63 so it is binned: floor((99 >> 1) << 1).
        assert_eq!(h.percentile(99.0), 98);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 100);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 7919 + 1;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), all.percentile(p), "p{p}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        let p99 = h.percentile(99.0);
        assert!(p99 >= u64::MAX - (u64::MAX >> GROUP_BITS));
    }
}
