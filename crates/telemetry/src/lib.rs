//! swift-telemetry — the observability layer under the SWIFT runtime.
//!
//! SWIFT's headline claim is restoring connectivity within ~2 s of a remote
//! outage; defending that number requires knowing *where* pipeline time goes,
//! live, without stopping the run. This crate supplies the four pieces the
//! runtime wires through ingest → shard → applier:
//!
//! - [`Registry`] / [`Counter`] / [`Gauge`]: named atomic metrics the
//!   runtime's throughput counters migrate onto, snapshot-able mid-run.
//! - [`LogHistogram`]: a mergeable log-linear (HDR-style) histogram with a
//!   ≤ 1/32 relative-error bound that replaces the evicting sample ring for
//!   event and reroute latency — cross-shard merges are exact bucket adds.
//! - [`TraceStamp`] / [`TraceSampler`] / [`StageHistograms`]: sampled 1-in-N
//!   pipeline tracing attributing reroute latency to queue wait vs inference
//!   vs install.
//! - [`JsonObject`] / [`Json`] / [`JsonLinesWriter`] / [`append_trajectory`]:
//!   hand-rolled (dependency-free) JSON-lines export and the append-only
//!   `BENCH_*.json` run trajectory, with a parser so CI validates what the
//!   harnesses emit.
//! - [`FlightRecorder`] / [`DumpOnPanic`]: a fixed-size ring of recent
//!   lifecycle events dumped when a soak assertion fires.
//!
//! Like `swift-analysis`, the crate has zero dependencies: it sits under the
//! runtime's hot path and must never drag a build graph (or an
//! allocator-happy serializer) in with it.

pub mod export;
pub mod flight;
pub mod histogram;
pub mod registry;
pub mod trace;

pub use export::{
    append_trajectory, json_array, json_escape, summary_object, Json, JsonLinesWriter, JsonObject,
};
pub use flight::{DumpOnPanic, FlightEvent, FlightKind, FlightRecorder};
pub use histogram::{
    bucket_floor, bucket_of, HistogramSummary, LogHistogram, GROUP_BITS, MAX_BUCKETS,
};
pub use registry::{Counter, Gauge, Registry};
pub use trace::{StageHistograms, TraceSampler, TraceStamp};
