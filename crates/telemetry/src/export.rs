//! Hand-rolled JSON emission, validation, and trajectory files.
//!
//! The crate is dependency-free, so JSON support is written out by hand over
//! the closed schema we emit: a [`JsonObject`] builder for rendering, a
//! minimal recursive-descent [`Json`] parser so harnesses and CI can
//! round-trip-validate what they wrote (no python in the CI leg), a
//! [`JsonLinesWriter`] for periodic snapshot streams, and
//! [`append_trajectory`] for the append-only `BENCH_*.json` run history the
//! ROADMAP asks for.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Escapes `s` for inclusion in a JSON string literal (quotes not included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an iterator of pre-rendered JSON values as a JSON array.
pub fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Builder for a single-line JSON object with insertion-ordered fields.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, k: &str) {
        if self.buf.is_empty() {
            self.buf.push('{');
        } else {
            self.buf.push_str(", ");
        }
        self.buf.push('"');
        self.buf.push_str(&json_escape(k));
        self.buf.push_str("\": ");
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field, rendered with up to 3 decimal places (non-finite
    /// values become `null` — JSON has no NaN).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v:.3}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&json_escape(v));
        self.buf.push('"');
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON (nested object or
    /// array). The caller guarantees `raw` is valid JSON.
    pub fn raw(mut self, k: &str, raw: &str) -> Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    /// Finishes the object and returns the rendered string (`{}` if empty).
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            return String::from("{}");
        }
        self.buf.push('}');
        self.buf
    }
}

/// Renders a [`HistogramSummary`](crate::HistogramSummary) as a JSON object.
pub fn summary_object(s: &crate::HistogramSummary) -> String {
    JsonObject::new()
        .u64("count", s.count)
        .u64("p50", s.p50)
        .u64("p90", s.p90)
        .u64("p99", s.p99)
        .u64("max", s.max)
        .f64("mean", s.mean)
        .finish()
}

/// A parsed JSON value — the read half of the closed schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; our schema stays within 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with field order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object keys in document order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at offset {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs do not occur in our schema; map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so this is safe to
                // slice at char boundaries found via the leading byte).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or_else(|| "empty char".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected value at offset {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at offset {start}: {e}"))
}

/// A writer emitting one JSON object per line (the exporter's stream format).
#[derive(Debug)]
pub struct JsonLinesWriter {
    out: BufWriter<File>,
    lines: usize,
}

impl JsonLinesWriter {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonLinesWriter {
            out: BufWriter::new(File::create(path)?),
            lines: 0,
        })
    }

    /// Writes one pre-rendered JSON object as a line.
    pub fn emit(&mut self, line: &str) -> std::io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.lines += 1;
        Ok(())
    }

    /// Number of lines emitted so far.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Appends one run record to an append-only JSON-array trajectory file.
///
/// If the file is missing, empty, or does not parse as a JSON array (e.g. the
/// pre-trajectory `BENCH_soak.json` format), a fresh single-record array is
/// written; otherwise the record is spliced in before the closing bracket so
/// the history grows one entry per run. Returns the number of records now in
/// the file.
pub fn append_trajectory(path: &Path, record: &str) -> std::io::Result<usize> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let prior = match Json::parse(&existing) {
        Ok(Json::Arr(items)) => items.len(),
        _ => 0,
    };
    let mut out = String::from("[\n");
    if prior > 0 {
        // Keep the existing records verbatim: everything between the
        // outermost brackets.
        let open = existing.find('[').map_or(0, |i| i + 1);
        let close = existing.rfind(']').unwrap_or(existing.len());
        out.push_str(existing[open..close].trim_matches(['\n', ' ', '\t', '\r']));
        out.push_str(",\n");
    }
    out.push_str(record);
    out.push_str("\n]\n");
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    f.write_all(out.as_bytes())?;
    Ok(prior + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_ordered_fields() {
        let s = JsonObject::new()
            .u64("a", 1)
            .str("b", "x\"y")
            .f64("c", 1.5)
            .bool("d", true)
            .raw("e", "[1, 2]")
            .finish();
        assert_eq!(
            s,
            r#"{"a": 1, "b": "x\"y", "c": 1.500, "d": true, "e": [1, 2]}"#
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn parser_round_trips_builder_output() {
        let s = JsonObject::new()
            .u64("count", 42)
            .f64("mean", 1.25)
            .str("mode", "sharded/4")
            .raw("stages", "[{\"p50\": 3}]")
            .finish();
        let v = Json::parse(&s).expect("valid");
        assert_eq!(v.keys(), ["count", "mean", "mode", "stages"]);
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("mean").and_then(Json::as_f64), Some(1.25));
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("sharded/4"));
        let stages = v.get("stages").and_then(Json::as_array).expect("array");
        assert_eq!(stages[0].get("p50").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parser_unescapes_strings() {
        let v = Json::parse(r#""a\n\t\"\\ b\u0041""#).expect("valid");
        assert_eq!(v.as_str(), Some("a\n\t\"\\ bA"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" \\slash\u{1} ünïcode";
        let rendered = format!("\"{}\"", json_escape(nasty));
        assert_eq!(Json::parse(&rendered).expect("valid").as_str(), Some(nasty));
    }

    #[test]
    fn trajectory_appends_and_replaces_legacy_content() {
        let dir = std::env::temp_dir().join(format!("swift-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traj.json");

        // Legacy (non-array) content is replaced by a fresh trajectory.
        std::fs::write(&path, "not json").expect("seed");
        assert_eq!(append_trajectory(&path, "{\"run\": 1}").expect("append"), 1);
        assert_eq!(append_trajectory(&path, "{\"run\": 2}").expect("append"), 2);
        assert_eq!(append_trajectory(&path, "{\"run\": 3}").expect("append"), 3);

        let content = std::fs::read_to_string(&path).expect("read");
        let v = Json::parse(&content).expect("trajectory stays valid JSON");
        let runs: Vec<u64> = v
            .as_array()
            .expect("array")
            .iter()
            .map(|r| r.get("run").and_then(Json::as_u64).expect("run key"))
            .collect();
        assert_eq!(runs, [1, 2, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_lines_writer_counts_lines() {
        let dir = std::env::temp_dir().join(format!("swift-telemetry-jl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("metrics.jsonl");
        let mut w = JsonLinesWriter::create(&path).expect("create");
        w.emit(&JsonObject::new().u64("a", 1).finish())
            .expect("emit");
        w.emit(&JsonObject::new().u64("a", 2).finish())
            .expect("emit");
        w.flush().expect("flush");
        assert_eq!(w.lines(), 2);
        let content = std::fs::read_to_string(&path).expect("read");
        let parsed: Vec<Json> = content
            .lines()
            .map(|l| Json::parse(l).expect("each line parses"))
            .collect();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].get("a").and_then(Json::as_u64), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }
}
