//! Sampled pipeline tracing: per-stage latency attribution.
//!
//! One event in N carries a [`TraceStamp`] from ingest through the shard
//! worker and into the applier. Each stage boundary takes one precise clock
//! reading (the runtime's `EpochClock::precise`, a single `Instant::elapsed`
//! against the clock's base) and records the elapsed span into the matching
//! [`StageHistograms`] slot. The untraced N−1 events pay only a counter
//! compare, so tracing at 1-in-1024 is effectively free (measured against
//! `bench_ingest`'s dispatch loop in `bench_telemetry` and asserted < 2% in
//! `exp_soak`), while the sampled population still pins down where reroute
//! time goes: queue wait vs inference vs applier-queue wait vs install.

use crate::histogram::{HistogramSummary, LogHistogram};

/// The stamp a sampled event carries through the pipeline.
///
/// `ingest_ns` is the precise ingest-time reading; `last_ns` advances at each
/// stage boundary so every stage records only its own span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStamp {
    /// Precise clock reading when the producer stamped the event.
    pub ingest_ns: u64,
    /// Precise clock reading at the most recent stage boundary.
    pub last_ns: u64,
}

impl TraceStamp {
    /// A stamp taken at ingest time.
    pub fn at(now_ns: u64) -> Self {
        TraceStamp {
            ingest_ns: now_ns,
            last_ns: now_ns,
        }
    }

    /// Advances the stamp to `now_ns`, returning the span since the previous
    /// boundary (saturating: clock readings from different threads may race
    /// by a few nanoseconds).
    #[inline]
    pub fn advance(&mut self, now_ns: u64) -> u64 {
        let span = now_ns.saturating_sub(self.last_ns);
        self.last_ns = now_ns;
        span
    }
}

/// Deterministic 1-in-N sampler (N a power of two rounds down from any
/// requested interval; 0 disables sampling entirely).
#[derive(Debug, Clone)]
pub struct TraceSampler {
    mask: u64,
    seen: u64,
    enabled: bool,
}

impl TraceSampler {
    /// Samples every `interval`-th event. `interval` is rounded down to a
    /// power of two so the hot-path check is a mask, not a division;
    /// `interval == 0` disables tracing (every check is one branch).
    pub fn every(interval: usize) -> Self {
        let enabled = interval > 0;
        let pow2 = if enabled {
            match (interval as u64).checked_next_power_of_two() {
                Some(p) if p as usize > interval => p >> 1,
                Some(p) => p,
                None => 1 << 63,
            }
        } else {
            1
        };
        TraceSampler {
            mask: pow2 - 1,
            seen: 0,
            enabled,
        }
    }

    /// True when the next event should carry a stamp. Advances the sampler.
    #[inline]
    pub fn sample(&mut self) -> bool {
        if !self.enabled {
            return false;
        }
        let hit = self.seen & self.mask == 0;
        self.seen = self.seen.wrapping_add(1);
        hit
    }

    /// The effective sampling interval (1 when disabled).
    pub fn interval(&self) -> u64 {
        if self.enabled {
            self.mask + 1
        } else {
            1
        }
    }
}

/// Per-stage histograms for traced events, in nanoseconds.
///
/// The stages partition the ingest → install path: `queue_wait` (producer
/// buffer + shard queue), `inference` (the `SessionEngine::process` call),
/// `applier_wait` (shard → applier queue), `install` (rule install inside the
/// applier). Their sum for one event is its end-to-end pipeline latency.
#[derive(Debug, Clone, Default)]
pub struct StageHistograms {
    /// Ingest stamp → shard-worker dequeue.
    pub queue_wait: LogHistogram,
    /// Shard-worker dequeue → inference result.
    pub inference: LogHistogram,
    /// Inference result → applier dequeue.
    pub applier_wait: LogHistogram,
    /// Applier dequeue → rules installed.
    pub install: LogHistogram,
}

impl StageHistograms {
    /// Empty per-stage histograms.
    pub fn new() -> Self {
        StageHistograms::default()
    }

    /// Folds another set of stage histograms into this one (bucketwise adds,
    /// exact — see [`LogHistogram::merge`]).
    pub fn merge(&mut self, other: &StageHistograms) {
        self.queue_wait.merge(&other.queue_wait);
        self.inference.merge(&other.inference);
        self.applier_wait.merge(&other.applier_wait);
        self.install.merge(&other.install);
    }

    /// Number of events traced through the first stage.
    pub fn traced(&self) -> u64 {
        self.queue_wait.count()
    }

    /// True when no event was traced through any stage.
    pub fn is_empty(&self) -> bool {
        self.traced() == 0 && self.install.is_empty()
    }

    /// `(stage name, summary)` rows in pipeline order, in nanoseconds.
    pub fn rows(&self) -> [(&'static str, HistogramSummary); 4] {
        [
            ("queue_wait", self.queue_wait.summary()),
            ("inference", self.inference.summary()),
            ("applier_wait", self.applier_wait.summary()),
            ("install", self.install.summary()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_attributes_spans_to_stages() {
        let mut stamp = TraceStamp::at(100);
        assert_eq!(stamp.advance(150), 50);
        assert_eq!(stamp.advance(175), 25);
        assert_eq!(stamp.ingest_ns, 100);
        assert_eq!(stamp.advance(160), 0, "cross-thread skew saturates to 0");
    }

    #[test]
    fn sampler_hits_exactly_one_in_n() {
        let mut s = TraceSampler::every(8);
        let hits = (0..64).filter(|_| s.sample()).count();
        assert_eq!(hits, 8);
        assert_eq!(s.interval(), 8);
    }

    #[test]
    fn sampler_rounds_down_to_a_power_of_two() {
        assert_eq!(TraceSampler::every(1000).interval(), 512);
        assert_eq!(TraceSampler::every(1024).interval(), 1024);
        assert_eq!(TraceSampler::every(1).interval(), 1);
    }

    #[test]
    fn sampler_disabled_never_samples() {
        let mut s = TraceSampler::every(0);
        assert!((0..100).all(|_| !s.sample()));
        assert_eq!(s.interval(), 1);
    }

    #[test]
    fn first_event_is_always_sampled_when_enabled() {
        let mut s = TraceSampler::every(1024);
        assert!(s.sample(), "short smoke runs must trace at least one event");
    }

    #[test]
    fn merge_accumulates_all_stages() {
        let mut a = StageHistograms::new();
        let mut b = StageHistograms::new();
        a.queue_wait.record(10);
        a.inference.record(20);
        b.queue_wait.record(30);
        b.install.record(40);
        a.merge(&b);
        assert_eq!(a.traced(), 2);
        assert_eq!(a.inference.count(), 1);
        assert_eq!(a.install.count(), 1);
        let rows = a.rows();
        assert_eq!(rows[0].0, "queue_wait");
        assert_eq!(rows[3].1.max, 40);
    }
}
