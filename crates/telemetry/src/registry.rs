//! Named atomic counters and gauges, snapshot-able mid-run.
//!
//! The runtime's throughput numbers used to live in per-thread locals that
//! only became visible after `shutdown()` merged the worker reports. The
//! registry inverts that: every counter is an `Arc<AtomicU64>` registered
//! under a dotted name (`ingest.events`, `shard.2.batches`, ...), threads
//! keep a cloned handle and bump it locklessly, and [`Registry::snapshot`]
//! reads the whole set at any time without stopping the run. Snapshots are
//! not a cross-counter atomic cut — each value is a relaxed load — which is
//! the usual (and sufficient) contract for rate metrics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle.
///
/// Cloning shares the underlying atomic; increments are relaxed atomic adds
/// (one `lock xadd`, no mutex) so handles are safe to bump on hot paths.
///
/// Atomic-ordering audit: role `counter` — a pure statistic. Relaxed is
/// correct: no reader uses the value to gate access to other memory, so
/// the op carries no happens-before obligation.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways, plus a high-water helper.
///
/// Atomic-ordering audit: role `watermark` (the `fetch_max` high-water op
/// dominates the classification). Relaxed is correct for the same reason as
/// [`Counter`]: gauge values are reporting data, never a synchronization
/// signal.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is higher (lock-free `fetch_max`).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The name → atomic table behind [`Counter`] and [`Gauge`] handles.
///
/// Registration takes a short mutex; reads and increments never do. The
/// registry itself is cheaply cloneable (an `Arc` around the table) so the
/// runtime can hand it to harnesses for live snapshots.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    names: Arc<Mutex<BTreeMap<String, Arc<AtomicU64>>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut names = self
            .names
            .lock()
            .expect("registry mutex poisoned: a registration panicked");
        names.entry(name.to_string()).or_default().clone()
    }

    /// Returns the counter registered under `name`, creating it at zero on
    /// first use. Repeated calls share the same underlying atomic.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.cell(name))
    }

    /// Returns the gauge registered under `name`, creating it at zero on
    /// first use. A gauge and a counter of the same name share storage; keep
    /// names disjoint by convention (`*.depth` / `*.high` are gauges).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.cell(name))
    }

    /// Point-in-time values of every registered metric, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let names = self
            .names
            .lock()
            .expect("registry mutex poisoned: a registration panicked");
        names
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_storage_by_name() {
        let r = Registry::new();
        let a = r.counter("ingest.events");
        let b = r.counter("ingest.events");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.snapshot()["ingest.events"], 4);
    }

    #[test]
    fn gauge_record_max_is_a_high_water_mark() {
        let r = Registry::new();
        let g = r.gauge("shard.0.depth.high");
        g.record_max(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_live() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").add(2);
        let snap = r.snapshot();
        let keys: Vec<&str> = snap.keys().map(String::as_str).collect();
        assert_eq!(keys, ["a", "b"]);
        r.counter("a").inc();
        assert_eq!(r.snapshot()["a"], 3, "snapshots see live increments");
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let r = Registry::new();
        let c = r.counter("x");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker panicked");
        }
        assert_eq!(c.get(), 4000);
    }
}
