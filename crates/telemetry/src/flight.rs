//! Flight recorder: a fixed-size ring of recent lifecycle events.
//!
//! Churn-equivalence failures in the soak harness are painful to debug
//! because the interesting history (which sessions registered, which
//! barriers completed, which batches were shed) is gone by the time the
//! assertion fires. The flight recorder keeps the last `capacity` lifecycle
//! events in a ring — data-path events are *not* recorded, so the ring stays
//! off the hot path — and [`FlightRecorder::dump`] renders them
//! oldest-first. [`DumpOnPanic`] arms a scope guard that prints the dump when
//! unwinding, so a panicking soak run leaves its recent history on stderr.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Kinds of lifecycle events worth keeping for post-mortems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A session registered with the runtime.
    Register,
    /// A session tore down.
    Teardown,
    /// A barrier rendezvous completed.
    Barrier,
    /// An applier resynchronised its deferred RIB.
    Resync,
    /// Data batches were shed under `DropNewest` backpressure.
    Drop,
    /// A corpus convergence point was reached.
    Converged,
    /// The runtime began shutdown.
    Shutdown,
}

impl FlightKind {
    fn label(self) -> &'static str {
        match self {
            FlightKind::Register => "register",
            FlightKind::Teardown => "teardown",
            FlightKind::Barrier => "barrier",
            FlightKind::Resync => "resync",
            FlightKind::Drop => "drop",
            FlightKind::Converged => "converged",
            FlightKind::Shutdown => "shutdown",
        }
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Monotonic sequence number (never resets, so gaps after eviction show
    /// how much history the ring dropped).
    pub seq: u64,
    /// Caller-supplied timestamp in nanoseconds (the runtime passes its
    /// `EpochClock` reading so flight times line up with trace stamps).
    pub at_ns: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Free-form detail (`peer=3 shard=1`, `resync #4 applier=0`, ...).
    pub detail: String,
}

/// The ring itself. Cloning shares the buffer, so the runtime can hand one
/// recorder to every worker and the harness.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
    capacity: usize,
}

#[derive(Debug)]
struct FlightInner {
    ring: VecDeque<FlightEvent>,
    next_seq: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightInner {
                ring: VecDeque::with_capacity(capacity),
                next_seq: 0,
            })),
            capacity,
        }
    }

    /// Records one lifecycle event, evicting the oldest when full.
    pub fn record(&self, at_ns: u64, kind: FlightKind, detail: impl Into<String>) {
        let mut inner = self
            .inner
            .lock()
            .expect("flight recorder mutex poisoned: a recording thread panicked");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(FlightEvent {
            seq,
            at_ns,
            kind,
            detail: detail.into(),
        });
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner
            .lock()
            .expect("flight recorder mutex poisoned: a recording thread panicked")
            .next_seq
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.inner
            .lock()
            .expect("flight recorder mutex poisoned: a recording thread panicked")
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the retained history, oldest first, one event per line.
    pub fn dump(&self) -> String {
        let events = self.events();
        let total = self.recorded();
        let mut out = format!(
            "flight recorder: {} of {} lifecycle events retained\n",
            events.len(),
            total
        );
        for e in &events {
            out.push_str(&format!(
                "  #{:<6} t={:>12}ns {:<9} {}\n",
                e.seq,
                e.at_ns,
                e.kind.label(),
                e.detail
            ));
        }
        out
    }
}

/// Scope guard that dumps a [`FlightRecorder`] to stderr if the scope unwinds.
///
/// Arm it at the top of a harness run; on a clean exit the guard is disarmed
/// (or simply dropped without panicking) and prints nothing.
#[derive(Debug)]
pub struct DumpOnPanic {
    recorder: FlightRecorder,
    context: String,
}

impl DumpOnPanic {
    /// Arms the guard for `recorder`, tagging any dump with `context`.
    pub fn arm(recorder: &FlightRecorder, context: impl Into<String>) -> Self {
        DumpOnPanic {
            recorder: recorder.clone(),
            context: context.into(),
        }
    }
}

impl Drop for DumpOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("=== panic during {} ===", self.context);
            eprintln!("{}", self.recorder.dump());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.record(i * 10, FlightKind::Register, format!("peer={i}"));
        }
        let events = fr.events();
        assert_eq!(events.len(), 3);
        assert_eq!(fr.recorded(), 5);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4], "oldest evicted, order preserved");
        assert_eq!(events[0].detail, "peer=2");
    }

    #[test]
    fn dump_renders_every_retained_event() {
        let fr = FlightRecorder::with_capacity(8);
        fr.record(100, FlightKind::Barrier, "rendezvous #1");
        fr.record(250, FlightKind::Resync, "applier=0 resync #1");
        fr.record(300, FlightKind::Drop, "shard=2 shed=17");
        let dump = fr.dump();
        assert!(dump.contains("3 of 3"), "{dump}");
        for needle in ["barrier", "rendezvous #1", "resync", "drop", "shed=17"] {
            assert!(dump.contains(needle), "missing {needle}:\n{dump}");
        }
    }

    #[test]
    fn guard_is_silent_without_a_panic() {
        let fr = FlightRecorder::with_capacity(2);
        let guard = DumpOnPanic::arm(&fr, "test scope");
        fr.record(1, FlightKind::Shutdown, "clean");
        drop(guard);
        assert_eq!(fr.recorded(), 1);
    }

    #[test]
    fn clones_share_the_ring() {
        let fr = FlightRecorder::with_capacity(4);
        let clone = fr.clone();
        clone.record(5, FlightKind::Teardown, "peer=9");
        assert_eq!(fr.events().len(), 1);
        assert_eq!(fr.events()[0].kind, FlightKind::Teardown);
    }
}
