//! Quantifies the cross-shard percentile bias of the ring-buffer
//! [`LatencyRecorder`](swift_core::LatencyRecorder) against the
//! [`LogHistogram`] that replaced it as the reported number.
//!
//! The ring evicts oldest-first, so once a shard records more samples than
//! its capacity, the summary percentiles describe only the *recent* window.
//! On skewed distributions — a latency spike early in the run, or shards with
//! very different latency profiles — the merged-ring percentile can miss the
//! tail entirely. The histogram never evicts and merges bucketwise, so it
//! stays within its `1/2^GROUP_BITS` relative-error bound no matter how the
//! samples are distributed over time or across shards.

use swift_core::LatencyRecorder;
use swift_telemetry::{LogHistogram, GROUP_BITS};

/// Exact nearest-rank percentile over the full sample multiset — the ground
/// truth both recorders are judged against.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Two shards, small rings, and a latency spike confined to the start of
/// shard A's run — the shape the ring is worst at.
///
/// * Shard A: 500 slow samples (8 000–8 499, e.g. a cold start or a resync
///   storm), then 9 500 fast ones (~40–55).
/// * Shard B: 10 000 steady samples (~120–151).
/// * Ring capacity 256 per shard: by the end of the run shard A's window
///   holds only fast samples — the spike has been fully evicted.
#[test]
fn ring_forgets_an_early_spike_the_histogram_keeps() {
    const RING: usize = 256;
    let mut ring_a = LatencyRecorder::new(RING);
    let mut ring_b = LatencyRecorder::new(RING);
    let mut hist_a = LogHistogram::new();
    let mut hist_b = LogHistogram::new();
    let mut all: Vec<u64> = Vec::new();

    for i in 0..10_000u64 {
        let v = if i < 500 { 8_000 + i } else { 40 + i % 16 };
        ring_a.record(v);
        hist_a.record(v);
        all.push(v);
    }
    for i in 0..10_000u64 {
        let v = 120 + i % 32;
        ring_b.record(v);
        hist_b.record(v);
        all.push(v);
    }

    // Cross-shard merge, as the runtime does at shutdown.
    ring_a.merge(&ring_b);
    hist_a.merge(&hist_b);
    all.sort_unstable();

    // Lifetime aggregates are exact in both (the ring only approximates
    // percentiles, never count/max/mean).
    assert_eq!(ring_a.recorded(), 20_000);
    assert_eq!(hist_a.count(), 20_000);
    assert_eq!(ring_a.summary().max, hist_a.max());
    assert_eq!(hist_a.max(), 8_499);

    let ring = ring_a.summary();
    for (p, ring_value) in [(50.0, ring.p50), (99.0, ring.p99)] {
        let exact = exact_percentile(&all, p);
        let hist = hist_a.percentile(p);
        // The histogram holds its documented bound: a bucket floor at most
        // 1/2^GROUP_BITS below the exact nearest-rank value.
        assert!(hist <= exact, "p{p}: histogram {hist} > exact {exact}");
        assert!(
            exact - hist <= (exact >> GROUP_BITS).max(1),
            "p{p}: histogram {hist} misses exact {exact} by more than 1/32"
        );
        // And it is never further from the truth than the merged ring.
        let hist_err = exact - hist;
        let ring_err = exact.abs_diff(ring_value);
        assert!(
            hist_err <= ring_err,
            "p{p}: histogram error {hist_err} exceeds ring error {ring_err}"
        );
    }

    // Quantify the ring's failure mode. The exact p99 sits in the spike
    // (rank 19 800 of 20 000 lands among the 500 slow samples), but shard A's
    // retained window holds only post-spike samples, so the merged ring tops
    // out near shard B's steady state — an underestimate of more than 50×.
    let exact_p99 = exact_percentile(&all, 99.0);
    assert!(exact_p99 >= 8_000, "the spike owns the exact p99");
    assert!(
        ring.p99 < exact_p99 / 50,
        "ring p99 {} should have evicted the spike (exact {exact_p99})",
        ring.p99
    );
    // The histogram reports the spike within its error bound.
    assert!(hist_a.percentile(99.0) >= 8_000 - (8_000 >> GROUP_BITS));
}

/// Shards with different *steady* profiles: the merged ring weights every
/// retained window equally regardless of how many samples fed it, the
/// histogram weights every sample equally.
#[test]
fn histogram_is_exact_under_merge_where_the_ring_reweights() {
    const RING: usize = 128;
    // Shard A records 200× more samples than shard B, all of them fast. Both
    // rings retain 128 samples, so in the merged window shard B's slow
    // samples make up half the weight despite being 0.5 % of the run.
    let mut ring_a = LatencyRecorder::new(RING);
    let mut ring_b = LatencyRecorder::new(RING);
    let mut hist_a = LogHistogram::new();
    let mut hist_b = LogHistogram::new();
    let mut all = Vec::new();
    for i in 0..200_000u64 {
        let v = 30 + i % 8;
        ring_a.record(v);
        hist_a.record(v);
        all.push(v);
    }
    for i in 0..1_000u64 {
        let v = 4_000 + i % 64;
        ring_b.record(v);
        hist_b.record(v);
        all.push(v);
    }
    ring_a.merge(&ring_b);
    hist_a.merge(&hist_b);
    all.sort_unstable();

    // Slow samples are under 1 % of the run, so the exact p99 is still fast
    // — and below 64, where the histogram is sample-exact.
    let exact_p99 = exact_percentile(&all, 99.0);
    assert!(exact_p99 < 64, "the fast shard owns the exact p99");
    assert_eq!(
        hist_a.percentile(99.0),
        exact_p99,
        "values below 64 are exact in the histogram"
    );
    // The merged ring's 50/50 window puts its p99 deep in the slow shard —
    // an overestimate of more than 100×.
    assert!(
        ring_a.summary().p99 >= 4_000,
        "equal windows hand the ring's p99 to the 0.5 % shard"
    );
}
