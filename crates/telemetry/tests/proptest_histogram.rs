//! Property coverage for [`LogHistogram`] merging and its documented error
//! bound.
//!
//! * Merging is exactly **commutative** and **associative** (a bucketwise
//!   add), and merging shard histograms equals recording every sample into
//!   one — the property the runtime's shutdown merge relies on.
//! * Reported percentiles honour the documented bound against the exact
//!   nearest-rank percentile `e` of the sample multiset: the histogram
//!   reports `h` with `h <= e` and `e - h <= max(1, e >> GROUP_BITS)`.
//!
//! Samples are drawn log-uniformly (a uniform `u64` right-shifted by a
//! uniform 0–63 bits), so the cases exercise every octave of the bucket
//! space, not just the dense low end.

use proptest::prelude::*;
use swift_telemetry::{LogHistogram, GROUP_BITS};

/// Log-uniform samples: `raw >> shift` sweeps all 64 octaves.
fn values(pairs: &[(u64, u32)]) -> Vec<u64> {
    pairs
        .iter()
        .map(|&(raw, shift)| raw >> (shift % 64))
        .collect()
}

fn histogram(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Structural equality: `Debug` renders the bucket array and the exact
/// aggregates, so equal strings mean identical histograms.
fn repr(h: &LogHistogram) -> String {
    format!("{h:?}")
}

/// The exact nearest-rank percentile, computed with the same rank formula
/// the histogram uses, over the sorted sample multiset.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as u64).clamp(1, sorted.len() as u64);
    sorted[rank as usize - 1]
}

const GRID: [f64; 9] = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0];

proptest! {
    /// a ∪ b == b ∪ a, structurally.
    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec((any::<u64>(), 0u32..64), 0..120),
        ys in proptest::collection::vec((any::<u64>(), 0u32..64), 0..120),
    ) {
        let (a, b) = (histogram(&values(&xs)), histogram(&values(&ys)));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(repr(&ab), repr(&ba));
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c), structurally.
    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec((any::<u64>(), 0u32..64), 0..80),
        ys in proptest::collection::vec((any::<u64>(), 0u32..64), 0..80),
        zs in proptest::collection::vec((any::<u64>(), 0u32..64), 0..80),
    ) {
        let (a, b, c) = (
            histogram(&values(&xs)),
            histogram(&values(&ys)),
            histogram(&values(&zs)),
        );
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(repr(&left), repr(&right));
    }

    /// Merging per-shard histograms is lossless: identical to recording the
    /// concatenated stream into a single histogram.
    #[test]
    fn merge_equals_single_recording(
        xs in proptest::collection::vec((any::<u64>(), 0u32..64), 0..120),
        ys in proptest::collection::vec((any::<u64>(), 0u32..64), 0..120),
    ) {
        let (va, vb) = (values(&xs), values(&ys));
        let mut merged = histogram(&va);
        merged.merge(&histogram(&vb));
        let mut all = va.clone();
        all.extend_from_slice(&vb);
        prop_assert_eq!(repr(&merged), repr(&histogram(&all)));
    }

    /// Reported percentiles sit at most one bucket width below the exact
    /// nearest-rank value: `h <= e` and `e - h <= max(1, e >> GROUP_BITS)`,
    /// at every grid point, on arbitrary (merged) sample sets.
    #[test]
    fn percentiles_honour_the_relative_error_bound(
        xs in proptest::collection::vec((any::<u64>(), 0u32..64), 1..200),
    ) {
        let samples = values(&xs);
        let h = histogram(&samples);
        let mut sorted = samples;
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), sorted.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().expect("non-empty"));
        for p in GRID {
            let exact = exact_percentile(&sorted, p);
            let got = h.percentile(p);
            prop_assert!(got <= exact, "p{}: reported {} above exact {}", p, got, exact);
            let slack = (exact >> GROUP_BITS).max(1);
            prop_assert!(
                exact - got <= slack,
                "p{}: reported {} misses exact {} by more than {}",
                p, got, exact, slack
            );
        }
    }
}
