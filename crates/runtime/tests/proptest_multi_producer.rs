//! Multi-producer equivalence property: on random interleaved multi-session
//! streams split into random K-way source partitions (sessions disjoint
//! across sources), the K-producer sharded replay reaches — per session —
//! exactly the decisions of the single-producer sharded replay and of the
//! deterministic inline mode, including a mid-run teardown + re-register on
//! one source.
//!
//! This is the contract `exp_soak --ingest-threads N` rests on: as long as
//! each session is pinned to one `IngestHandle`, the producer count is
//! invisible in the decision stream.

use proptest::prelude::*;
use swift_bgp::{
    AsPath, Asn, ElementaryEvent, PeerId, Prefix, Route, RouteAttributes, RoutingTable,
};
use swift_core::encoding::ReroutingPolicy;
use swift_core::{EncodingConfig, InferenceConfig, RerouteAction, SwiftConfig};
use swift_runtime::{RuntimeConfig, ShardedRuntime};

const SESSIONS: u32 = 3;
const PREFIXES_PER_SESSION: u32 = 60;

/// The flapped session: torn down and re-registered mid-run on whichever
/// source it is pinned to.
const CHURNED: PeerId = PeerId(1);

/// Thresholds scaled down so random 300-event streams form bursts and
/// trigger accepted inferences often.
fn config() -> SwiftConfig {
    SwiftConfig {
        inference: InferenceConfig {
            burst_start_threshold: 10,
            burst_stop_threshold: 2,
            triggering_threshold: 15,
            use_history: false,
            ..Default::default()
        },
        encoding: EncodingConfig {
            min_prefixes_per_link: 5,
            ..Default::default()
        },
    }
}

fn p(session: u32, idx: u32) -> Prefix {
    Prefix::nth_slash24(session * PREFIXES_PER_SESSION + idx)
}

/// A path within one session's AS neighbourhood; `variant` picks the shape.
fn path(session: u32, idx: u32, variant: u32) -> AsPath {
    let base = 100 + session * 1_000;
    match variant % 4 {
        0 => AsPath::new([base, base + 1 + idx % 3]),
        1 => AsPath::new([base, base + 1 + idx % 3, base + 10 + idx % 5]),
        2 => AsPath::new([base, base + 4, base + 20 + idx % 2]),
        _ => AsPath::new([base, base + 5]),
    }
}

/// Per-session tables: each peer announces its own prefix block.
fn table() -> RoutingTable {
    let mut t = RoutingTable::new();
    for s in 0..SESSIONS {
        let peer = PeerId(s + 1);
        t.add_peer(peer, Asn(100 + s * 1_000));
        for i in 0..PREFIXES_PER_SESSION {
            let mut attrs = RouteAttributes::from_path(path(s, i, i));
            attrs.local_pref = Some(200);
            t.announce(peer, p(s, i), Route::new(peer, attrs, 0));
        }
    }
    t
}

/// The initial routes of the churned session — what its re-registration
/// replays.
fn churned_routes() -> Vec<(Prefix, Route)> {
    table()
        .adj_rib_in(CHURNED)
        .expect("churned session exists")
        .iter()
        .map(|(prefix, route)| (*prefix, route.clone()))
        .collect()
}

/// Random multi-session stream entries: (session, withdraw?, prefix index,
/// announce-path variant). Timestamps are assigned in arrival order, 5 ms
/// apart, so dense runs form bursts.
fn arb_stream() -> impl Strategy<Value = Vec<(u32, bool, u32, u32)>> {
    proptest::collection::vec(
        (
            0u32..SESSIONS,
            any::<bool>(),
            0u32..PREFIXES_PER_SESSION,
            0u32..4,
        ),
        0..300,
    )
}

fn materialize(stream: &[(u32, bool, u32, u32)]) -> Vec<(PeerId, ElementaryEvent)> {
    stream
        .iter()
        .enumerate()
        .map(|(k, (s, withdraw, idx, variant))| {
            let timestamp = k as u64 * 5_000;
            let event = if *withdraw {
                ElementaryEvent::Withdraw {
                    timestamp,
                    prefix: p(*s, *idx),
                }
            } else {
                ElementaryEvent::Announce {
                    timestamp,
                    prefix: p(*s, *idx),
                    attrs: RouteAttributes::from_path(path(*s, *idx, *variant)),
                }
            };
            (PeerId(s + 1), event)
        })
        .collect()
}

/// The per-session `(time, links, predicted)` projection both runs are
/// compared on.
fn decisions_for(actions: &[RerouteAction], peer: PeerId) -> Vec<(u64, String, usize)> {
    actions
        .iter()
        .filter(|a| a.session == peer)
        .map(|a| (a.time, format!("{:?}", a.links), a.predicted.len()))
        .collect()
}

/// Sessions disjoint across sources: session s (1-based peers) → source
/// (s - 1) % k, each source preserving the merged order of its sessions.
fn partition(
    events: &[(PeerId, ElementaryEvent)],
    k: usize,
) -> Vec<Vec<(PeerId, ElementaryEvent)>> {
    let mut sources = vec![Vec::new(); k];
    for (peer, event) in events {
        sources[(peer.0 as usize - 1) % k].push((*peer, event.clone()));
    }
    sources
}

/// Replays the churned session's teardown + re-register after its
/// `churn_after`-th event, inline with the stream. Returns the runtime's
/// actions.
fn run_inline_with_churn(
    events: &[(PeerId, ElementaryEvent)],
    churn_after: usize,
) -> Vec<RerouteAction> {
    let mut runtime = ShardedRuntime::new(
        RuntimeConfig::deterministic(),
        config(),
        table(),
        ReroutingPolicy::allow_all(),
    );
    let mut seen = 0usize;
    for (peer, event) in events {
        if *peer == CHURNED {
            if seen == churn_after {
                runtime.teardown_session(CHURNED);
                runtime.register_session(CHURNED, Asn(100), churned_routes());
            }
            seen += 1;
        }
        runtime.ingest(*peer, event.clone());
    }
    runtime.finish().actions
}

/// The same run through `k` producer threads on a sharded runtime; the
/// producer owning the churned session performs the teardown + re-register
/// through its own handle at the same per-session position.
fn run_producers_with_churn(
    events: &[(PeerId, ElementaryEvent)],
    shards: usize,
    k: usize,
    churn_after: usize,
) -> Vec<RerouteAction> {
    let runtime = ShardedRuntime::new(
        RuntimeConfig {
            batch_size: 7, // force mid-burst batch boundaries
            ..RuntimeConfig::sharded(shards)
        },
        config(),
        table(),
        ReroutingPolicy::allow_all(),
    );
    std::thread::scope(|scope| {
        for source in partition(events, k) {
            let mut handle = runtime.handle();
            scope.spawn(move || {
                let mut seen = 0usize;
                for (peer, event) in source {
                    if peer == CHURNED {
                        if seen == churn_after {
                            handle.teardown_session(CHURNED);
                            handle.register_session(CHURNED, Asn(100), churned_routes());
                        }
                        seen += 1;
                    }
                    handle.ingest(peer, event);
                }
                handle.finish();
            });
        }
    });
    runtime.finish().actions
}

proptest! {
    /// K-producer sharded replay (K ∈ {1, 2, 3}, real threads) is
    /// decision-identical per session to the single-producer sharded replay
    /// and to the deterministic inline mode, on random streams with a
    /// mid-run teardown + re-register of one session.
    #[test]
    fn k_producers_equal_single_producer_and_inline(
        stream in arb_stream(),
        k in 1usize..=3,
        churn_slot in 0u32..150,
    ) {
        let events = materialize(&stream);
        let churned_events = events.iter().filter(|(p, _)| *p == CHURNED).count();
        // A churn point inside the session's stream (or none, when the
        // random slot falls past its last event) — identical across runs.
        let churn_after = churn_slot as usize % (churned_events + 1);

        let inline = run_inline_with_churn(&events, churn_after);
        let single = run_producers_with_churn(&events, 2, 1, churn_after);
        let multi = run_producers_with_churn(&events, 2, k, churn_after);

        for s in 0..SESSIONS {
            let peer = PeerId(s + 1);
            let want = decisions_for(&inline, peer);
            // Single producer vs inline, then K producers vs inline — the
            // vendored prop_assert_eq! reports both sides on divergence.
            prop_assert_eq!(&decisions_for(&single, peer), &want);
            prop_assert_eq!(&decisions_for(&multi, peer), &want);
        }
    }
}
