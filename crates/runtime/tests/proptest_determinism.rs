//! Determinism property: on random interleaved multi-session streams, the
//! sharded runtime's accepted reroutes — per session — equal the
//! single-threaded [`SwiftRouter`]'s, for any shard count. (The *global*
//! action interleaving across sessions is scheduling-dependent by design;
//! per-session decisions are not.)

use proptest::prelude::*;
use swift_bgp::{
    AsPath, Asn, ElementaryEvent, PeerId, Prefix, Route, RouteAttributes, RoutingTable,
};
use swift_core::encoding::ReroutingPolicy;
use swift_core::{EncodingConfig, InferenceConfig, SwiftConfig, SwiftRouter};
use swift_runtime::{RuntimeConfig, ShardedRuntime};

const SESSIONS: u32 = 3;
const PREFIXES_PER_SESSION: u32 = 60;

/// Thresholds scaled down so random 400-event streams form bursts and
/// trigger accepted inferences often.
fn config() -> SwiftConfig {
    SwiftConfig {
        inference: InferenceConfig {
            burst_start_threshold: 10,
            burst_stop_threshold: 2,
            triggering_threshold: 15,
            use_history: false,
            ..Default::default()
        },
        encoding: EncodingConfig {
            min_prefixes_per_link: 5,
            ..Default::default()
        },
    }
}

fn p(session: u32, idx: u32) -> Prefix {
    Prefix::nth_slash24(session * PREFIXES_PER_SESSION + idx)
}

/// A path within one session's AS neighbourhood; `variant` picks the shape.
fn path(session: u32, idx: u32, variant: u32) -> AsPath {
    let base = 100 + session * 1_000;
    match variant % 4 {
        0 => AsPath::new([base, base + 1 + idx % 3]),
        1 => AsPath::new([base, base + 1 + idx % 3, base + 10 + idx % 5]),
        2 => AsPath::new([base, base + 4, base + 20 + idx % 2]),
        _ => AsPath::new([base, base + 5]),
    }
}

/// Per-session tables: each peer announces its own prefix block.
fn table() -> RoutingTable {
    let mut t = RoutingTable::new();
    for s in 0..SESSIONS {
        let peer = PeerId(s + 1);
        t.add_peer(peer, Asn(100 + s * 1_000));
        for i in 0..PREFIXES_PER_SESSION {
            let mut attrs = RouteAttributes::from_path(path(s, i, i));
            attrs.local_pref = Some(200);
            t.announce(peer, p(s, i), Route::new(peer, attrs, 0));
        }
    }
    t
}

/// Random multi-session stream entries: (session, withdraw?, prefix index,
/// announce-path variant). Timestamps are assigned in arrival order, 5 ms
/// apart, so dense runs form bursts.
fn arb_stream() -> impl Strategy<Value = Vec<(u32, bool, u32, u32)>> {
    proptest::collection::vec(
        (
            0u32..SESSIONS,
            any::<bool>(),
            0u32..PREFIXES_PER_SESSION,
            0u32..4,
        ),
        0..400,
    )
}

fn materialize(stream: &[(u32, bool, u32, u32)]) -> Vec<(PeerId, ElementaryEvent)> {
    stream
        .iter()
        .enumerate()
        .map(|(k, (s, withdraw, idx, variant))| {
            let timestamp = k as u64 * 5_000;
            let event = if *withdraw {
                ElementaryEvent::Withdraw {
                    timestamp,
                    prefix: p(*s, *idx),
                }
            } else {
                ElementaryEvent::Announce {
                    timestamp,
                    prefix: p(*s, *idx),
                    attrs: RouteAttributes::from_path(path(*s, *idx, *variant)),
                }
            };
            (PeerId(s + 1), event)
        })
        .collect()
}

proptest! {
    /// Per-session accepted reroutes of the sharded runtime (2 and 3 shards,
    /// real threads) equal the single-threaded router's on random interleaved
    /// streams; the deterministic inline mode equals it globally.
    #[test]
    fn sharded_reroutes_equal_single_threaded(stream in arb_stream()) {
        let events = materialize(&stream);

        let mut router = SwiftRouter::new(config(), table(), ReroutingPolicy::allow_all());
        for (peer, ev) in &events {
            router.handle_event(*peer, ev);
        }

        // Deterministic mode: identical globally, action for action.
        let mut det = ShardedRuntime::new(
            RuntimeConfig::deterministic(),
            config(),
            table(),
            ReroutingPolicy::allow_all(),
        );
        det.ingest_stream(events.iter().cloned());
        let det_report = det.finish();
        prop_assert_eq!(det_report.actions.len(), router.actions().len());
        for (a, b) in det_report.actions.iter().zip(router.actions()) {
            prop_assert_eq!(a.session, b.session);
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(&a.links, &b.links);
            prop_assert_eq!(&a.predicted, &b.predicted);
            prop_assert_eq!(a.rules_installed, b.rules_installed);
        }

        // Sharded modes: identical per session.
        for shards in [2usize, 3] {
            let mut runtime = ShardedRuntime::new(
                RuntimeConfig {
                    batch_size: 7, // force mid-burst batch boundaries
                    ..RuntimeConfig::sharded(shards)
                },
                config(),
                table(),
                ReroutingPolicy::allow_all(),
            );
            runtime.ingest_stream(events.iter().cloned());
            let report = runtime.finish();
            prop_assert_eq!(report.metrics.dropped, 0);
            prop_assert_eq!(report.actions.len(), router.actions().len());
            for s in 0..SESSIONS {
                let peer = PeerId(s + 1);
                let got = report.actions_for(peer);
                let want: Vec<_> = router
                    .actions()
                    .iter()
                    .filter(|a| a.session == peer)
                    .collect();
                prop_assert_eq!(got.len(), want.len());
                for (a, b) in got.iter().zip(want.iter()) {
                    prop_assert_eq!(a.time, b.time);
                    prop_assert_eq!(&a.links, &b.links);
                    prop_assert_eq!(&a.predicted, &b.predicted);
                }
            }
        }
    }
}
