//! Applier-shard equivalence property: on random interleaved multi-session
//! streams with mid-run session churn, the sharded replay with K ∈ {1, 2, 3}
//! applier shards reaches — per session — exactly the decisions (including
//! installed-rule counts) of the single-applier sharded replay and of the
//! deterministic inline mode, and ends with an identical data-plane rule set.
//!
//! This is the contract `exp_soak --applier-shards K` rests on: sessions
//! occupy disjoint /8 prefix blocks (the corpus generator's
//! `SESSION_PREFIX_SPACING` invariant), so partitioned installs are
//! coordination-free and the partition count is invisible in the decision
//! stream and in the final forwarding state.

use proptest::prelude::*;
use swift_bgp::{
    AsPath, Asn, ElementaryEvent, PeerId, Prefix, Route, RouteAttributes, RoutingTable,
};
use swift_core::encoding::ReroutingPolicy;
use swift_core::{EncodingConfig, InferenceConfig, RerouteAction, SwiftConfig};
use swift_runtime::{RuntimeConfig, RuntimeReport, ShardedRuntime};

const SESSIONS: u32 = 3;
const PREFIXES_PER_SESSION: u32 = 60;

/// The corpus generator's session spacing: each session's prefix block lives
/// in its own /8, which is what pins a whole session to one applier shard.
const BLOCK_SPACING: u32 = 65_536;

/// The shared backup peer: announces an alternate route for every prefix of
/// every session, so its Adj-RIB-In spans all partitions.
const BACKUP: PeerId = PeerId(1_000);

/// The flapped session: torn down and re-registered mid-run.
const CHURNED: PeerId = PeerId(1);

/// Thresholds scaled down so random 300-event streams form bursts and
/// trigger accepted inferences often.
fn config() -> SwiftConfig {
    SwiftConfig {
        inference: InferenceConfig {
            burst_start_threshold: 10,
            burst_stop_threshold: 2,
            triggering_threshold: 15,
            use_history: false,
            ..Default::default()
        },
        encoding: EncodingConfig {
            min_prefixes_per_link: 5,
            ..Default::default()
        },
    }
}

fn p(session: u32, idx: u32) -> Prefix {
    Prefix::nth_slash24(session * BLOCK_SPACING + idx)
}

/// A path within one session's AS neighbourhood; `variant` picks the shape.
fn path(session: u32, idx: u32, variant: u32) -> AsPath {
    let base = 100 + session * 1_000;
    match variant % 4 {
        0 => AsPath::new([base, base + 1 + idx % 3]),
        1 => AsPath::new([base, base + 1 + idx % 3, base + 10 + idx % 5]),
        2 => AsPath::new([base, base + 4, base + 20 + idx % 2]),
        _ => AsPath::new([base, base + 5]),
    }
}

/// Per-session tables in disjoint /8 blocks, plus the shared backup peer.
fn table() -> RoutingTable {
    let mut t = RoutingTable::new();
    t.add_peer(BACKUP, Asn(1_000));
    for s in 0..SESSIONS {
        let peer = PeerId(s + 1);
        t.add_peer(peer, Asn(100 + s * 1_000));
        for i in 0..PREFIXES_PER_SESSION {
            let mut attrs = RouteAttributes::from_path(path(s, i, i));
            attrs.local_pref = Some(200);
            t.announce(peer, p(s, i), Route::new(peer, attrs, 0));
            t.announce(
                BACKUP,
                p(s, i),
                Route::new(
                    BACKUP,
                    RouteAttributes::from_path(AsPath::new([1_000u32, 30_000 + i % 7])),
                    0,
                ),
            );
        }
    }
    t
}

/// The initial routes of the churned session — what its re-registration
/// replays.
fn churned_routes() -> Vec<(Prefix, Route)> {
    table()
        .adj_rib_in(CHURNED)
        .expect("churned session exists")
        .iter()
        .map(|(prefix, route)| (*prefix, route.clone()))
        .collect()
}

/// Random multi-session stream entries: (session, withdraw?, prefix index,
/// announce-path variant). Timestamps are assigned in arrival order, 5 ms
/// apart, so dense runs form bursts.
fn arb_stream() -> impl Strategy<Value = Vec<(u32, bool, u32, u32)>> {
    proptest::collection::vec(
        (
            0u32..SESSIONS,
            any::<bool>(),
            0u32..PREFIXES_PER_SESSION,
            0u32..4,
        ),
        0..300,
    )
}

fn materialize(stream: &[(u32, bool, u32, u32)]) -> Vec<(PeerId, ElementaryEvent)> {
    stream
        .iter()
        .enumerate()
        .map(|(k, (s, withdraw, idx, variant))| {
            let timestamp = k as u64 * 5_000;
            let event = if *withdraw {
                ElementaryEvent::Withdraw {
                    timestamp,
                    prefix: p(*s, *idx),
                }
            } else {
                ElementaryEvent::Announce {
                    timestamp,
                    prefix: p(*s, *idx),
                    attrs: RouteAttributes::from_path(path(*s, *idx, *variant)),
                }
            };
            (PeerId(s + 1), event)
        })
        .collect()
}

/// The per-session `(time, links, predicted, rules_installed)` projection
/// all runs are compared on — rule counts included, since applier
/// partitioning must not change what gets installed.
fn decisions_for(actions: &[RerouteAction], peer: PeerId) -> Vec<(u64, String, usize, usize)> {
    actions
        .iter()
        .filter(|a| a.session == peer)
        .map(|a| {
            (
                a.time,
                format!("{:?}", a.links),
                a.predicted.len(),
                a.rules_installed,
            )
        })
        .collect()
}

/// Replays the stream with the churned session's teardown + re-register
/// after its `churn_after`-th event. `applier_shards` = 0 selects the
/// deterministic inline mode.
fn run_with_churn(
    events: &[(PeerId, ElementaryEvent)],
    applier_shards: usize,
    churn_after: usize,
) -> RuntimeReport {
    let runtime_config = if applier_shards == 0 {
        RuntimeConfig::deterministic()
    } else {
        RuntimeConfig {
            batch_size: 7, // force mid-burst batch boundaries
            applier_shards,
            ..RuntimeConfig::sharded(2)
        }
    };
    let mut runtime = ShardedRuntime::new(
        runtime_config,
        config(),
        table(),
        ReroutingPolicy::allow_all(),
    );
    let mut seen = 0usize;
    for (peer, event) in events {
        if *peer == CHURNED {
            if seen == churn_after {
                runtime.teardown_session(CHURNED);
                runtime.register_session(CHURNED, Asn(100), churned_routes());
            }
            seen += 1;
        }
        runtime.ingest(*peer, event.clone());
    }
    runtime.finish()
}

proptest! {
    /// K applier shards (K ∈ {1, 2, 3}, real threads) are
    /// decision-identical per session — rule counts included — to the
    /// single-applier sharded replay and to the deterministic inline mode,
    /// on random streams with a mid-run teardown + re-register of one
    /// session; the final installed rule sets are identical too.
    #[test]
    fn k_applier_shards_equal_single_applier_and_inline(
        stream in arb_stream(),
        k in 1usize..=3,
        churn_slot in 0u32..150,
    ) {
        let events = materialize(&stream);
        let churned_events = events.iter().filter(|(p, _)| *p == CHURNED).count();
        // A churn point inside the session's stream (or none, when the
        // random slot falls past its last event) — identical across runs.
        let churn_after = churn_slot as usize % (churned_events + 1);

        let inline = run_with_churn(&events, 0, churn_after);
        let single = run_with_churn(&events, 1, churn_after);
        let multi = run_with_churn(&events, k, churn_after);

        for s in 0..SESSIONS {
            let peer = PeerId(s + 1);
            let want = decisions_for(&inline.actions, peer);
            // Single applier vs inline, then K appliers vs inline — the
            // vendored prop_assert_eq! reports both sides on divergence.
            prop_assert_eq!(&decisions_for(&single.actions, peer), &want);
            prop_assert_eq!(&decisions_for(&multi.actions, peer), &want);
        }
        prop_assert_eq!(single.swift_rule_count(), inline.swift_rule_count());
        prop_assert_eq!(multi.swift_rule_count(), inline.swift_rule_count());
    }
}
