//! The runtime's thread bodies and channel message types.
//!
//! Two kinds of worker run behind [`crate::ShardedRuntime`]:
//!
//! * **shard workers** — each owns the [`SessionEngine`]s of the sessions
//!   hashed onto it and turns ingested events into engine verdicts;
//! * the single **applier** — owns the [`Applier`] (routing table, forwarding
//!   table, action log) and serializes every rule install and resync.
//!
//! All channels are bounded ([`std::sync::mpsc::sync_channel`]); a full shard
//! queue pushes back on the ingest thread (or sheds load, depending on the
//! configured [`crate::BackpressurePolicy`]), and a full applier queue pushes
//! back on the shards.

use crate::ingest::EpochClock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swift_bgp::{Asn, ElementaryEvent, PeerId, Prefix, Route};
use swift_core::inference::{EngineStatus, InferenceResult};
use swift_core::metrics::LatencyRecorder;
use swift_core::pipeline::{Applier, SessionEngine};

/// One ingested event on its way to a shard.
#[derive(Debug)]
pub(crate) struct IngestEvent {
    /// The session the event was received on.
    pub peer: PeerId,
    /// The event itself.
    pub event: ElementaryEvent,
    /// Coarse ingest time (nanoseconds on the runtime's [`EpochClock`]), for
    /// end-to-end latency accounting.
    pub ingest: u64,
}

/// Controller → shard messages.
#[derive(Debug)]
pub(crate) enum ShardMsg {
    /// A batch of events for this shard's sessions.
    Batch(Vec<IngestEvent>),
    /// A session (re-)registration: the shard adopts the engine and forwards
    /// the routing-state half to the applier in-band.
    Register(Box<SessionRegistration>),
    /// A session teardown: the shard drops the engine and forwards the
    /// cleanup request to the applier in-band.
    Teardown(PeerId),
    /// Flush marker: forward an ack to the applier and keep going.
    Barrier(u64),
    /// Drain and exit.
    Shutdown,
}

/// Everything a mid-run session registration carries: the engine half for the
/// session's home shard and the routing-state half for the applier.
#[derive(Debug)]
pub(crate) struct SessionRegistration {
    pub peer: PeerId,
    pub asn: Asn,
    pub engine: SessionEngine,
    pub routes: Vec<(Prefix, Route)>,
}

/// One event after engine processing, on its way to the applier.
#[derive(Debug)]
pub(crate) struct ProcessedEvent {
    pub peer: PeerId,
    pub event: ElementaryEvent,
    /// The accepted inference, if this event triggered one.
    pub result: Option<InferenceResult>,
    /// Coarse ingest time (nanoseconds on the runtime's [`EpochClock`]).
    pub ingest: u64,
}

/// Shard/controller → applier messages.
#[derive(Debug)]
pub(crate) enum ApplierMsg {
    /// Processed events from one shard, in that shard's order.
    Batch(Vec<ProcessedEvent>),
    /// Routing-state half of a session registration (forwarded by the
    /// session's home shard, so it is ordered with the session's events).
    Register {
        peer: PeerId,
        asn: Asn,
        routes: Vec<(Prefix, Route)>,
    },
    /// Routing-state half of a session teardown: remove the departed peer's
    /// SWIFT rules and RIB-mirror routes.
    Teardown(PeerId),
    /// Barrier ack from one shard (the barrier's sequence number).
    Barrier(u64),
    /// Reconvergence resync request (sent by the controller after a flush);
    /// the number of removed SWIFT rules is replied on the channel.
    Resync(Sender<usize>),
    /// A shard finished shutting down.
    ShardDone,
}

/// What a shard worker reports back when it exits.
#[derive(Debug)]
pub(crate) struct ShardWorkerReport {
    pub shard: usize,
    pub sessions: usize,
    pub events: u64,
    pub batches: u64,
    pub latency: LatencyRecorder,
    /// Busy span: first batch received → last batch finished.
    pub busy: Duration,
}

/// What the applier thread reports back when it exits.
#[derive(Debug)]
pub(crate) struct ApplierReport {
    pub applier: Applier,
    pub reroute_latency: LatencyRecorder,
}

/// The shard worker loop: process each batch through the shard's engines and
/// forward everything (with any accepted inference attached) to the applier.
pub(crate) fn shard_loop(
    shard: usize,
    mut engines: BTreeMap<PeerId, SessionEngine>,
    rx: Receiver<ShardMsg>,
    applier_tx: SyncSender<ApplierMsg>,
    depth: Arc<AtomicUsize>,
    clock: Arc<EpochClock>,
    latency_window: usize,
) -> ShardWorkerReport {
    let sessions = engines.len();
    let mut events = 0u64;
    let mut batches = 0u64;
    let mut latency = LatencyRecorder::new(latency_window);
    let mut first: Option<Instant> = None;
    let mut last: Option<Instant> = None;
    // `rx.recv()` erroring means the controller hung up without a Shutdown
    // (e.g. dropped) — treated like a Shutdown.
    'outer: while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(batch) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                batches += 1;
                first.get_or_insert_with(Instant::now);
                let mut out = Vec::with_capacity(batch.len());
                for IngestEvent {
                    peer,
                    event,
                    ingest,
                } in batch
                {
                    let result = match engines.get_mut(&peer) {
                        Some(engine) => match engine.process(&event) {
                            (EngineStatus::Accepted, Some(result)) => Some(result),
                            _ => None,
                        },
                        // Unknown session: no engine, but the event still
                        // reaches the applier's routing table — exactly the
                        // single-threaded router's behaviour.
                        None => None,
                    };
                    // The consumer side reads the precise clock: one syscall
                    // per event here is off the ingest hot path, and the
                    // coarse stamp is always ≤ the precise reading.
                    latency.record(clock.precise().saturating_sub(ingest) / 1_000);
                    events += 1;
                    out.push(ProcessedEvent {
                        peer,
                        event,
                        result,
                        ingest,
                    });
                }
                last = Some(Instant::now());
                if applier_tx.send(ApplierMsg::Batch(out)).is_err() {
                    break 'outer; // applier gone; nothing left to do
                }
            }
            ShardMsg::Register(reg) => {
                let SessionRegistration {
                    peer,
                    asn,
                    engine,
                    routes,
                } = *reg;
                engines.insert(peer, engine);
                if applier_tx
                    .send(ApplierMsg::Register { peer, asn, routes })
                    .is_err()
                {
                    break 'outer;
                }
            }
            ShardMsg::Teardown(peer) => {
                engines.remove(&peer);
                if applier_tx.send(ApplierMsg::Teardown(peer)).is_err() {
                    break 'outer;
                }
            }
            ShardMsg::Barrier(seq) => {
                if applier_tx.send(ApplierMsg::Barrier(seq)).is_err() {
                    break 'outer;
                }
            }
            ShardMsg::Shutdown => break 'outer,
        }
    }
    let _ = applier_tx.send(ApplierMsg::ShardDone);
    ShardWorkerReport {
        shard,
        sessions: sessions.max(engines.len()),
        events,
        batches,
        latency,
        busy: match (first, last) {
            (Some(a), Some(b)) => b.saturating_duration_since(a),
            _ => Duration::ZERO,
        },
    }
}

/// The applier loop: fold every processed event into the (deferred) routing
/// state, install the rules of accepted inferences in arrival order, answer
/// barrier and resync requests, and exit once every shard has said goodbye.
pub(crate) fn applier_loop(
    mut applier: Applier,
    rx: Receiver<ApplierMsg>,
    barrier_tx: Sender<u64>,
    shards: usize,
    clock: Arc<EpochClock>,
    latency_window: usize,
) -> ApplierReport {
    let mut done = 0usize;
    let mut barrier_acks: BTreeMap<u64, usize> = BTreeMap::new();
    let mut reroute_latency = LatencyRecorder::new(latency_window);
    while done < shards {
        let Ok(msg) = rx.recv() else {
            break;
        };
        match msg {
            ApplierMsg::Batch(batch) => {
                for processed in batch {
                    applier.note_event_owned(processed.peer, processed.event);
                    if let Some(result) = processed.result {
                        applier.apply_inference(processed.peer, &result);
                        reroute_latency
                            .record(clock.precise().saturating_sub(processed.ingest) / 1_000);
                    }
                }
            }
            ApplierMsg::Register { peer, asn, routes } => {
                applier.register_session(peer, asn, routes);
            }
            ApplierMsg::Teardown(peer) => {
                applier.teardown_session(peer);
            }
            ApplierMsg::Barrier(seq) => {
                let acks = barrier_acks.entry(seq).or_insert(0);
                *acks += 1;
                if *acks == shards {
                    barrier_acks.remove(&seq);
                    let _ = barrier_tx.send(seq);
                }
            }
            ApplierMsg::Resync(reply) => {
                let removed = applier.resync_after_convergence();
                let _ = reply.send(removed);
            }
            ApplierMsg::ShardDone => done += 1,
        }
    }
    ApplierReport {
        applier,
        reroute_latency,
    }
}
