//! The runtime's thread bodies and channel message types.
//!
//! Two kinds of worker run behind [`crate::ShardedRuntime`]:
//!
//! * **shard workers** — each owns the [`SessionEngine`]s of the sessions
//!   hashed onto it and turns ingested events into engine verdicts;
//! * **applier shards** — each owns one [`Applier`] (a prefix-range partition
//!   of the forwarding table, the routing state of that range, its own
//!   action log) and serializes the rule installs and resyncs of its range.
//!   With one applier shard (the default) this is exactly the old single
//!   `swift-applier` thread.
//!
//! Shard workers route each processed event to the applier shard owning the
//! event's prefix ([`PrefixPartitioner`]); lifecycle messages (register,
//! teardown, barriers) are broadcast to every applier shard so each can
//! maintain its slice of the state in-band with the event stream.
//!
//! All channels are bounded ([`std::sync::mpsc::sync_channel`]); a full shard
//! queue pushes back on the ingest thread (or sheds load, depending on the
//! configured [`crate::BackpressurePolicy`]), and a full applier queue pushes
//! back on the shards.

use crate::ingest::EpochClock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swift_bgp::{Asn, ElementaryEvent, PeerId, Prefix, Route};
use swift_core::encoding::PrefixPartitioner;
use swift_core::inference::{EngineStatus, InferenceResult, KernelStats};
use swift_core::pipeline::{Applier, SessionEngine};
use swift_telemetry::{Counter, Gauge, LogHistogram, Registry, StageHistograms, TraceStamp};

/// Registry handles for the inference-kernel telemetry: the fused-pass
/// dispatch mix (`inference.kernel.{dense,sparse,mixed}`) and scratch-buffer
/// behaviour (`inference.scratch.{reuse,growth}`). The names are global (not
/// per-shard): every worker clones handles onto the same atomic storage, so a
/// registry snapshot reports the whole runtime's mix.
#[derive(Clone)]
pub(crate) struct KernelCounters {
    pub dense: Counter,
    pub sparse: Counter,
    pub mixed: Counter,
    pub scratch_reuse: Counter,
    pub scratch_growth: Counter,
}

impl KernelCounters {
    pub(crate) fn from_registry(registry: &Registry) -> Self {
        KernelCounters {
            dense: registry.counter("inference.kernel.dense"),
            sparse: registry.counter("inference.kernel.sparse"),
            mixed: registry.counter("inference.kernel.mixed"),
            scratch_reuse: registry.counter("inference.scratch.reuse"),
            scratch_growth: registry.counter("inference.scratch.growth"),
        }
    }

    /// Folds one engine's drained [`KernelStats`] into the registry. Most
    /// events run zero kernel passes (no inference attempt), so the common
    /// case is five skipped adds.
    pub(crate) fn record(&self, stats: KernelStats) {
        if stats.dense > 0 {
            self.dense.add(stats.dense);
        }
        if stats.sparse > 0 {
            self.sparse.add(stats.sparse);
        }
        if stats.mixed > 0 {
            self.mixed.add(stats.mixed);
        }
        if stats.scratch_reuse > 0 {
            self.scratch_reuse.add(stats.scratch_reuse);
        }
        if stats.scratch_growth > 0 {
            self.scratch_growth.add(stats.scratch_growth);
        }
    }
}

/// One ingested event on its way to a shard.
#[derive(Debug)]
pub(crate) struct IngestEvent {
    /// The session the event was received on.
    pub peer: PeerId,
    /// The event itself.
    pub event: ElementaryEvent,
    /// Coarse ingest time (nanoseconds on the runtime's [`EpochClock`]), for
    /// end-to-end latency accounting.
    pub ingest: u64,
    /// Sampled-tracing stamp: `Some` on the 1-in-N events that carry
    /// per-stage attribution through the pipeline.
    pub trace: Option<TraceStamp>,
}

/// Controller → shard messages.
#[derive(Debug)]
pub(crate) enum ShardMsg {
    /// A batch of events for this shard's sessions.
    Batch(Vec<IngestEvent>),
    /// A session (re-)registration: the shard adopts the engine and forwards
    /// the routing-state half to the applier shards in-band.
    Register(Box<SessionRegistration>),
    /// A session teardown: the shard drops the engine and forwards the
    /// cleanup request to the applier shards in-band.
    Teardown(PeerId),
    /// Flush marker: forward an ack to every applier shard and keep going.
    Barrier(u64),
    /// Drain and exit.
    Shutdown,
}

/// Everything a mid-run session registration carries: the engine half for the
/// session's home shard and the routing-state half for the applier shards.
#[derive(Debug)]
pub(crate) struct SessionRegistration {
    pub peer: PeerId,
    pub asn: Asn,
    pub engine: SessionEngine,
    pub routes: Vec<(Prefix, Route)>,
}

/// One event after engine processing, on its way to an applier shard.
#[derive(Debug)]
pub(crate) struct ProcessedEvent {
    pub peer: PeerId,
    pub event: ElementaryEvent,
    /// The accepted inference, if this event triggered one.
    pub result: Option<InferenceResult>,
    /// Coarse ingest time (nanoseconds on the runtime's [`EpochClock`]).
    pub ingest: u64,
    /// Sampled-tracing stamp, advanced to the shard's inference boundary.
    pub trace: Option<TraceStamp>,
}

/// Shard/controller → applier messages.
#[derive(Debug)]
pub(crate) enum ApplierMsg {
    /// Processed events of this applier's prefix range from one shard, in
    /// that shard's order.
    Batch(Vec<ProcessedEvent>),
    /// Routing-state half of a session registration, restricted to this
    /// applier's prefix range (forwarded by the session's home shard, so it
    /// is ordered with the session's events).
    Register {
        peer: PeerId,
        asn: Asn,
        routes: Vec<(Prefix, Route)>,
    },
    /// Routing-state half of a session teardown: remove the departed peer's
    /// SWIFT rules and RIB-mirror routes from this applier's range.
    Teardown(PeerId),
    /// Barrier ack from one shard (the barrier's sequence number).
    Barrier(u64),
    /// Reconvergence resync request (sent by the controller after a flush);
    /// the number of removed SWIFT rules is replied on the channel.
    Resync(Sender<usize>),
    /// A shard finished shutting down.
    ShardDone,
}

/// What a shard worker reports back when it exits.
#[derive(Debug)]
pub(crate) struct ShardWorkerReport {
    pub shard: usize,
    pub sessions: usize,
    pub events: u64,
    pub batches: u64,
    /// Ingest → engine-processed latency, in nanoseconds (log-linear
    /// histogram: cross-shard merges are exact).
    pub latency: LogHistogram,
    /// Per-stage spans of this shard's traced events (`queue_wait` and
    /// `inference` populated here).
    pub stages: StageHistograms,
    /// Busy span: first batch received → last batch finished.
    pub busy: Duration,
}

/// What one applier shard reports back when it exits.
#[derive(Debug)]
pub(crate) struct ApplierReport {
    pub idx: usize,
    pub applier: Applier,
    /// Ingest → reroute-rules-installed latency, in nanoseconds (log-linear
    /// histogram: cross-applier merges are exact).
    pub reroute_latency: LogHistogram,
    /// Per-stage spans of traced events reaching this applier
    /// (`applier_wait` and `install` populated here).
    pub stages: StageHistograms,
    /// Events folded into this shard's deferred RIB buffer.
    pub events: u64,
    /// Batches received.
    pub batches: u64,
    /// Data-plane rule installs performed by accepted inferences.
    pub installs: u64,
    /// Accumulated time spent actually processing messages (not waiting on
    /// the queue) — the measure of where the serialization point sits.
    pub busy: Duration,
    /// High-water mark of the deferred-RIB buffer, in events.
    pub pending_high_water: usize,
    /// Deferred events folded into the RIB mirror at resync time.
    pub pending_folded: u64,
    /// Resyncs served.
    pub resyncs: u64,
}

/// A shard worker's sending side of one applier shard: the channel plus the
/// depth gauges backing the per-applier queue high-water metric.
pub(crate) struct ApplierLink {
    pub tx: SyncSender<ApplierMsg>,
    /// Batches currently in (or racing into) the queue.
    pub depth: Arc<AtomicUsize>,
    /// High-water mark of `depth`, clamped to the queue capacity by senders —
    /// the registry gauge `applier.N.queue.high`, so live snapshots see it.
    pub high: Gauge,
}

/// Everything one shard worker thread owns.
pub(crate) struct ShardWorker {
    pub shard: usize,
    pub engines: BTreeMap<PeerId, SessionEngine>,
    pub rx: Receiver<ShardMsg>,
    pub appliers: Vec<ApplierLink>,
    pub partitioner: PrefixPartitioner,
    /// Physical capacity of each applier queue, for clamping the high-water.
    pub applier_capacity: usize,
    pub depth: Arc<AtomicUsize>,
    pub clock: Arc<EpochClock>,
    /// Registry counter `shard.N.events` — the live source of truth for the
    /// shard's event count (the exit report reads it back).
    pub events_ctr: Counter,
    /// Registry counter `shard.N.batches`.
    pub batches_ctr: Counter,
    /// Global kernel-dispatch and scratch counters, drained per event.
    pub kernels: KernelCounters,
}

/// Counts a batch into the applier's depth gauges and sends it. `Err` means
/// the applier is gone (shutdown).
fn send_batch(link: &ApplierLink, capacity: usize, batch: Vec<ProcessedEvent>) -> Result<(), ()> {
    let observed = link.depth.fetch_add(1, Ordering::Relaxed) + 1;
    link.high.record_max(observed.min(capacity) as u64);
    if link.tx.send(ApplierMsg::Batch(batch)).is_err() {
        link.depth.fetch_sub(1, Ordering::Relaxed);
        return Err(());
    }
    Ok(())
}

/// The shard worker loop: process each batch through the shard's engines and
/// forward everything (with any accepted inference attached) to the applier
/// shard owning each event's prefix.
pub(crate) fn shard_loop(w: ShardWorker) -> ShardWorkerReport {
    let ShardWorker {
        shard,
        mut engines,
        rx,
        appliers,
        partitioner,
        applier_capacity,
        depth,
        clock,
        events_ctr,
        batches_ctr,
        kernels,
    } = w;
    let sessions = engines.len();
    let mut latency = LogHistogram::new();
    let mut stages = StageHistograms::new();
    let mut first: Option<Instant> = None;
    let mut last: Option<Instant> = None;
    // `rx.recv()` erroring means the controller hung up without a Shutdown
    // (e.g. dropped) — treated like a Shutdown.
    'outer: while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(batch) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                batches_ctr.inc();
                first.get_or_insert_with(Instant::now);
                let mut outs: Vec<Vec<ProcessedEvent>> =
                    (0..appliers.len()).map(|_| Vec::new()).collect();
                for IngestEvent {
                    peer,
                    event,
                    ingest,
                    mut trace,
                } in batch
                {
                    // A traced event closes its queue-wait span at dequeue
                    // (precise epoch reading, not `Instant::now`), so the
                    // inference span below starts at the engine call.
                    if let Some(stamp) = trace.as_mut() {
                        stages.queue_wait.record(stamp.advance(clock.precise()));
                    }
                    let result = match engines.get_mut(&peer) {
                        Some(engine) => {
                            let verdict = match engine.process(&event) {
                                (EngineStatus::Accepted, Some(result)) => Some(result),
                                _ => None,
                            };
                            kernels.record(engine.take_kernel_stats());
                            verdict
                        }
                        // Unknown session: no engine, but the event still
                        // reaches the applier's routing table — exactly the
                        // single-threaded router's behaviour.
                        None => None,
                    };
                    if let Some(stamp) = trace.as_mut() {
                        stages.inference.record(stamp.advance(clock.precise()));
                    }
                    // The consumer side reads the precise clock: one syscall
                    // per event here is off the ingest hot path, and the
                    // coarse stamp is always ≤ the precise reading.
                    latency.record(clock.precise().saturating_sub(ingest));
                    events_ctr.inc();
                    // An accepted inference rides with its triggering event,
                    // so it installs on the applier shard owning the
                    // session's prefix range.
                    let home = partitioner.partition_of(&event.prefix());
                    outs[home].push(ProcessedEvent {
                        peer,
                        event,
                        result,
                        ingest,
                        trace,
                    });
                }
                last = Some(Instant::now());
                for (link, out) in appliers.iter().zip(outs) {
                    if out.is_empty() {
                        continue;
                    }
                    if send_batch(link, applier_capacity, out).is_err() {
                        break 'outer; // applier gone; nothing left to do
                    }
                }
            }
            ShardMsg::Register(reg) => {
                let SessionRegistration {
                    peer,
                    asn,
                    engine,
                    routes,
                } = *reg;
                engines.insert(peer, engine);
                // Every applier shard learns the peer; each receives only the
                // routes of its own prefix range.
                let mut split: Vec<Vec<(Prefix, Route)>> = vec![Vec::new(); appliers.len()];
                for (prefix, route) in routes {
                    split[partitioner.partition_of(&prefix)].push((prefix, route));
                }
                for (link, routes) in appliers.iter().zip(split) {
                    if link
                        .tx
                        .send(ApplierMsg::Register { peer, asn, routes })
                        .is_err()
                    {
                        break 'outer;
                    }
                }
            }
            ShardMsg::Teardown(peer) => {
                engines.remove(&peer);
                for link in &appliers {
                    if link.tx.send(ApplierMsg::Teardown(peer)).is_err() {
                        break 'outer;
                    }
                }
            }
            ShardMsg::Barrier(seq) => {
                for link in &appliers {
                    if link.tx.send(ApplierMsg::Barrier(seq)).is_err() {
                        break 'outer;
                    }
                }
            }
            ShardMsg::Shutdown => break 'outer,
        }
    }
    for link in &appliers {
        let _ = link.tx.send(ApplierMsg::ShardDone);
    }
    ShardWorkerReport {
        shard,
        sessions: sessions.max(engines.len()),
        events: events_ctr.get(),
        batches: batches_ctr.get(),
        latency,
        stages,
        busy: match (first, last) {
            (Some(a), Some(b)) => b.saturating_duration_since(a),
            _ => Duration::ZERO,
        },
    }
}

/// Everything one applier shard thread owns.
pub(crate) struct ApplierWorker {
    pub idx: usize,
    pub applier: Applier,
    pub rx: Receiver<ApplierMsg>,
    /// Acks back to the controller: `(applier index, barrier seq)`.
    pub barrier_tx: Sender<(usize, u64)>,
    /// Shard workers feeding this applier — the barrier/shutdown quorum.
    pub workers: usize,
    pub clock: Arc<EpochClock>,
    pub depth: Arc<AtomicUsize>,
    /// Registry counter `applier.N.events` — live source of truth, read back
    /// into the exit report.
    pub events_ctr: Counter,
    /// Registry counter `applier.N.batches`.
    pub batches_ctr: Counter,
    /// Registry counter `applier.N.installs`.
    pub installs_ctr: Counter,
    /// Registry counter `applier.N.resyncs`.
    pub resyncs_ctr: Counter,
    /// Registry gauge `applier.N.pending.high` (deferred-RIB high water).
    pub pending_gauge: Gauge,
}

/// The applier-shard loop: fold every processed event of this shard's prefix
/// range into the (deferred) routing state, install the rules of accepted
/// inferences in arrival order, answer barrier and resync requests, and exit
/// once every shard worker has said goodbye.
pub(crate) fn applier_loop(w: ApplierWorker) -> ApplierReport {
    let ApplierWorker {
        idx,
        mut applier,
        rx,
        barrier_tx,
        workers,
        clock,
        depth,
        events_ctr,
        batches_ctr,
        installs_ctr,
        resyncs_ctr,
        pending_gauge,
    } = w;
    let mut done = 0usize;
    let mut barrier_acks: BTreeMap<u64, usize> = BTreeMap::new();
    let mut reroute_latency = LogHistogram::new();
    let mut stages = StageHistograms::new();
    let mut busy = Duration::ZERO;
    let mut pending_folded = 0u64;
    while done < workers {
        let Ok(msg) = rx.recv() else {
            break;
        };
        match msg {
            ApplierMsg::Batch(batch) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                let t0 = Instant::now();
                batches_ctr.inc();
                for mut processed in batch {
                    events_ctr.inc();
                    // Traced events close their shard → applier queue span at
                    // dequeue and their install span after the table updates.
                    if let Some(stamp) = processed.trace.as_mut() {
                        stages.applier_wait.record(stamp.advance(clock.precise()));
                    }
                    applier.note_event_owned(processed.peer, processed.event);
                    if let Some(result) = processed.result {
                        let action = applier.apply_inference(processed.peer, &result);
                        installs_ctr.add(action.rules_installed as u64);
                        reroute_latency.record(clock.precise().saturating_sub(processed.ingest));
                    }
                    if let Some(stamp) = processed.trace.as_mut() {
                        stages.install.record(stamp.advance(clock.precise()));
                    }
                }
                pending_gauge.record_max(applier.pending_events() as u64);
                busy += t0.elapsed();
            }
            ApplierMsg::Register { peer, asn, routes } => {
                let t0 = Instant::now();
                applier.register_session(peer, asn, routes);
                busy += t0.elapsed();
            }
            ApplierMsg::Teardown(peer) => {
                let t0 = Instant::now();
                applier.teardown_session(peer);
                busy += t0.elapsed();
            }
            ApplierMsg::Barrier(seq) => {
                let acks = barrier_acks.entry(seq).or_insert(0);
                *acks += 1;
                if *acks == workers {
                    barrier_acks.remove(&seq);
                    let _ = barrier_tx.send((idx, seq));
                }
            }
            ApplierMsg::Resync(reply) => {
                let t0 = Instant::now();
                pending_folded += applier.pending_events() as u64;
                resyncs_ctr.inc();
                let removed = applier.resync_after_convergence();
                busy += t0.elapsed();
                let _ = reply.send(removed);
            }
            ApplierMsg::ShardDone => done += 1,
        }
    }
    ApplierReport {
        idx,
        applier,
        reroute_latency,
        stages,
        events: events_ctr.get(),
        batches: batches_ctr.get(),
        installs: installs_ctr.get(),
        busy,
        pending_high_water: pending_gauge.get() as usize,
        pending_folded,
        resyncs: resyncs_ctr.get(),
    }
}
