//! # swift-runtime
//!
//! A sharded, multi-core runtime for the SWIFT reproduction: the full
//! ingest → infer → reroute pipeline of a border router whose *dozens of
//! peering sessions* stream updates concurrently, under the paper's ~2 s
//! reroute budget (§3).
//!
//! ## Architecture
//!
//! ```text
//!   IngestHandle 0 ─┐       ┌───────────────┐
//!   (its sessions)  ├─hash─▶│ shard worker 0 │──┐
//!   IngestHandle 1 ─┤       │  SessionEngine │  │   accepted inferences
//!   (its sessions)  │       │  per session   │  │   + every event
//!       ...         │       ├───────────────┤  ▼
//!   default handle ─┘       │ shard worker 1 │─▶ ┌─────────────────┐
//!   (ingest()/…)            ├───────────────┤    │  applier thread  │
//!                           │      ...       │─▶ │  RoutingTable     │
//!                           └───────────────┘    │  TwoStageTable    │
//!                             bounded mpsc       │  rule installs +  │
//!                             (backpressure)     │  resyncs, serial  │
//!                                                └─────────────────┘
//! ```
//!
//! * **Multi-producer ingest**: any number of threads each own an
//!   [`IngestHandle`] ([`ShardedRuntime::handle`]) that batches events per
//!   shard and sends straight into the shard queues — no central dispatch
//!   thread, no serialized stage in front of the shards. Events are stamped
//!   by a coarse shared epoch clock instead of a per-event `Instant::now()`;
//!   drop counters and queue high-waters are per-handle and merged when the
//!   handles finish. [`ShardedRuntime::ingest`] is a thin wrapper over a
//!   built-in default handle.
//! * **Sessions are sharded, not events**: every peer is hashed onto one of N
//!   worker shards, so one session's events are always processed in order by
//!   one [`SessionEngine`](swift_core::pipeline::SessionEngine) — the
//!   per-session verdict stream is identical to the single-threaded
//!   [`SwiftRouter`](swift_core::SwiftRouter)'s, regardless of shard count —
//!   provided each session stays pinned to one handle (see [`IngestHandle`]).
//! * **Appliers are sharded by prefix range**: the serialized pipeline half
//!   is partitioned across `applier_shards` applier threads, each owning one
//!   prefix-range partition of the
//!   [`TwoStageTable`](swift_core::TwoStageTable) (shared global encoding
//!   plan — see [`PartitionedTable`](swift_core::encoding::PartitionedTable))
//!   plus the routing state of that range. Shard workers route each processed
//!   event to the applier shard owning the event's prefix, so rule installs
//!   of different sessions proceed concurrently with no shared locks; within
//!   one applier everything that must be serial (installs in arrival order,
//!   resyncs) still is. The default `applier_shards = 1` is the old single
//!   `swift-applier` thread, bit for bit. Routing-RIB bookkeeping is deferred
//!   (see [`Applier::with_deferred_rib`](swift_core::pipeline::Applier)) so
//!   appliers stay off the per-event hot path.
//! * **Bounded queues everywhere**: a full shard queue blocks the ingest (or
//!   sheds the batch under [`BackpressurePolicy::DropNewest`], counted per
//!   shard); a full applier queue blocks the shards.
//! * **Deterministic mode** ([`RuntimeConfig::deterministic`]): zero shards,
//!   no threads — the same pipeline types driven inline on the caller's
//!   thread, bit-identical to `SwiftRouter`.
//!
//! ## Example
//!
//! ```
//! use swift_bgp::RoutingTable;
//! use swift_core::{encoding::ReroutingPolicy, SwiftConfig};
//! use swift_runtime::{RuntimeConfig, ShardedRuntime};
//!
//! let runtime = ShardedRuntime::new(
//!     RuntimeConfig::sharded(2),
//!     SwiftConfig::default(),
//!     RoutingTable::new(),
//!     ReroutingPolicy::allow_all(),
//! );
//! let report = runtime.finish();
//! assert_eq!(report.actions.len(), 0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ingest;
mod worker;

use ingest::{EpochClock, ProducerShared};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use swift_bgp::{Asn, ElementaryEvent, PeerId, Prefix, Route, RoutingTable};
use swift_core::encoding::{PrefixPartitioner, ReroutingPolicy};
use swift_core::inference::EngineStatus;
use swift_core::metrics::{LatencySummary, ProducerCounters};
use swift_core::pipeline::{partition_appliers, session_engines, Applier, SessionEngine};
use swift_core::{RerouteAction, SwiftConfig};
use swift_telemetry::{
    Counter, FlightKind, FlightRecorder, Gauge, LogHistogram, Registry, StageHistograms,
};
use worker::{ApplierMsg, ShardMsg};

pub use ingest::IngestHandle;

/// What to do when a shard's ingest queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the ingest thread until the shard drains (lossless; the
    /// default). This is the only policy under which the sharded runtime's
    /// per-session decisions provably equal the single-threaded router's.
    #[default]
    Block,
    /// Drop the overflowing batch and count it ([`ShardMetrics::dropped`]) —
    /// load-shedding for overload experiments; inference quality degrades
    /// gracefully (missed withdrawals lower WS/PS precision) but the runtime
    /// never stalls the ingest.
    DropNewest,
}

/// Configuration of the sharded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of worker shards. `0` runs the deterministic inline mode: no
    /// threads, events processed synchronously on the caller's thread.
    pub shards: usize,
    /// Events per batch handed to a shard (amortizes channel overhead).
    pub batch_size: usize,
    /// Bounded depth of each shard's ingest queue, in batches.
    pub queue_capacity: usize,
    /// Bounded depth of each applier shard's queue, in batches.
    pub applier_capacity: usize,
    /// Number of applier shards the serialized pipeline half is partitioned
    /// across (prefix-range partitioning of the forwarding table — see
    /// [`swift_core::encoding::PartitionedTable`]). `1` (the default) is the
    /// single-applier behaviour, kept as the decision-equivalence reference;
    /// ignored in deterministic inline mode.
    pub applier_shards: usize,
    /// Behaviour when a shard queue is full.
    pub backpressure: BackpressurePolicy,
    /// Pipeline-trace sampling: every `trace_sample_interval`-th event per
    /// producer carries a [`swift_telemetry::TraceStamp`] through
    /// ingest → shard → applier, populating the per-stage histograms of
    /// [`RuntimeMetrics::stages`]. Rounded down to a power of two; `0`
    /// disables tracing. At the default 1-in-1024 the overhead on the ingest
    /// dispatch loop is < 2% (measured by `exp_soak --measure-overhead` and
    /// `bench_telemetry`).
    pub trace_sample_interval: usize,
    /// Retained lifecycle events in the runtime's
    /// [`swift_telemetry::FlightRecorder`] ring.
    pub flight_capacity: usize,
    /// Events between two refreshes of the coarse ingest clock, per producer
    /// handle. `1` re-reads the real clock on every event (the old per-event
    /// `Instant::now()` behaviour, for comparison benches); the default keeps
    /// the ingest path down to an atomic load at the cost of up to one
    /// interval of latency-stamp skew.
    pub clock_refresh_interval: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::deterministic()
    }
}

impl RuntimeConfig {
    /// The deterministic single-thread mode: the whole pipeline runs inline,
    /// bit-identical to [`swift_core::SwiftRouter`].
    pub fn deterministic() -> Self {
        RuntimeConfig {
            shards: 0,
            batch_size: 256,
            queue_capacity: 64,
            applier_capacity: 256,
            applier_shards: 1,
            backpressure: BackpressurePolicy::Block,
            trace_sample_interval: 1_024,
            flight_capacity: 256,
            clock_refresh_interval: 256,
        }
    }

    /// A sharded runtime with `shards` worker threads (plus the applier).
    pub fn sharded(shards: usize) -> Self {
        RuntimeConfig {
            shards,
            ..RuntimeConfig::deterministic()
        }
    }
}

/// Per-shard counters reported by [`RuntimeReport::metrics`].
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Sessions homed on this shard (the larger of the initial and final
    /// count, under mid-run session churn).
    pub sessions: usize,
    /// Events processed.
    pub events: u64,
    /// Batches processed.
    pub batches: u64,
    /// Events dropped at ingest under [`BackpressurePolicy::DropNewest`].
    pub dropped: u64,
    /// High-water mark of the shard's ingest queue, in batches — an upper
    /// estimate under concurrent producers (each producer's observation may
    /// transiently include siblings' not-yet-enqueued batches), clamped to
    /// the queue's physical capacity.
    pub max_queue_depth: usize,
    /// Ingest → engine-processed latency summary (µs).
    pub event_latency: LatencySummary,
    /// Events per second over the shard's busy span.
    pub events_per_sec: f64,
}

/// Per-applier-shard counters reported by [`RuntimeMetrics::per_applier`].
#[derive(Debug, Clone)]
pub struct ApplierShardMetrics {
    /// Applier shard index (= forwarding-table partition index).
    pub shard: usize,
    /// Events folded into this shard's deferred RIB buffer.
    pub events: u64,
    /// Batches received from the shard workers.
    pub batches: u64,
    /// Data-plane rule installs performed by accepted inferences.
    pub installs: u64,
    /// High-water mark of this applier's queue, in batches — an upper
    /// estimate under concurrent shard workers, clamped to the queue's
    /// physical capacity.
    pub max_queue_depth: usize,
    /// Accumulated time spent processing messages (not waiting on the
    /// queue) — where the serialization point sits.
    pub busy: Duration,
    /// Events folded per second of busy time.
    pub events_per_sec: f64,
    /// Rule installs per second of busy time.
    pub installs_per_sec: f64,
    /// High-water mark of the deferred-RIB buffer, in events.
    pub pending_high_water: usize,
    /// Deferred events folded into the RIB mirror at resync time.
    pub pending_folded: u64,
    /// Resyncs served by this applier shard.
    pub resyncs: u64,
}

/// Aggregate runtime metrics.
#[derive(Debug, Clone)]
pub struct RuntimeMetrics {
    /// Worker shards used (`0` = deterministic inline mode).
    pub shards: usize,
    /// Producer handles that ingested at least one event and were finished
    /// (or dropped) before the runtime shut down — includes the runtime's
    /// built-in default handle when [`ShardedRuntime::ingest`] was used.
    /// `0` in deterministic inline mode.
    pub producers: usize,
    /// Events ingested (including any later dropped under
    /// [`BackpressurePolicy::DropNewest`]; `events - dropped` were
    /// processed). In sharded mode this counts what *finished* producers
    /// ingested — finish or drop every handle before
    /// [`ShardedRuntime::finish`].
    pub events: u64,
    /// Events dropped across all shards.
    pub dropped: u64,
    /// First ingest → pipeline drained.
    pub wall: Duration,
    /// Processed (non-dropped) events per second of wall time.
    pub events_per_sec: f64,
    /// Per-shard breakdown (empty in deterministic mode).
    pub per_shard: Vec<ShardMetrics>,
    /// Per-applier-shard breakdown (empty in deterministic mode).
    pub per_applier: Vec<ApplierShardMetrics>,
    /// Ingest → engine-processed latency across all shards (µs), summarised
    /// from [`RuntimeMetrics::event_histogram`].
    pub event_latency: LatencySummary,
    /// Ingest → reroute-rules-installed latency (µs), one sample per accepted
    /// inference — the quantity the paper's ~2 s budget constrains.
    /// Summarised from [`RuntimeMetrics::reroute_histogram`].
    pub reroute_latency: LatencySummary,
    /// The full event-latency histogram (nanoseconds), merged exactly across
    /// shards — no ring eviction, bounded relative error (≤ 1/32).
    pub event_histogram: LogHistogram,
    /// The full reroute-latency histogram (nanoseconds), merged exactly
    /// across applier shards.
    pub reroute_histogram: LogHistogram,
    /// Per-stage spans of the sampled traced events (nanoseconds), merged
    /// across shards and appliers: queue wait vs inference vs applier-queue
    /// wait vs install — the breakdown that attributes reroute latency.
    pub stages: StageHistograms,
}

/// The runtime's final state, returned by [`ShardedRuntime::finish`].
#[derive(Debug)]
pub struct RuntimeReport {
    /// Every reroute action, in the order the applier installed them.
    /// Per-session subsequences are deterministic; the global interleaving is
    /// scheduling-dependent (use [`RuntimeReport::actions_for`] to compare
    /// across runs or against the single-threaded router).
    pub actions: Vec<RerouteAction>,
    /// Metrics collected while the runtime ran.
    pub metrics: RuntimeMetrics,
    appliers: Vec<Applier>,
    partitioner: PrefixPartitioner,
}

impl RuntimeReport {
    /// The serialized pipeline half (routing table, forwarding table) in its
    /// final state.
    ///
    /// # Panics
    ///
    /// When the runtime ran with `applier_shards >= 2` — the serialized state
    /// is then partitioned; use [`RuntimeReport::appliers`] for the
    /// partitions or the aggregate accessors
    /// ([`RuntimeReport::swift_rule_count`],
    /// [`RuntimeReport::pending_events`],
    /// [`RuntimeReport::forwarding_next_hop`]).
    pub fn applier(&self) -> &Applier {
        self.try_applier().unwrap_or_else(|| {
            panic!(
                "applier() needs applier_shards = 1, but the runtime ran {} applier shards; \
                 use appliers() or the aggregate accessors",
                self.appliers.len()
            )
        })
    }

    /// Non-panicking sibling of [`RuntimeReport::applier`]: `Some` exactly
    /// when the serialized state is unpartitioned (a single applier shard, or
    /// inline mode), `None` under `applier_shards >= 2`. Bench and harness
    /// code must branch on this instead of calling the panicking accessor —
    /// the `bare-applier` lint (`swift-analysis`) enforces it.
    pub fn try_applier(&self) -> Option<&Applier> {
        match self.appliers.as_slice() {
            [single] => Some(single),
            _ => None,
        }
    }

    /// The per-shard appliers (one entry with `applier_shards = 1` or in
    /// inline mode), in partition order.
    pub fn appliers(&self) -> &[Applier] {
        &self.appliers
    }

    /// The prefix partitioner the applier shards were keyed by.
    pub fn partitioner(&self) -> &PrefixPartitioner {
        &self.partitioner
    }

    /// Distinct SWIFT-installed data-plane rules across all applier shards
    /// (claims on a shared rule count once, exactly like
    /// [`TwoStageTable::swift_rule_count`](swift_core::TwoStageTable::swift_rule_count)).
    pub fn swift_rule_count(&self) -> usize {
        self.appliers
            .iter()
            .flat_map(|a| {
                a.forwarding()
                    .stage2_rules()
                    .iter()
                    .filter(|r| r.swift_installed)
                    .map(|r| r.rule)
            })
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// Events still buffered in the applier shards' deferred-RIB buffers.
    pub fn pending_events(&self) -> usize {
        self.appliers.iter().map(Applier::pending_events).sum()
    }

    /// The next-hop currently forwarding traffic for `prefix`, resolved on
    /// the applier shard owning the prefix.
    pub fn forwarding_next_hop(&self, prefix: &Prefix) -> Option<PeerId> {
        self.appliers[self.partitioner.partition_of(prefix)].forwarding_next_hop(prefix)
    }

    /// The reroute actions of one session, in acceptance order.
    pub fn actions_for(&self, peer: PeerId) -> Vec<&RerouteAction> {
        self.actions.iter().filter(|a| a.session == peer).collect()
    }
}

/// The state behind a running sharded instance.
struct Sharded {
    shard_txs: Vec<SyncSender<ShardMsg>>,
    shard_handles: Vec<JoinHandle<worker::ShardWorkerReport>>,
    applier_txs: Vec<SyncSender<ApplierMsg>>,
    applier_handles: Vec<JoinHandle<worker::ApplierReport>>,
    /// Queue high-water gauge per applier shard (registry gauge
    /// `applier.N.queue.high`), shared with the senders.
    applier_high: Vec<Gauge>,
    partitioner: PrefixPartitioner,
    barrier_rx: Receiver<(usize, u64)>,
    /// Per applier shard: number of barrier seqs fully acked (= highest
    /// completed seq + 1).
    barrier_acked: Vec<u64>,
    next_barrier: u64,
    /// The producer-side state shared by every [`IngestHandle`].
    shared: Arc<ProducerShared>,
    /// The handle behind [`ShardedRuntime::ingest`] — the runtime itself is
    /// just one producer among the handles.
    default_handle: Option<IngestHandle>,
}

/// The state behind a deterministic inline instance.
struct Inline {
    engines: BTreeMap<PeerId, SessionEngine>,
    applier: Applier,
    /// Registry counter `ingest.events` — one relaxed add per inline event,
    /// so live snapshots work in both modes.
    events_ctr: Counter,
    /// Kernel-dispatch and scratch counters, drained per event (the same
    /// global names the shard workers feed).
    kernels: worker::KernelCounters,
}

enum Mode {
    Inline(Box<Inline>),
    Sharded(Box<Sharded>),
}

/// The sharded multi-session runtime: owns the ingest → infer → reroute
/// pipeline for every peering session of one SWIFTED router.
///
/// Construct with [`ShardedRuntime::new`], feed events with
/// [`ShardedRuntime::ingest`] / [`ShardedRuntime::ingest_stream`], and
/// retrieve the final state with [`ShardedRuntime::finish`]. Dropping the
/// runtime without calling `finish` shuts the threads down cleanly but
/// discards the report.
pub struct ShardedRuntime {
    config: RuntimeConfig,
    /// Kept for seeding the engines of sessions registered mid-run.
    swift: SwiftConfig,
    mode: Option<Mode>,
    /// Inline-mode event count (sharded mode counts per producer handle).
    events: u64,
    /// First ingest from any producer — shared so concurrent handles race
    /// safely to one run-start stamp.
    started: Arc<OnceLock<Instant>>,
    /// The live metrics registry: worker counters and gauges all live here,
    /// so [`ShardedRuntime::registry`] snapshots never stop the run.
    registry: Registry,
    /// Ring of recent lifecycle events, dumped by harnesses on failure.
    flight: FlightRecorder,
    /// The runtime's epoch clock (also created in inline mode, so flight
    /// events and snapshots carry comparable timestamps).
    clock: Arc<ingest::EpochClock>,
}

impl ShardedRuntime {
    /// Builds the runtime: seeds one engine per peering session of `table`
    /// (sharing each session's interned path storage), hashes sessions onto
    /// shards and spawns the worker and applier threads — or none of them in
    /// deterministic mode.
    pub fn new(
        config: RuntimeConfig,
        swift: SwiftConfig,
        table: RoutingTable,
        policy: ReroutingPolicy,
    ) -> Self {
        let engines = session_engines(&swift, &table);
        let started: Arc<OnceLock<Instant>> = Arc::new(OnceLock::new());
        let registry = Registry::new();
        let flight = FlightRecorder::with_capacity(config.flight_capacity);
        let clock = Arc::new(EpochClock::new());
        if config.shards == 0 {
            let applier = Applier::new(swift.clone(), table, policy);
            let events_ctr = registry.counter("ingest.events");
            let kernels = worker::KernelCounters::from_registry(&registry);
            return ShardedRuntime {
                config,
                swift,
                mode: Some(Mode::Inline(Box::new(Inline {
                    engines,
                    applier,
                    events_ctr,
                    kernels,
                }))),
                events: 0,
                started,
                registry,
                flight,
                clock,
            };
        }

        let shards = config.shards;
        // Partition the sessions: each engine moves onto its home shard.
        let mut partitions: Vec<BTreeMap<PeerId, SessionEngine>> =
            (0..shards).map(|_| BTreeMap::new()).collect();
        for (peer, engine) in engines {
            partitions[shard_of(peer, shards)].insert(peer, engine);
        }

        let applier_capacity = config.applier_capacity.max(1);
        let partitioner = PrefixPartitioner::new(config.applier_shards.max(1));
        // One applier per forwarding-table partition; with one partition this
        // is exactly the pre-sharding applier on the original table.
        let appliers: Vec<Applier> = partition_appliers(&swift, table, &policy, &partitioner)
            .into_iter()
            .map(Applier::with_deferred_rib)
            .collect();
        let (barrier_tx, barrier_rx) = mpsc::channel();
        let mut applier_txs = Vec::with_capacity(appliers.len());
        let mut applier_handles = Vec::with_capacity(appliers.len());
        let mut applier_depth = Vec::with_capacity(appliers.len());
        let mut applier_high = Vec::with_capacity(appliers.len());
        let applier_count = appliers.len();
        for (idx, applier) in appliers.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel(applier_capacity);
            let depth = Arc::new(AtomicUsize::new(0));
            let high = registry.gauge(&format!("applier.{idx}.queue.high"));
            let worker = worker::ApplierWorker {
                idx,
                applier,
                rx,
                barrier_tx: barrier_tx.clone(),
                workers: shards,
                clock: Arc::clone(&clock),
                depth: Arc::clone(&depth),
                events_ctr: registry.counter(&format!("applier.{idx}.events")),
                batches_ctr: registry.counter(&format!("applier.{idx}.batches")),
                installs_ctr: registry.counter(&format!("applier.{idx}.installs")),
                resyncs_ctr: registry.counter(&format!("applier.{idx}.resyncs")),
                pending_gauge: registry.gauge(&format!("applier.{idx}.pending.high")),
            };
            let handle = std::thread::Builder::new()
                .name(if applier_count == 1 {
                    "swift-applier".into()
                } else {
                    format!("swift-applier-{idx}")
                })
                .spawn(move || worker::applier_loop(worker))
                .expect("spawn applier thread");
            applier_txs.push(tx);
            applier_handles.push(handle);
            applier_depth.push(depth);
            applier_high.push(high);
        }

        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_handles = Vec::with_capacity(shards);
        let mut depth = Vec::with_capacity(shards);
        for (i, engines) in partitions.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
            let shard_depth = Arc::new(AtomicUsize::new(0));
            let links: Vec<worker::ApplierLink> = applier_txs
                .iter()
                .zip(&applier_depth)
                .zip(&applier_high)
                .map(|((tx, depth), high)| worker::ApplierLink {
                    tx: tx.clone(),
                    depth: Arc::clone(depth),
                    high: high.clone(),
                })
                .collect();
            let worker = worker::ShardWorker {
                shard: i,
                engines,
                rx,
                appliers: links,
                partitioner,
                applier_capacity,
                depth: Arc::clone(&shard_depth),
                clock: Arc::clone(&clock),
                events_ctr: registry.counter(&format!("shard.{i}.events")),
                batches_ctr: registry.counter(&format!("shard.{i}.batches")),
                kernels: worker::KernelCounters::from_registry(&registry),
            };
            let handle = std::thread::Builder::new()
                .name(format!("swift-shard-{i}"))
                .spawn(move || worker::shard_loop(worker))
                .expect("spawn shard thread");
            shard_txs.push(tx);
            shard_handles.push(handle);
            depth.push(shard_depth);
        }

        let shared = Arc::new(ProducerShared {
            shard_txs: shard_txs.clone(),
            depth,
            batch_size: config.batch_size.max(1),
            queue_capacity: config.queue_capacity,
            backpressure: config.backpressure,
            clock: Arc::clone(&clock),
            started: Arc::clone(&started),
            shutdown: AtomicBool::new(false),
            swift: swift.clone(),
            merged: Mutex::new(ProducerCounters::for_shards(shards)),
            events_ctr: registry.counter("ingest.events"),
            dropped_ctr: registry.counter("ingest.dropped"),
            flight: flight.clone(),
            trace_interval: config.trace_sample_interval,
        });
        let default_handle = IngestHandle::new(Arc::clone(&shared), config.clock_refresh_interval);

        ShardedRuntime {
            mode: Some(Mode::Sharded(Box::new(Sharded {
                shard_txs,
                shard_handles,
                applier_txs,
                applier_handles,
                applier_high,
                partitioner,
                barrier_rx,
                barrier_acked: vec![0; applier_count],
                next_barrier: 0,
                shared,
                default_handle: Some(default_handle),
            }))),
            config,
            swift,
            events: 0,
            started,
            registry,
            flight,
            clock,
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// `true` if the runtime runs inline (no threads).
    pub fn is_deterministic(&self) -> bool {
        self.config.shards == 0
    }

    /// The live metrics registry. The returned handle shares storage with
    /// the runtime's workers, so [`swift_telemetry::Registry::snapshot`] can
    /// be taken from any thread at any time without stopping the run —
    /// `ingest.events`, `shard.N.events/batches`, `applier.N.events/batches/
    /// installs/resyncs` counters plus `applier.N.queue.high` /
    /// `applier.N.pending.high` gauges.
    pub fn registry(&self) -> Registry {
        self.registry.clone()
    }

    /// The runtime's lifecycle flight recorder: session register/teardown,
    /// barriers, resyncs, shed batches and shutdown, in a fixed-size ring.
    /// Harnesses arm a [`swift_telemetry::DumpOnPanic`] on it so assertion
    /// failures dump the recent history.
    pub fn flight(&self) -> FlightRecorder {
        self.flight.clone()
    }

    /// A new producer handle into this runtime: a cloneable, `Send`
    /// front-end that batches events per shard and sends them straight into
    /// the shard queues — see [`IngestHandle`] for the pinning rule that
    /// preserves per-session ordering across producers.
    ///
    /// Finish (or drop) every handle before [`ShardedRuntime::flush`] /
    /// [`ShardedRuntime::finish`]: a live handle may still hold buffered
    /// events, and its counters only reach [`RuntimeMetrics`] once it
    /// finishes.
    ///
    /// # Panics
    ///
    /// In deterministic inline mode — a zero-shard runtime has no queues for
    /// a producer to feed; use [`ShardedRuntime::ingest`] there.
    pub fn handle(&self) -> IngestHandle {
        match self.mode.as_ref().expect("runtime live") {
            Mode::Inline(_) => {
                panic!("deterministic inline mode has no producer handles; use ingest()")
            }
            Mode::Sharded(sharded) => IngestHandle::new(
                Arc::clone(&sharded.shared),
                self.config.clock_refresh_interval,
            ),
        }
    }

    /// Ingests one per-prefix event received on the session with `peer`.
    ///
    /// Sharded mode: a thin wrapper over the runtime's default
    /// [`IngestHandle`] — the event is buffered and dispatched (in batches)
    /// to the session's home shard; rule installs happen asynchronously on
    /// the applier thread. Deterministic mode: the event is processed to
    /// completion before returning.
    pub fn ingest(&mut self, peer: PeerId, event: ElementaryEvent) {
        match self.mode.as_mut().expect("runtime live") {
            Mode::Inline(inline) => {
                self.started.get_or_init(Instant::now);
                self.events += 1;
                inline.events_ctr.inc();
                // The inline applier is eager (no deferral), so the by-ref
                // path applies the event without cloning it.
                inline.applier.note_event(peer, &event);
                if let Some(engine) = inline.engines.get_mut(&peer) {
                    if let (EngineStatus::Accepted, Some(result)) = engine.process(&event) {
                        inline.applier.apply_inference(peer, &result);
                    }
                    inline.kernels.record(engine.take_kernel_stats());
                }
            }
            Mode::Sharded(sharded) => {
                sharded
                    .default_handle
                    .as_mut()
                    .expect("default handle live")
                    .ingest(peer, event);
            }
        }
    }

    /// Ingests a whole multi-session stream of `(peer, event)` pairs.
    pub fn ingest_stream<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (PeerId, ElementaryEvent)>,
    {
        for (peer, event) in events {
            self.ingest(peer, event);
        }
    }

    /// Registers (or re-registers) a peering session while the runtime is
    /// live: a fresh [`SessionEngine`] seeded from `routes` is installed on
    /// the session's home shard, and the applier adds the peer and its routes
    /// to the serialized routing state (retagging the touched stage-1
    /// entries).
    ///
    /// The operation is ordered **in-band** with [`ShardedRuntime::ingest`]:
    /// events ingested on this session before the call are processed by the
    /// old engine (if any), events after it by the new one — in both inline
    /// and sharded mode, which is what keeps per-session decisions identical
    /// across modes under churn. Lifecycle messages are never shed, even
    /// under [`BackpressurePolicy::DropNewest`].
    pub fn register_session<I>(&mut self, peer: PeerId, asn: Asn, routes: I)
    where
        I: IntoIterator<Item = (Prefix, Route)>,
    {
        let routes: Vec<(Prefix, Route)> = routes.into_iter().collect();
        self.flight.record(
            self.clock.precise(),
            FlightKind::Register,
            format!("peer={} asn={} routes={}", peer.0, asn.0, routes.len()),
        );
        match self.mode.as_mut().expect("runtime live") {
            Mode::Inline(inline) => {
                let engine = ingest::engine_from_routes(peer, &self.swift, &routes);
                inline.engines.insert(peer, engine);
                inline.applier.register_session(peer, asn, routes);
            }
            Mode::Sharded(sharded) => {
                sharded
                    .default_handle
                    .as_mut()
                    .expect("default handle live")
                    .register_session(peer, asn, routes);
            }
        }
    }

    /// Tears a peering session down while the runtime is live: the session's
    /// engine is dropped on its home shard and the applier removes the
    /// departed peer's SWIFT rules and RIB-mirror routes (retagging the
    /// prefixes it served). The peer stays known, so it can re-establish via
    /// [`ShardedRuntime::register_session`].
    ///
    /// Ordered in-band with `ingest`, like `register_session`. Events
    /// ingested for the session after this call (and before a re-register)
    /// flow through without an engine, exactly like an unknown session's.
    pub fn teardown_session(&mut self, peer: PeerId) {
        self.flight.record(
            self.clock.precise(),
            FlightKind::Teardown,
            format!("peer={}", peer.0),
        );
        match self.mode.as_mut().expect("runtime live") {
            Mode::Inline(inline) => {
                inline.engines.remove(&peer);
                inline.applier.teardown_session(peer);
            }
            Mode::Sharded(sharded) => {
                sharded
                    .default_handle
                    .as_mut()
                    .expect("default handle live")
                    .teardown_session(peer);
            }
        }
    }

    /// Flushes the default handle's buffered batches and blocks until all
    /// shards *and* the applier have fully processed everything enqueued so
    /// far.
    ///
    /// Other producers' [`IngestHandle`]s are *not* flushed — flush (or
    /// finish) them first if their buffered events must be part of the
    /// drain.
    pub fn flush(&mut self) {
        match self.mode.as_mut().expect("runtime live") {
            Mode::Inline(_) => {}
            Mode::Sharded(sharded) => {
                sharded
                    .default_handle
                    .as_mut()
                    .expect("default handle live")
                    .flush();
                let seq = sharded.next_barrier;
                sharded.next_barrier += 1;
                for tx in &sharded.shard_txs {
                    tx.send(ShardMsg::Barrier(seq)).expect("shard thread alive");
                }
                // Each shard worker broadcasts the barrier to every applier
                // shard; an applier acks once all workers' copies arrived.
                // Barriers complete in order: block until every applier shard
                // has acked ours.
                while sharded.barrier_acked.iter().any(|&acked| acked <= seq) {
                    let (idx, done) = sharded.barrier_rx.recv().expect("applier thread alive");
                    sharded.barrier_acked[idx] = sharded.barrier_acked[idx].max(done + 1);
                }
                self.flight.record(
                    self.clock.precise(),
                    FlightKind::Barrier,
                    format!("seq={seq} complete"),
                );
            }
        }
    }

    /// Called once BGP has reconverged: flushes the pipeline, then runs the
    /// (incremental) resync on the applier thread. Returns the number of
    /// SWIFT rules removed.
    pub fn resync_after_convergence(&mut self) -> usize {
        self.flush();
        let removed = match self.mode.as_mut().expect("runtime live") {
            Mode::Inline(inline) => inline.applier.resync_after_convergence(),
            Mode::Sharded(sharded) => {
                // Fan the resync out: every applier shard retires the
                // outstanding reroutes and retags the dirty prefixes of its
                // own range (the pipeline is already drained by the flush, so
                // the rendezvous is just the K replies).
                let (reply_tx, reply_rx) = mpsc::channel();
                for tx in &sharded.applier_txs {
                    tx.send(ApplierMsg::Resync(reply_tx.clone()))
                        .expect("applier thread alive");
                }
                drop(reply_tx);
                (0..sharded.applier_txs.len())
                    .map(|_| reply_rx.recv().expect("applier replies"))
                    .sum()
            }
        };
        self.flight.record(
            self.clock.precise(),
            FlightKind::Resync,
            format!("removed={removed}"),
        );
        removed
    }

    /// Shuts the pipeline down (flushing everything still buffered) and
    /// returns the final actions, applier state and metrics.
    pub fn finish(mut self) -> RuntimeReport {
        self.shutdown().expect("first shutdown")
    }

    /// Internal teardown shared by [`ShardedRuntime::finish`] and `Drop`.
    fn shutdown(&mut self) -> Option<RuntimeReport> {
        let mode = self.mode.take()?;
        self.flight
            .record(self.clock.precise(), FlightKind::Shutdown, "runtime finish");
        let wall = self
            .started
            .get()
            .map(|s| s.elapsed())
            .unwrap_or(Duration::ZERO);
        match mode {
            Mode::Inline(inline) => {
                // Inline processing has no queueing, so no latency samples
                // exist: the empty histograms honestly summarise to count 0
                // rather than fabricating zeros.
                let secs = wall.as_secs_f64();
                Some(RuntimeReport {
                    actions: inline.applier.actions().to_vec(),
                    metrics: RuntimeMetrics {
                        shards: 0,
                        producers: 0,
                        events: self.events,
                        dropped: 0,
                        wall,
                        events_per_sec: if secs > 0.0 {
                            self.events as f64 / secs
                        } else {
                            0.0
                        },
                        per_shard: Vec::new(),
                        per_applier: Vec::new(),
                        event_latency: latency_summary(&LogHistogram::new()),
                        reroute_latency: latency_summary(&LogHistogram::new()),
                        event_histogram: LogHistogram::new(),
                        reroute_histogram: LogHistogram::new(),
                        stages: StageHistograms::new(),
                    },
                    appliers: vec![inline.applier],
                    partitioner: PrefixPartitioner::new(1),
                })
            }
            Mode::Sharded(mut sharded) => {
                // From here on, handles finding a disconnected queue treat
                // it as "the runtime finished" rather than a crashed worker.
                // Release pairs with the Acquire load in
                // `IngestHandle::on_disconnected`: a handle that observes the
                // flag also observes everything shutdown published before it.
                // (The disconnect itself is only observable after the worker
                // exits, but that edge runs the wrong way for the flag — the
                // atomics auditor wants the pair explicit, and it is free
                // here, far off the hot path.)
                sharded.shared.shutdown.store(true, Ordering::Release);
                // The default handle is a producer like any other: finishing
                // it flushes its buffers and folds its counters into the
                // shared accumulator — external handles should already have
                // done the same.
                if let Some(handle) = sharded.default_handle.take() {
                    handle.finish();
                }
                for tx in &sharded.shard_txs {
                    let _ = tx.send(ShardMsg::Shutdown);
                }
                let mut shard_reports: Vec<worker::ShardWorkerReport> = sharded
                    .shard_handles
                    .into_iter()
                    .map(|h| h.join().expect("shard thread exits cleanly"))
                    .collect();
                shard_reports.sort_by_key(|r| r.shard);
                drop(sharded.applier_txs);
                let mut applier_reports: Vec<worker::ApplierReport> = sharded
                    .applier_handles
                    .into_iter()
                    .map(|h| h.join().expect("applier thread exits cleanly"))
                    .collect();
                applier_reports.sort_by_key(|r| r.idx);
                let wall = self
                    .started
                    .get()
                    .map(|s| s.elapsed())
                    .unwrap_or(Duration::ZERO);
                let producers = sharded
                    .shared
                    .merged
                    .lock()
                    .expect("producer counter lock")
                    .clone();

                let mut merged_latency = LogHistogram::new();
                let mut merged_stages = StageHistograms::new();
                let per_shard: Vec<ShardMetrics> = shard_reports
                    .iter()
                    .map(|r| {
                        merged_latency.merge(&r.latency);
                        merged_stages.merge(&r.stages);
                        let busy = r.busy.as_secs_f64();
                        ShardMetrics {
                            shard: r.shard,
                            sessions: r.sessions,
                            events: r.events,
                            batches: r.batches,
                            dropped: producers.dropped[r.shard],
                            max_queue_depth: producers.max_queue_depth[r.shard],
                            event_latency: latency_summary(&r.latency),
                            events_per_sec: if busy > 0.0 {
                                r.events as f64 / busy
                            } else {
                                0.0
                            },
                        }
                    })
                    .collect();
                let dropped = producers.total_dropped();
                let secs = wall.as_secs_f64();
                let delivered = producers.events.saturating_sub(dropped);
                // Merge the applier shards: actions concatenated in partition
                // order (a session's installs all live on its home applier,
                // so per-session subsequences are preserved), latencies
                // merged, one metrics row per applier shard.
                let mut actions = Vec::new();
                let mut merged_reroute = LogHistogram::new();
                let mut per_applier = Vec::with_capacity(applier_reports.len());
                for r in &applier_reports {
                    actions.extend_from_slice(r.applier.actions());
                    merged_reroute.merge(&r.reroute_latency);
                    merged_stages.merge(&r.stages);
                    let busy = r.busy.as_secs_f64();
                    per_applier.push(ApplierShardMetrics {
                        shard: r.idx,
                        events: r.events,
                        batches: r.batches,
                        installs: r.installs,
                        max_queue_depth: sharded.applier_high[r.idx].get() as usize,
                        busy: r.busy,
                        events_per_sec: if busy > 0.0 {
                            r.events as f64 / busy
                        } else {
                            0.0
                        },
                        installs_per_sec: if busy > 0.0 {
                            r.installs as f64 / busy
                        } else {
                            0.0
                        },
                        pending_high_water: r.pending_high_water,
                        pending_folded: r.pending_folded,
                        resyncs: r.resyncs,
                    });
                }
                Some(RuntimeReport {
                    actions,
                    metrics: RuntimeMetrics {
                        shards: self.config.shards,
                        producers: producers.producers,
                        events: producers.events,
                        dropped,
                        wall,
                        events_per_sec: if secs > 0.0 {
                            delivered as f64 / secs
                        } else {
                            0.0
                        },
                        per_shard,
                        per_applier,
                        event_latency: latency_summary(&merged_latency),
                        reroute_latency: latency_summary(&merged_reroute),
                        event_histogram: merged_latency,
                        reroute_histogram: merged_reroute,
                        stages: merged_stages,
                    },
                    appliers: applier_reports.into_iter().map(|r| r.applier).collect(),
                    partitioner: sharded.partitioner,
                })
            }
        }
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Summarises a nanosecond-valued latency histogram in the microseconds the
/// runtime has always reported ([`LatencySummary`] keeps its shape; only the
/// source changed from an evicting sample ring to an exact-merge histogram).
fn latency_summary(h: &LogHistogram) -> LatencySummary {
    let s = h.summary().scaled_down(1_000);
    LatencySummary {
        count: s.count,
        p50: s.p50,
        p99: s.p99,
        max: s.max,
        mean: s.mean,
    }
}

/// The home shard of a session: multiplicative (Fibonacci) hash of the peer
/// id, folded onto the shard count. Stable across runs by construction.
fn shard_of(peer: PeerId, shards: usize) -> usize {
    let h = (u64::from(peer.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    (h as usize) % shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_bgp::{AsPath, Asn, Prefix, Route, RouteAttributes};
    use swift_core::{EncodingConfig, InferenceConfig};

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    fn config() -> SwiftConfig {
        SwiftConfig {
            inference: InferenceConfig {
                burst_start_threshold: 50,
                burst_stop_threshold: 2,
                triggering_threshold: 100,
                use_history: false,
                ..Default::default()
            },
            encoding: EncodingConfig {
                min_prefixes_per_link: 50,
                ..Default::default()
            },
        }
    }

    /// `peers` sessions, each announcing `n` prefixes behind its own remote
    /// link, plus one shared backup peer with disjoint paths.
    fn multi_table(peers: u32, n: u32) -> RoutingTable {
        let mut t = RoutingTable::new();
        let backup = PeerId(1_000);
        t.add_peer(backup, Asn(1_000));
        for s in 0..peers {
            let peer = PeerId(s + 1);
            t.add_peer(peer, Asn(s + 1));
            for i in 0..n {
                let idx = s * n + i;
                let mut attrs =
                    RouteAttributes::from_path(AsPath::new([s + 1, 10_000 + s, 20_000 + s]));
                attrs.local_pref = Some(200);
                t.announce(peer, p(idx), Route::new(peer, attrs, 0));
                t.announce(
                    backup,
                    p(idx),
                    Route::new(
                        backup,
                        RouteAttributes::from_path(AsPath::new([1_000u32, 30_000 + idx % 7])),
                        0,
                    ),
                );
            }
        }
        t
    }

    /// A withdrawal burst on every session, events interleaved round-robin.
    fn interleaved_bursts(peers: u32, n: u32) -> Vec<(PeerId, ElementaryEvent)> {
        let mut events = Vec::new();
        for i in 0..n {
            for s in 0..peers {
                events.push((
                    PeerId(s + 1),
                    ElementaryEvent::Withdraw {
                        timestamp: u64::from(i * peers + s) * 1_000,
                        prefix: p(s * n + i),
                    },
                ));
            }
        }
        events
    }

    fn run(shards: usize, peers: u32, n: u32) -> RuntimeReport {
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig {
                shards,
                batch_size: 16,
                ..RuntimeConfig::sharded(shards)
            },
            config(),
            multi_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest_stream(interleaved_bursts(peers, n));
        runtime.finish()
    }

    #[test]
    fn deterministic_mode_matches_swift_router() {
        let peers = 3u32;
        let n = 200u32;
        let mut router = swift_core::SwiftRouter::new(
            config(),
            multi_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        for (peer, ev) in interleaved_bursts(peers, n) {
            router.handle_event(peer, &ev);
        }
        let report = run(0, peers, n);
        assert_eq!(report.actions.len(), router.actions().len());
        for (a, b) in report.actions.iter().zip(router.actions()) {
            assert_eq!(a.session, b.session);
            assert_eq!(a.time, b.time);
            assert_eq!(a.links, b.links);
            assert_eq!(a.predicted, b.predicted);
            assert_eq!(a.rules_installed, b.rules_installed);
        }
        assert_eq!(report.metrics.shards, 0);
        assert_eq!(report.metrics.events, u64::from(peers * n));
    }

    #[test]
    fn sharded_mode_reaches_the_same_per_session_decisions() {
        let peers = 4u32;
        let n = 200u32;
        let baseline = run(0, peers, n);
        for shards in [1usize, 2, 3] {
            let report = run(shards, peers, n);
            assert_eq!(report.metrics.shards, shards);
            assert_eq!(report.metrics.dropped, 0);
            assert_eq!(
                report.actions.len(),
                baseline.actions.len(),
                "{shards} shards"
            );
            for s in 0..peers {
                let peer = PeerId(s + 1);
                let got = report.actions_for(peer);
                let want = baseline.actions_for(peer);
                assert_eq!(got.len(), want.len(), "session {peer:?}");
                for (a, b) in got.iter().zip(want.iter()) {
                    assert_eq!(a.time, b.time);
                    assert_eq!(a.links, b.links);
                    assert_eq!(a.predicted, b.predicted);
                }
            }
            // Every event reached a shard and the applier.
            let shard_events: u64 = report.metrics.per_shard.iter().map(|m| m.events).sum();
            assert_eq!(shard_events, u64::from(peers * n));
            // Every session landed somewhere (and the shared backup peer too).
            let sessions: usize = report.metrics.per_shard.iter().map(|m| m.sessions).sum();
            assert_eq!(sessions, peers as usize + 1);
        }
    }

    #[test]
    fn flush_drains_and_resync_clears_rules() {
        let peers = 2u32;
        let n = 200u32;
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig {
                batch_size: 8,
                ..RuntimeConfig::sharded(2)
            },
            config(),
            multi_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest_stream(interleaved_bursts(peers, n));
        runtime.flush();
        let removed = runtime.resync_after_convergence();
        assert!(removed > 0, "the bursts installed reroute rules");
        let report = runtime.finish();
        assert_eq!(report.applier().forwarding().swift_rule_count(), 0);
        assert_eq!(
            report.applier().pending_events(),
            0,
            "resync synced the RIB"
        );
        assert_eq!(report.actions.len(), peers as usize);
    }

    #[test]
    fn drop_newest_sheds_load_instead_of_blocking() {
        let peers = 2u32;
        let n = 400u32;
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig {
                batch_size: 4,
                queue_capacity: 1,
                applier_capacity: 1,
                backpressure: BackpressurePolicy::DropNewest,
                ..RuntimeConfig::sharded(2)
            },
            config(),
            multi_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest_stream(interleaved_bursts(peers, n));
        let report = runtime.finish();
        let processed: u64 = report.metrics.per_shard.iter().map(|m| m.events).sum();
        assert_eq!(
            processed + report.metrics.dropped,
            u64::from(peers * n),
            "every event is either processed or counted as dropped"
        );
    }

    #[test]
    fn drop_newest_high_water_stays_within_queue_capacity() {
        // Saturate tiny queues so batches are provably shed, then check the
        // reported high-water: a dropped batch never occupied a queue slot,
        // so the mark must not exceed the channel capacity (the pre-fix code
        // bumped the mark before the failed try_send and reported
        // capacity + k).
        let peers = 2u32;
        let n = 2_000u32;
        let queue_capacity = 1usize;
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig {
                batch_size: 2,
                queue_capacity,
                applier_capacity: 1,
                backpressure: BackpressurePolicy::DropNewest,
                ..RuntimeConfig::sharded(2)
            },
            config(),
            multi_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest_stream(interleaved_bursts(peers, n));
        let report = runtime.finish();
        assert!(
            report.metrics.dropped > 0,
            "the run must actually saturate for this regression test to bite"
        );
        for m in &report.metrics.per_shard {
            assert!(
                m.max_queue_depth <= queue_capacity,
                "shard {} reports max_queue_depth {} > queue capacity {queue_capacity}",
                m.shard,
                m.max_queue_depth
            );
        }
    }

    #[test]
    fn flush_on_empty_runtime_and_double_flush() {
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig::sharded(2),
            config(),
            multi_table(2, 60),
            ReroutingPolicy::allow_all(),
        );
        // Nothing ingested: the barrier round-trips through every shard and
        // the applier without deadlock.
        runtime.flush();
        // Barriers are sequenced, so immediate re-flush (nothing in between)
        // and flush-after-work both complete.
        runtime.flush();
        runtime.ingest_stream(interleaved_bursts(2, 60));
        runtime.flush();
        runtime.flush();
        let report = runtime.finish();
        assert_eq!(report.metrics.events, 120);
        assert_eq!(report.metrics.dropped, 0);
    }

    #[test]
    fn flush_completes_after_dropped_batches() {
        let peers = 2u32;
        let n = 1_000u32;
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig {
                batch_size: 2,
                queue_capacity: 1,
                applier_capacity: 1,
                backpressure: BackpressurePolicy::DropNewest,
                ..RuntimeConfig::sharded(2)
            },
            config(),
            multi_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest_stream(interleaved_bursts(peers, n));
        // The barrier is sent with a blocking send even under DropNewest, so
        // the flush must drain everything still queued and return.
        runtime.flush();
        runtime.flush();
        let report = runtime.finish();
        let processed: u64 = report.metrics.per_shard.iter().map(|m| m.events).sum();
        assert_eq!(processed + report.metrics.dropped, u64::from(peers * n));
    }

    /// Drives a two-burst run with a mid-run teardown + re-register of peer 2
    /// between the bursts.
    fn run_with_churn(shards: usize, peers: u32, n: u32) -> RuntimeReport {
        let table = multi_table(peers, n);
        let routes: Vec<(Prefix, Route)> = table
            .adj_rib_in(PeerId(2))
            .unwrap()
            .iter()
            .map(|(prefix, route)| (*prefix, route.clone()))
            .collect();
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig {
                batch_size: 16,
                ..RuntimeConfig::sharded(shards)
            },
            config(),
            table,
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest_stream(interleaved_bursts(peers, n));
        runtime.resync_after_convergence();
        runtime.teardown_session(PeerId(2));
        runtime.register_session(PeerId(2), Asn(2), routes);
        // Second burst on the re-registered session only: its fresh engine
        // sees the full RIB again and must re-infer.
        runtime.ingest_stream((0..n).map(|i| {
            (
                PeerId(2),
                ElementaryEvent::Withdraw {
                    timestamp: 1_000_000_000 + u64::from(i) * 1_000,
                    prefix: p(n + i),
                },
            )
        }));
        runtime.finish()
    }

    #[test]
    fn session_churn_reaches_identical_decisions_across_modes() {
        let peers = 3u32;
        let n = 200u32;
        let baseline = run_with_churn(0, peers, n);
        // Both lives of peer 2 produced a reroute: one per burst.
        assert_eq!(
            baseline.actions_for(PeerId(2)).len(),
            2,
            "one reroute per life of the flapped session"
        );
        for shards in [1usize, 2, 3] {
            let report = run_with_churn(shards, peers, n);
            assert_eq!(report.metrics.dropped, 0);
            for s in 0..peers {
                let peer = PeerId(s + 1);
                let got = report.actions_for(peer);
                let want = baseline.actions_for(peer);
                assert_eq!(got.len(), want.len(), "session {peer:?} @ {shards} shards");
                for (a, b) in got.iter().zip(want.iter()) {
                    assert_eq!(a.time, b.time);
                    assert_eq!(a.links, b.links);
                    assert_eq!(a.predicted, b.predicted);
                }
            }
        }
    }

    #[test]
    fn teardown_cleans_rules_and_rib_mirror() {
        let peers = 2u32;
        let n = 200u32;
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig::deterministic(),
            config(),
            multi_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest_stream(interleaved_bursts(peers, n));
        let report_rules = {
            // Both sessions' bursts installed rules; tearing peer 2 down must
            // remove exactly its rules and routes while peer 1's survive.
            runtime.teardown_session(PeerId(2));
            let report = runtime.finish();
            assert_eq!(
                report
                    .applier()
                    .table()
                    .adj_rib_in(PeerId(2))
                    .unwrap()
                    .len(),
                0,
                "departed peer's RIB mirror is empty"
            );
            // The shared backup peer's routes were never withdrawn — a
            // teardown of peer 2 must not touch them.
            assert_eq!(
                report
                    .applier()
                    .table()
                    .adj_rib_in(PeerId(1_000))
                    .unwrap()
                    .len(),
                (peers * n) as usize,
                "surviving peers' RIB mirrors are intact"
            );
            assert_eq!(report.actions.len(), peers as usize, "history is kept");
            report.applier().forwarding().swift_rule_count()
        };
        assert!(report_rules > 0, "peer 1's reroute rules survive");
    }

    /// Splits the interleaved burst stream into `k` per-source streams with
    /// sessions disjoint across sources (session s → source (s-1) % k),
    /// preserving each session's order — the pinning rule.
    fn partition_by_session(
        events: &[(PeerId, ElementaryEvent)],
        k: usize,
    ) -> Vec<Vec<(PeerId, ElementaryEvent)>> {
        let mut sources = vec![Vec::new(); k];
        for (peer, event) in events {
            sources[(peer.0 as usize).saturating_sub(1) % k].push((*peer, event.clone()));
        }
        sources
    }

    #[test]
    fn concurrent_producers_reach_inline_decisions_with_well_defined_metrics() {
        let peers = 4u32;
        let n = 200u32;
        let baseline = run(0, peers, n);
        let events = interleaved_bursts(peers, n);
        for producers in [2usize, 3] {
            let runtime = ShardedRuntime::new(
                RuntimeConfig {
                    batch_size: 16,
                    ..RuntimeConfig::sharded(2)
                },
                config(),
                multi_table(peers, n),
                ReroutingPolicy::allow_all(),
            );
            std::thread::scope(|scope| {
                for source in partition_by_session(&events, producers) {
                    let mut handle = runtime.handle();
                    scope.spawn(move || {
                        handle.ingest_stream(source);
                        handle.finish();
                    });
                }
            });
            let report = runtime.finish();
            // Regression (run-start used to be stamped on `&mut self`): with
            // no ingest() call ever made on the runtime itself, the wall
            // clock must still start at the producers' first event.
            assert!(
                report.metrics.wall > Duration::ZERO,
                "wall is stamped by the first producer event, not by ingest()"
            );
            assert_eq!(report.metrics.events, u64::from(peers * n));
            assert_eq!(report.metrics.dropped, 0);
            assert_eq!(
                report.metrics.producers, producers,
                "every finished handle that saw events is counted"
            );
            for s in 0..peers {
                let peer = PeerId(s + 1);
                let got = report.actions_for(peer);
                let want = baseline.actions_for(peer);
                assert_eq!(got.len(), want.len(), "session {peer:?}");
                for (a, b) in got.iter().zip(want.iter()) {
                    assert_eq!(a.time, b.time);
                    assert_eq!(a.links, b.links);
                    assert_eq!(a.predicted, b.predicted);
                }
            }
        }
    }

    #[test]
    fn producer_counters_merge_across_handles_under_drop_newest() {
        // Two producers against saturated tiny queues: the report's drop
        // count and high-water must reflect *both* handles' counters merged
        // (sum of drops, max of high-waters), and every event must be either
        // processed or counted as dropped.
        let peers = 2u32;
        let n = 2_000u32;
        let queue_capacity = 1usize;
        let runtime = ShardedRuntime::new(
            RuntimeConfig {
                batch_size: 2,
                queue_capacity,
                applier_capacity: 1,
                backpressure: BackpressurePolicy::DropNewest,
                ..RuntimeConfig::sharded(2)
            },
            config(),
            multi_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        let events = interleaved_bursts(peers, n);
        std::thread::scope(|scope| {
            for source in partition_by_session(&events, 2) {
                let mut handle = runtime.handle();
                scope.spawn(move || {
                    handle.ingest_stream(source);
                    handle.finish();
                });
            }
        });
        let report = runtime.finish();
        assert!(report.metrics.dropped > 0, "the run must actually saturate");
        assert_eq!(report.metrics.producers, 2);
        let processed: u64 = report.metrics.per_shard.iter().map(|m| m.events).sum();
        assert_eq!(processed + report.metrics.dropped, u64::from(peers * n));
        for m in &report.metrics.per_shard {
            assert!(
                m.max_queue_depth <= queue_capacity,
                "shard {} reports max_queue_depth {} > capacity {queue_capacity}",
                m.shard,
                m.max_queue_depth
            );
        }
    }

    #[test]
    fn handle_outliving_the_runtime_is_harmless() {
        let runtime = ShardedRuntime::new(
            RuntimeConfig::sharded(1),
            config(),
            multi_table(1, 60),
            ReroutingPolicy::allow_all(),
        );
        let mut orphan = runtime.handle();
        let report = runtime.finish();
        assert_eq!(report.metrics.events, 0);
        // The queues are gone: events fed to the orphan are silently shed
        // (counted in the orphan's own counters, which no report will read),
        // and lifecycle calls are no-ops — nothing panics.
        orphan.ingest(
            PeerId(1),
            ElementaryEvent::Withdraw {
                timestamp: 0,
                prefix: p(0),
            },
        );
        orphan.flush();
        orphan.teardown_session(PeerId(1));
        orphan.finish();
    }

    #[test]
    #[should_panic(expected = "deterministic inline mode has no producer handles")]
    fn inline_mode_refuses_to_hand_out_producer_handles() {
        let runtime = ShardedRuntime::new(
            RuntimeConfig::deterministic(),
            config(),
            multi_table(1, 60),
            ReroutingPolicy::allow_all(),
        );
        let _ = runtime.handle();
    }

    #[test]
    fn handle_clone_is_a_fresh_producer() {
        let runtime = ShardedRuntime::new(
            RuntimeConfig::sharded(2),
            config(),
            multi_table(2, 60),
            ReroutingPolicy::allow_all(),
        );
        let mut a = runtime.handle();
        a.ingest(
            PeerId(1),
            ElementaryEvent::Withdraw {
                timestamp: 0,
                prefix: p(0),
            },
        );
        let b = a.clone();
        assert_eq!(a.events(), 1);
        assert_eq!(b.events(), 0, "a clone starts with empty counters");
        a.finish();
        b.finish();
        let report = runtime.finish();
        assert_eq!(report.metrics.events, 1);
        assert_eq!(
            report.metrics.producers, 1,
            "the event-less clone is not counted as a producer"
        );
    }

    #[test]
    fn unknown_sessions_flow_through_without_engines() {
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig::sharded(2),
            config(),
            multi_table(2, 60),
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest(
            PeerId(9_999),
            ElementaryEvent::Withdraw {
                timestamp: 0,
                prefix: p(0),
            },
        );
        let report = runtime.finish();
        assert!(report.actions.is_empty());
        assert_eq!(report.metrics.events, 1);
    }

    /// Block-spaced prefix for session `s`: the corpus generator spaces
    /// sessions 65 536 prefix slots apart, which puts each session's block in
    /// its own /8 — the invariant the applier partitioner keys on.
    fn bp(s: u32, i: u32) -> Prefix {
        p(s * 65_536 + i)
    }

    /// [`multi_table`] with block-spaced prefixes, so applier partitions
    /// actually split the forwarding table instead of all landing in one /8.
    fn block_table(peers: u32, n: u32) -> RoutingTable {
        let mut t = RoutingTable::new();
        let backup = PeerId(1_000);
        t.add_peer(backup, Asn(1_000));
        for s in 0..peers {
            let peer = PeerId(s + 1);
            t.add_peer(peer, Asn(s + 1));
            for i in 0..n {
                let mut attrs =
                    RouteAttributes::from_path(AsPath::new([s + 1, 10_000 + s, 20_000 + s]));
                attrs.local_pref = Some(200);
                t.announce(peer, bp(s, i), Route::new(peer, attrs, 0));
                t.announce(
                    backup,
                    bp(s, i),
                    Route::new(
                        backup,
                        RouteAttributes::from_path(AsPath::new([1_000u32, 30_000 + i % 7])),
                        0,
                    ),
                );
            }
        }
        t
    }

    /// A withdrawal burst on every session over block-spaced prefixes,
    /// interleaved round-robin.
    fn block_bursts(peers: u32, n: u32) -> Vec<(PeerId, ElementaryEvent)> {
        let mut events = Vec::new();
        for i in 0..n {
            for s in 0..peers {
                events.push((
                    PeerId(s + 1),
                    ElementaryEvent::Withdraw {
                        timestamp: u64::from(i * peers + s) * 1_000,
                        prefix: bp(s, i),
                    },
                ));
            }
        }
        events
    }

    fn run_blocks(shards: usize, applier_shards: usize, peers: u32, n: u32) -> RuntimeReport {
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig {
                batch_size: 16,
                applier_shards,
                ..RuntimeConfig::sharded(shards)
            },
            config(),
            block_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest_stream(block_bursts(peers, n));
        runtime.finish()
    }

    #[test]
    fn applier_shards_reach_identical_decisions_and_rules() {
        let peers = 3u32;
        let n = 200u32;
        let inline = run_blocks(0, 1, peers, n);
        let single = run_blocks(2, 1, peers, n);
        assert!(inline.swift_rule_count() > 0, "the bursts install rules");
        for applier_shards in [1usize, 2, 3] {
            let report = run_blocks(2, applier_shards, peers, n);
            assert_eq!(report.metrics.dropped, 0);
            for s in 0..peers {
                let peer = PeerId(s + 1);
                let got = report.actions_for(peer);
                let want = inline.actions_for(peer);
                assert_eq!(got.len(), want.len(), "session {peer:?}");
                for (a, b) in got.iter().zip(want.iter()) {
                    assert_eq!(a.time, b.time);
                    assert_eq!(a.links, b.links);
                    assert_eq!(a.predicted, b.predicted);
                    assert_eq!(
                        a.rules_installed, b.rules_installed,
                        "session {peer:?} @ {applier_shards} applier shards"
                    );
                }
            }
            assert_eq!(
                report.swift_rule_count(),
                inline.swift_rule_count(),
                "{applier_shards} applier shards vs inline"
            );
            assert_eq!(report.swift_rule_count(), single.swift_rule_count());
            // Rerouted traffic resolves to the same backup next-hop through
            // the partitioned forwarding planes.
            for s in 0..peers {
                for i in (0..n).step_by(37) {
                    assert_eq!(
                        report.forwarding_next_hop(&bp(s, i)),
                        inline.forwarding_next_hop(&bp(s, i)),
                        "next hop for {:?} @ {applier_shards} applier shards",
                        bp(s, i)
                    );
                }
            }
        }
    }

    #[test]
    fn per_applier_metrics_account_for_every_event_and_install() {
        let peers = 3u32;
        let n = 200u32;
        let applier_shards = 3usize;
        let report = run_blocks(2, applier_shards, peers, n);
        assert_eq!(report.metrics.per_applier.len(), applier_shards);
        let events: u64 = report.metrics.per_applier.iter().map(|m| m.events).sum();
        assert_eq!(
            events,
            u64::from(peers * n),
            "every event reached an applier"
        );
        let installs: u64 = report.metrics.per_applier.iter().map(|m| m.installs).sum();
        let expected: u64 = report
            .actions
            .iter()
            .map(|a| a.rules_installed as u64)
            .sum();
        assert_eq!(installs, expected, "install counters match the action log");
        assert!(
            report
                .metrics
                .per_applier
                .iter()
                .all(|m| m.busy > Duration::ZERO),
            "block-spaced sessions keep every applier shard busy"
        );
        // Sessions span three distinct /8 blocks, so with three partitions
        // each applier owns at least one session's installs.
        assert!(
            report.metrics.per_applier.iter().all(|m| m.events > 0),
            "the /8 partitioning spreads block-spaced sessions across appliers"
        );
    }

    #[test]
    fn resync_with_applier_shards_clears_rules_on_every_partition() {
        let peers = 2u32;
        let n = 200u32;
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig {
                batch_size: 8,
                applier_shards: 2,
                ..RuntimeConfig::sharded(2)
            },
            config(),
            block_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest_stream(block_bursts(peers, n));
        runtime.flush();
        let removed = runtime.resync_after_convergence();
        assert!(removed > 0, "the bursts installed reroute rules");
        let report = runtime.finish();
        assert_eq!(report.swift_rule_count(), 0, "resync swept all partitions");
        assert_eq!(report.pending_events(), 0, "resync synced every RIB mirror");
        assert_eq!(report.actions.len(), peers as usize);
        for m in &report.metrics.per_applier {
            assert_eq!(m.resyncs, 1, "applier {} served the resync", m.shard);
        }
    }

    #[test]
    fn session_churn_with_applier_shards_matches_inline() {
        let peers = 3u32;
        let n = 200u32;
        let run_churn = |shards: usize, applier_shards: usize| {
            let table = block_table(peers, n);
            let routes: Vec<(Prefix, Route)> = table
                .adj_rib_in(PeerId(2))
                .unwrap()
                .iter()
                .map(|(prefix, route)| (*prefix, route.clone()))
                .collect();
            let mut runtime = ShardedRuntime::new(
                RuntimeConfig {
                    batch_size: 16,
                    applier_shards,
                    ..RuntimeConfig::sharded(shards)
                },
                config(),
                table,
                ReroutingPolicy::allow_all(),
            );
            runtime.ingest_stream(block_bursts(peers, n));
            runtime.resync_after_convergence();
            runtime.teardown_session(PeerId(2));
            runtime.register_session(PeerId(2), Asn(2), routes);
            runtime.ingest_stream((0..n).map(|i| {
                (
                    PeerId(2),
                    ElementaryEvent::Withdraw {
                        timestamp: 1_000_000_000 + u64::from(i) * 1_000,
                        prefix: bp(1, i),
                    },
                )
            }));
            runtime.finish()
        };
        let baseline = run_churn(0, 1);
        assert_eq!(
            baseline.actions_for(PeerId(2)).len(),
            2,
            "one reroute per life of the flapped session"
        );
        for applier_shards in [2usize, 3] {
            let report = run_churn(2, applier_shards);
            assert_eq!(report.metrics.dropped, 0);
            for s in 0..peers {
                let peer = PeerId(s + 1);
                let got = report.actions_for(peer);
                let want = baseline.actions_for(peer);
                assert_eq!(
                    got.len(),
                    want.len(),
                    "session {peer:?} @ {applier_shards} applier shards"
                );
                for (a, b) in got.iter().zip(want.iter()) {
                    assert_eq!(a.time, b.time);
                    assert_eq!(a.links, b.links);
                    assert_eq!(a.predicted, b.predicted);
                    assert_eq!(a.rules_installed, b.rules_installed);
                }
            }
            assert_eq!(report.swift_rule_count(), baseline.swift_rule_count());
        }
    }

    #[test]
    #[should_panic(expected = "applier() needs applier_shards = 1")]
    fn single_applier_accessor_refuses_partitioned_reports() {
        let report = run_blocks(2, 2, 2, 200);
        assert!(
            report.try_applier().is_none(),
            "try_applier must decline a partitioned report instead of panicking"
        );
        let _ = report.applier();
    }

    #[test]
    fn try_applier_yields_the_single_shard() {
        let report = run_blocks(2, 1, 2, 200);
        let applier = report
            .try_applier()
            .expect("applier_shards = 1 reports expose the single applier");
        assert_eq!(
            applier.forwarding().swift_rule_count(),
            report.swift_rule_count(),
            "single-shard aggregate equals the shard itself"
        );
    }

    #[test]
    fn registry_snapshots_stage_traces_and_flight_events_observe_the_run() {
        let peers = 2u32;
        let n = 200u32;
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig {
                batch_size: 8,
                // Trace every event so the stage histograms are provably fed.
                trace_sample_interval: 1,
                ..RuntimeConfig::sharded(2)
            },
            config(),
            multi_table(peers, n),
            ReroutingPolicy::allow_all(),
        );
        let registry = runtime.registry();
        let flight = runtime.flight();
        runtime.ingest_stream(interleaved_bursts(peers, n));
        runtime.flush();
        // Live snapshot mid-run, without stopping anything: the barrier has
        // drained the pipeline, so the counters must account for every event.
        let snap = registry.snapshot();
        assert_eq!(snap["ingest.events"], u64::from(peers * n));
        let shard_events: u64 = (0..2).map(|i| snap[&format!("shard.{i}.events")]).sum();
        assert_eq!(shard_events, u64::from(peers * n));
        let applier_events: u64 = snap
            .iter()
            .filter(|(k, _)| k.starts_with("applier.") && k.ends_with(".events"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(applier_events, u64::from(peers * n));
        let removed = runtime.resync_after_convergence();
        assert!(removed > 0);
        let report = runtime.finish();
        // Every event fed the merged latency histogram; every traced event
        // crossed all four stage boundaries.
        assert_eq!(report.metrics.event_histogram.count(), u64::from(peers * n));
        assert_eq!(
            report.metrics.stages.queue_wait.count(),
            u64::from(peers * n)
        );
        assert_eq!(
            report.metrics.stages.inference.count(),
            u64::from(peers * n)
        );
        assert!(!report.metrics.stages.applier_wait.is_empty());
        assert!(!report.metrics.stages.install.is_empty());
        assert!(!report.metrics.reroute_histogram.is_empty());
        // The flight recorder captured the lifecycle: barrier, resync and the
        // final shutdown, in order.
        let kinds: Vec<FlightKind> = flight.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FlightKind::Barrier));
        assert!(kinds.contains(&FlightKind::Resync));
        assert_eq!(
            *kinds.last().expect("events recorded"),
            FlightKind::Shutdown
        );
    }

    #[test]
    fn trace_sampling_off_leaves_stage_histograms_empty() {
        let mut runtime = ShardedRuntime::new(
            RuntimeConfig {
                trace_sample_interval: 0,
                ..RuntimeConfig::sharded(2)
            },
            config(),
            multi_table(2, 100),
            ReroutingPolicy::allow_all(),
        );
        runtime.ingest_stream(interleaved_bursts(2, 100));
        let report = runtime.finish();
        assert_eq!(report.metrics.events, 200);
        assert!(report.metrics.stages.is_empty(), "no stamps when disabled");
        // The un-sampled latency histogram still sees every event.
        assert_eq!(report.metrics.event_histogram.count(), 200);
    }
}
