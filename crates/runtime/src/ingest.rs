//! The multi-producer ingest layer: per-source [`IngestHandle`]s.
//!
//! PR 4's runtime funnelled every event through one `&mut ShardedRuntime`
//! ingest loop — a single thread paying an `Instant::now()` and a session
//! hash per event, the last serialized stage in front of the shards. This
//! module removes it: any number of producer threads each own an
//! [`IngestHandle`] that batches events *per shard* and sends straight into
//! the shard queues, with no central dispatch thread in between.
//!
//! * **Ordering** — per-session order is preserved by *pinning*: all of a
//!   session's events (and its lifecycle calls) must go through exactly one
//!   handle. Within one handle, dispatch order per shard is ingest order, so
//!   each session's event stream reaches its home shard in order — the
//!   invariant the runtime's determinism guarantees rest on. Events of one
//!   session fed through two handles race at the shard queue and the
//!   guarantee is void (their *per-shard batches* interleave
//!   nondeterministically).
//! * **Clock** — events are stamped with a coarse epoch clock
//!   ([`EpochClock`]): one shared `AtomicU64` of nanoseconds since the
//!   runtime's base instant, refreshed by each producer every
//!   [`crate::RuntimeConfig::clock_refresh_interval`] events (and at every
//!   batch dispatch) instead of a syscall-backed `Instant::now()` per event.
//!   Latency percentiles trade at most one refresh interval of skew for an
//!   ingest path that is an atomic load.
//! * **Counters** — drop counts and queue high-waters are recorded
//!   per-handle-per-shard with no sharing on the hot path, and folded into
//!   the runtime's [`swift_core::metrics::ProducerCounters`] accumulator when
//!   the handle finishes ([`IngestHandle::finish`], or its `Drop`).
//!
//! Handles hold `SyncSender` clones, so they never outlive the channels; a
//! handle still alive after [`crate::ShardedRuntime::finish`] simply finds
//! the queues disconnected and counts further events as dropped.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use swift_bgp::{Asn, ElementaryEvent, InternedRib, PeerId, Prefix, Route};
use swift_core::metrics::ProducerCounters;
use swift_core::pipeline::SessionEngine;
use swift_core::SwiftConfig;
use swift_telemetry::{Counter, FlightKind, FlightRecorder, TraceSampler, TraceStamp};

use crate::worker::{IngestEvent, SessionRegistration, ShardMsg};
use crate::{shard_of, BackpressurePolicy};

/// Seeds a fresh [`SessionEngine`] from a session's announced routes — the
/// single registration-seeding path shared by the inline runtime and the
/// producer handles, so the two modes cannot silently diverge.
pub(crate) fn engine_from_routes(
    peer: PeerId,
    swift: &SwiftConfig,
    routes: &[(Prefix, Route)],
) -> SessionEngine {
    let mut rib = InternedRib::new();
    for (prefix, route) in routes {
        rib.push(*prefix, route.as_path());
    }
    SessionEngine::from_interned(peer, swift, &rib)
}

/// The runtime's coarse monotonic clock: nanoseconds since the runtime's
/// construction, cached in one atomic word.
///
/// Producers *read* the cached value per event ([`EpochClock::coarse`], an
/// atomic load) and *refresh* it only every few hundred events
/// ([`EpochClock::refresh`]); consumers measuring latency read the precise
/// value ([`EpochClock::precise`]) — they are off the ingest hot path and can
/// afford the syscall. `refresh` uses `fetch_max`, so concurrent refreshers
/// never move the cached epoch backwards.
#[derive(Debug)]
pub(crate) struct EpochClock {
    base: Instant,
    cached: AtomicU64,
}

impl EpochClock {
    pub(crate) fn new() -> Self {
        EpochClock {
            base: Instant::now(),
            cached: AtomicU64::new(0),
        }
    }

    /// The cached epoch, in nanoseconds since the base instant.
    pub(crate) fn coarse(&self) -> u64 {
        self.cached.load(Ordering::Relaxed)
    }

    /// Re-reads the real clock into the cache and returns it.
    pub(crate) fn refresh(&self) -> u64 {
        let now = self.precise();
        self.cached.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// The real monotonic clock, in nanoseconds since the base instant.
    pub(crate) fn precise(&self) -> u64 {
        u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Everything the producers share with each other and with the runtime:
/// channel ends, backpressure configuration, the epoch clock, the run-start
/// stamp and the merged-counter accumulator.
pub(crate) struct ProducerShared {
    pub(crate) shard_txs: Vec<SyncSender<ShardMsg>>,
    /// Per-shard in-flight batch counters (shared with the workers, which
    /// decrement on receive).
    pub(crate) depth: Vec<Arc<AtomicUsize>>,
    pub(crate) batch_size: usize,
    pub(crate) queue_capacity: usize,
    pub(crate) backpressure: BackpressurePolicy,
    pub(crate) clock: Arc<EpochClock>,
    /// First ingest across *all* producers — the run's wall-clock start.
    /// `OnceLock` so concurrent first events race safely to one stamp;
    /// shared with the runtime, which stamps it on inline ingests too.
    pub(crate) started: Arc<OnceLock<Instant>>,
    /// Set by the runtime at shutdown, before the worker channels close.
    /// Lets a handle distinguish "the runtime finished" (tolerated: late
    /// events are shed) from "a worker crashed while the runtime is live"
    /// (fail fast — silently shedding there would violate the lossless
    /// `Block` contract).
    pub(crate) shutdown: AtomicBool,
    /// Swift configuration, for seeding engines of mid-run registrations.
    pub(crate) swift: SwiftConfig,
    /// Finished producers' counters, folded together. Touched only at
    /// handle finish/drop — never on the ingest path.
    pub(crate) merged: Mutex<ProducerCounters>,
    /// Registry counter `ingest.events`, shared by every producer and bumped
    /// a batch at a time at dispatch (the per-event path stays counter-free).
    pub(crate) events_ctr: Counter,
    /// Registry counter `ingest.dropped`, bumped when a batch is shed.
    pub(crate) dropped_ctr: Counter,
    /// Lifecycle flight recorder (shed batches are lifecycle-worthy).
    pub(crate) flight: FlightRecorder,
    /// Sampling interval for pipeline tracing (0 = off).
    pub(crate) trace_interval: usize,
}

/// One producer's handle into the sharded runtime: a cloneable, `Send`
/// front-end that batches events per shard and sends them straight into the
/// shard queues.
///
/// Obtain from [`crate::ShardedRuntime::handle`] (or by cloning an existing
/// handle — a clone is a *new* producer with its own buffers and counters).
/// Feed it with [`IngestHandle::ingest`] / [`IngestHandle::ingest_stream`],
/// manage session lifecycles in-band with [`IngestHandle::register_session`]
/// / [`IngestHandle::teardown_session`], and call [`IngestHandle::finish`]
/// (or drop the handle) before `ShardedRuntime::flush`/`finish` so buffered
/// events are dispatched and the handle's counters reach the report.
///
/// **Pinning rule**: route all of a session's traffic through exactly one
/// handle. Sessions on different handles are fully concurrent; one session
/// split across handles loses its ordering guarantee (see the module docs).
pub struct IngestHandle {
    shared: Arc<ProducerShared>,
    /// Per-shard batch buffers owned by this producer alone.
    buffers: Vec<Vec<IngestEvent>>,
    /// Per-shard events shed by this producer (DropNewest, or a vanished
    /// runtime).
    dropped: Vec<u64>,
    /// Per-shard queue high-water this producer observed at enqueue.
    max_depth: Vec<usize>,
    events: u64,
    /// Events ingested since the last epoch refresh.
    since_refresh: usize,
    refresh_interval: usize,
    /// 1-in-N pipeline-trace sampler (per producer, so concurrent handles
    /// sample independently without sharing hot-path state).
    sampler: TraceSampler,
    finished: bool,
}

impl IngestHandle {
    pub(crate) fn new(shared: Arc<ProducerShared>, refresh_interval: usize) -> Self {
        let shards = shared.shard_txs.len();
        let batch = shared.batch_size;
        let sampler = TraceSampler::every(shared.trace_interval);
        IngestHandle {
            shared,
            buffers: (0..shards).map(|_| Vec::with_capacity(batch)).collect(),
            dropped: vec![0; shards],
            max_depth: vec![0; shards],
            events: 0,
            since_refresh: 0,
            refresh_interval: refresh_interval.max(1),
            sampler,
            finished: false,
        }
    }

    /// Events this handle has ingested so far (including any shed).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Ingests one per-prefix event received on the session with `peer`,
    /// stamping it with the coarse epoch clock and buffering it toward the
    /// session's home shard. Dispatches the shard's batch when full,
    /// honouring the configured backpressure policy.
    pub fn ingest(&mut self, peer: PeerId, event: ElementaryEvent) {
        // swift-lint: allow(instant-now) -- one-time run-start stamp: OnceLock makes this a single atomic load after the first event, not a per-event clock read
        self.shared.started.get_or_init(Instant::now);
        if self.since_refresh == 0 {
            self.shared.clock.refresh();
        }
        self.since_refresh += 1;
        if self.since_refresh >= self.refresh_interval {
            self.since_refresh = 0;
        }
        self.events += 1;
        let shard = shard_of(peer, self.buffers.len());
        // Sampled tracing: the 1-in-N hit pays one precise clock read for its
        // stamp; the other N−1 events pay a masked counter check.
        let trace = if self.sampler.sample() {
            Some(TraceStamp::at(self.shared.clock.precise()))
        } else {
            None
        };
        self.buffers[shard].push(IngestEvent {
            peer,
            event,
            ingest: self.shared.clock.coarse(),
            trace,
        });
        if self.buffers[shard].len() >= self.shared.batch_size {
            self.dispatch(shard);
        }
    }

    /// Ingests a whole stream of `(peer, event)` pairs.
    pub fn ingest_stream<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (PeerId, ElementaryEvent)>,
    {
        for (peer, event) in events {
            self.ingest(peer, event);
        }
    }

    /// Registers (or re-registers) a peering session through this handle,
    /// ordered in-band with the handle's ingested events: the session's home
    /// shard adopts a fresh engine seeded from `routes` and forwards the
    /// routing-state half to the applier. Never shed, even under
    /// [`BackpressurePolicy::DropNewest`].
    ///
    /// The in-band guarantee covers traffic *through this handle* — which is
    /// all of the session's traffic, under the pinning rule.
    pub fn register_session<I>(&mut self, peer: PeerId, asn: Asn, routes: I)
    where
        I: IntoIterator<Item = (Prefix, Route)>,
    {
        let routes: Vec<(Prefix, Route)> = routes.into_iter().collect();
        let engine = engine_from_routes(peer, &self.shared.swift, &routes);
        let shard = shard_of(peer, self.buffers.len());
        self.dispatch(shard);
        let sent =
            self.shared.shard_txs[shard].send(ShardMsg::Register(Box::new(SessionRegistration {
                peer,
                asn,
                engine,
                routes,
            })));
        if sent.is_err() {
            self.on_disconnected(shard);
        }
    }

    /// Tears a peering session down through this handle, ordered in-band
    /// with the handle's ingested events. Never shed.
    pub fn teardown_session(&mut self, peer: PeerId) {
        let shard = shard_of(peer, self.buffers.len());
        self.dispatch(shard);
        if self.shared.shard_txs[shard]
            .send(ShardMsg::Teardown(peer))
            .is_err()
        {
            self.on_disconnected(shard);
        }
    }

    /// A send found shard `shard`'s channel disconnected: tolerated after
    /// the runtime shut down (the handle outlived it — late traffic is
    /// shed), a panic while the runtime is live (a worker crashed; shedding
    /// silently there would break the lossless `Block` contract and let a
    /// long soak grind on against a dead shard).
    fn on_disconnected(&self, shard: usize) {
        // Acquire pairs with the Release store in `Runtime::shutdown` (see
        // the atomic-ordering auditor's `flag` role): observing the flag
        // must also observe the shutdown that raised it.
        assert!(
            self.shared.shutdown.load(Ordering::Acquire),
            "shard {shard} worker thread is gone while the runtime is live"
        );
    }

    /// Dispatches every buffered batch to its shard. Call before a runtime
    /// `flush`/`resync_after_convergence` so this producer's buffered events
    /// are part of what drains.
    pub fn flush(&mut self) {
        for shard in 0..self.buffers.len() {
            self.dispatch(shard);
        }
        // A flush marks a pipeline quiet point (rendezvous, resync,
        // shutdown): re-anchor the coarse clock unconditionally — empty
        // buffers skip the dispatch-side refresh — so events stamped after a
        // long pause don't inherit a pre-pause epoch and inflate the
        // latency percentiles by the pause duration.
        self.shared.clock.refresh();
        self.since_refresh = 0;
    }

    /// Flushes the handle and folds its counters into the runtime's
    /// accumulator. Equivalent to dropping the handle, but explicit at call
    /// sites that care about when the events hit the queues.
    pub fn finish(mut self) {
        self.close();
    }

    /// Sends shard `shard`'s buffered batch, honouring the backpressure
    /// policy.
    ///
    /// The queue high-water mark is recorded only once the batch is actually
    /// enqueued — a shed batch never occupied a queue slot, so it must not
    /// raise the reported mark. The depth counter is approximate at the
    /// edges: the worker decrements on receive (so the count includes the
    /// one batch being unpacked), and with K concurrent producers it also
    /// includes up to K−1 sibling batches that were counted but not yet
    /// enqueued — the recorded mark is therefore an upper estimate, clamped
    /// to the queue's physical capacity. A disconnected queue counts the
    /// batch as dropped when the runtime has shut down, and panics when it
    /// has not (a crashed worker — see [`IngestHandle::on_disconnected`]).
    fn dispatch(&mut self, shard: usize) {
        if self.buffers[shard].is_empty() {
            return;
        }
        // Re-anchor the coarse clock at batch boundaries: the next batch's
        // stamps start at most one batch-fill behind the real clock.
        self.shared.clock.refresh();
        let batch = std::mem::replace(
            &mut self.buffers[shard],
            Vec::with_capacity(self.shared.batch_size),
        );
        // The live `ingest.events` counter advances a batch at a time — the
        // per-event ingest path stays free of shared-counter traffic.
        self.shared.events_ctr.add(batch.len() as u64);
        let new_depth = self.shared.depth[shard].fetch_add(1, Ordering::Relaxed) + 1;
        let high_water = new_depth.min(self.shared.queue_capacity.max(1));
        match self.shared.backpressure {
            BackpressurePolicy::Block => {
                match self.shared.shard_txs[shard].send(ShardMsg::Batch(batch)) {
                    Ok(()) => {
                        self.max_depth[shard] = self.max_depth[shard].max(high_water);
                    }
                    Err(std::sync::mpsc::SendError(ShardMsg::Batch(batch))) => {
                        self.on_disconnected(shard);
                        self.shared.depth[shard].fetch_sub(1, Ordering::Relaxed);
                        self.dropped[shard] += batch.len() as u64;
                        self.note_shed(shard, batch.len());
                    }
                    Err(_) => unreachable!("send returns the rejected batch"),
                }
            }
            BackpressurePolicy::DropNewest => {
                match self.shared.shard_txs[shard].try_send(ShardMsg::Batch(batch)) {
                    Ok(()) => {
                        self.max_depth[shard] = self.max_depth[shard].max(high_water);
                    }
                    Err(TrySendError::Full(ShardMsg::Batch(batch))) => {
                        self.shared.depth[shard].fetch_sub(1, Ordering::Relaxed);
                        self.dropped[shard] += batch.len() as u64;
                        self.note_shed(shard, batch.len());
                    }
                    Err(TrySendError::Disconnected(ShardMsg::Batch(batch))) => {
                        self.on_disconnected(shard);
                        self.shared.depth[shard].fetch_sub(1, Ordering::Relaxed);
                        self.dropped[shard] += batch.len() as u64;
                        self.note_shed(shard, batch.len());
                    }
                    Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                        unreachable!("try_send returns the rejected batch")
                    }
                }
            }
        }
    }

    /// Accounts a shed batch on the live `ingest.dropped` counter and the
    /// flight recorder — shedding is rare enough to be lifecycle-worthy.
    fn note_shed(&self, shard: usize, len: usize) {
        self.shared.dropped_ctr.add(len as u64);
        self.shared.flight.record(
            self.shared.clock.precise(),
            FlightKind::Drop,
            format!("shard={shard} shed={len}"),
        );
    }

    /// Flush + merge, shared by [`IngestHandle::finish`] and `Drop`.
    fn close(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.flush();
        let counters = ProducerCounters {
            events: self.events,
            dropped: std::mem::take(&mut self.dropped),
            max_queue_depth: std::mem::take(&mut self.max_depth),
            producers: usize::from(self.events > 0),
        };
        self.shared
            .merged
            .lock()
            .expect("producer counter lock")
            .merge(&counters);
    }
}

impl Clone for IngestHandle {
    /// A clone is a **new producer**: it shares the runtime's queues, clock
    /// and accumulator, but owns fresh empty buffers and zeroed counters.
    fn clone(&self) -> Self {
        IngestHandle::new(Arc::clone(&self.shared), self.refresh_interval)
    }
}

impl Drop for IngestHandle {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for IngestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestHandle")
            .field("shards", &self.buffers.len())
            .field("events", &self.events)
            .field("finished", &self.finished)
            .finish()
    }
}
