//! # swift-traces
//!
//! Synthetic BGP trace corpus for the SWIFT reproduction — the stand-in for
//! the RouteViews / RIPE RIS dataset (November 2016, 213 peering sessions)
//! used by §2.2.1 and §6 of the paper.
//!
//! * [`model`] — the calibrated burst size / rate / shape distributions;
//! * [`corpus`] — the two-phase corpus generator (catalog + per-session
//!   materialisation) and the vantage routing-table builder;
//! * [`extract`] — the sliding-window burst extraction of §2.2.1;
//! * [`interleave`] — multi-session interleaved streams (per-session stream
//!   merging and the synthetic concurrent-burst workload the sharded runtime
//!   is benchmarked on);
//! * [`soak`] — the streaming corpus-scale replay: a lazy k-way merge of
//!   every session's bursts with session up/down lifecycle markers and
//!   convergence points, sized so the full month-long corpus flows through
//!   without materialising every message stream.
//!
//! The corpus consumes and produces only `swift-bgp` types, so everything that
//! runs on it (the SWIFT inference engine in particular) exercises exactly the
//! code path it would on parsed MRT data.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod corpus;
pub mod extract;
pub mod interleave;
pub mod model;
pub mod soak;

pub use corpus::{
    BurstMeta, Corpus, MaterializedBurst, SessionMeta, SessionRib, SessionTrace, TraceConfig,
};
pub use extract::{extract_bursts, extract_from_times, ExtractConfig, ExtractedBurst};
pub use interleave::{interleave_streams, InterleavedEvent, MultiSessionConfig, MultiSessionTrace};
pub use model::{BurstRateModel, BurstShape, BurstSizeModel};
pub use soak::{
    pick_feasible_flaps, ReplayItem, SoakConfig, SoakReplay, SOAK_BACKUP_A, SOAK_BACKUP_B,
};
