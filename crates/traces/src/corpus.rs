//! The synthetic trace corpus: a month of BGP activity over 213 peering
//! sessions, standing in for the RouteViews / RIPE RIS dataset of §2.2.1/§6.1.
//!
//! The corpus is generated in two steps to keep memory bounded:
//!
//! 1. [`Corpus::generate`] draws the *catalog*: for every session, the list of
//!    bursts with their size, rate, start time, intra-burst shape and
//!    popularity flag (cheap, no prefixes materialised);
//! 2. [`Corpus::materialize_session`] expands one session into its Adj-RIB-In
//!    and per-burst [`MessageStream`]s (withdrawals, interleaved path updates,
//!    background noise), deterministically from the catalog.

use crate::model::{BurstRateModel, BurstShape, BurstSizeModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use swift_bgp::{
    AsLink, AsPath, Asn, BgpMessage, InternedRib, MessageStream, PeerId, Prefix, PrefixSet, Route,
    RouteAttributes, RoutingTable, Timestamp, SECOND,
};

/// Configuration of the corpus generator. Defaults approximate the paper's
/// November-2016 dataset (scaled table size; see DESIGN.md).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of peering sessions (paper: 213).
    pub num_peers: usize,
    /// Prefixes announced on each session.
    pub table_size: usize,
    /// Mean number of bursts (≥ 1,500 withdrawals) per session per month
    /// (paper: 3,335 bursts over 213 sessions ≈ 15.7).
    pub bursts_per_peer_mean: f64,
    /// Length of the trace (paper: one month).
    pub duration: Timestamp,
    /// Mean background (noise) withdrawals per 10-second window.
    pub noise_per_window: f64,
    /// Fraction of bursts that must include "popular" prefixes (paper: 0.84).
    pub popular_burst_fraction: f64,
    /// Range of the fraction of a failed link's prefixes actually withdrawn
    /// (remote failures are often partial).
    pub withdrawn_fraction: (f64, f64),
    /// Fraction of the link's surviving prefixes re-announced with an
    /// alternate path during the burst.
    pub update_fraction: f64,
    /// Burst-size distribution.
    pub size_model: BurstSizeModel,
    /// Burst-rate distribution.
    pub rate_model: BurstRateModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            num_peers: 213,
            table_size: 50_000,
            bursts_per_peer_mean: 15.7,
            duration: 30 * 24 * 3600 * SECOND,
            noise_per_window: 1.0,
            popular_burst_fraction: 0.84,
            withdrawn_fraction: (0.6, 1.0),
            update_fraction: 0.3,
            size_model: BurstSizeModel::default(),
            rate_model: BurstRateModel::default(),
            seed: 0x7ace_c0de,
        }
    }
}

impl TraceConfig {
    /// A reduced corpus (fewer peers, smaller tables) for unit tests and quick
    /// experiment runs.
    pub fn small() -> Self {
        TraceConfig {
            num_peers: 8,
            table_size: 6_000,
            bursts_per_peer_mean: 4.0,
            size_model: BurstSizeModel {
                max_size: 20_000,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Catalog entry for one burst.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstMeta {
    /// The session the burst is observed on.
    pub peer: PeerId,
    /// Start time within the trace.
    pub start: Timestamp,
    /// Target number of withdrawals.
    pub size: usize,
    /// Withdrawal rate (withdrawals per second).
    pub rate: f64,
    /// Head/middle/tail split.
    pub shape: BurstShape,
    /// Whether the burst must touch popular prefixes.
    pub includes_popular: bool,
    /// Per-burst RNG seed used at materialisation time.
    pub seed: u64,
}

impl BurstMeta {
    /// The nominal duration of the burst.
    pub fn duration(&self) -> Timestamp {
        ((self.size as f64 / self.rate) * SECOND as f64) as Timestamp
    }
}

/// Catalog entry for one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMeta {
    /// The session / peer identifier (1-based).
    pub peer: PeerId,
    /// The peer's AS number.
    pub peer_asn: Asn,
    /// The bursts scheduled on this session.
    pub bursts: Vec<BurstMeta>,
    /// Per-session RNG seed used at materialisation time.
    pub seed: u64,
}

/// The corpus catalog.
#[derive(Debug, Clone)]
pub struct Corpus {
    config: TraceConfig,
    sessions: Vec<SessionMeta>,
}

/// One burst, fully materialised.
#[derive(Debug, Clone)]
pub struct MaterializedBurst {
    /// The catalog entry this burst was generated from.
    pub meta: BurstMeta,
    /// The link whose failure the burst simulates.
    pub failed_link: AsLink,
    /// The messages of the burst (withdrawals, updates, noise), time-ordered.
    pub stream: MessageStream,
    /// Prefixes withdrawn because of the failure.
    pub withdrawn: PrefixSet,
    /// Prefixes re-announced with an alternate path.
    pub updated: PrefixSet,
    /// Whether the burst touches popular prefixes.
    pub touches_popular: bool,
}

/// One session, fully materialised.
#[derive(Debug, Clone)]
pub struct SessionTrace {
    /// The session's catalog entry.
    pub meta: SessionMeta,
    /// The session's Adj-RIB-In at the start of the trace, with interned
    /// paths (replay consumers seed from it without cloning one `AsPath` per
    /// prefix — see [`InternedRib`]).
    pub rib: InternedRib,
    /// Prefixes considered "popular" (Umbrella-top-100-like origins).
    pub popular: PrefixSet,
    /// The session's bursts.
    pub bursts: Vec<MaterializedBurst>,
}

/// A freshly built Adj-RIB-In: the table itself, its popular prefixes and the
/// per-link prefix index used when materialising bursts.
type RibParts = (InternedRib, PrefixSet, BTreeMap<AsLink, Vec<Prefix>>);

/// Prefix-index spacing between sessions: session `k` announces prefixes
/// `[k * SPACING, k * SPACING + table_size)`. The spacing keeps every
/// session's prefix space disjoint *and* inside the injective range of
/// [`Prefix::nth_slash24`] (`i < 2^24 - 2^16`) for up to 254 sessions
/// (enforced by [`Corpus::generate`]) — a requirement of the corpus-wide
/// vantage table the soak replay builds, where all sessions' RIBs coexist in
/// one router.
pub const SESSION_PREFIX_SPACING: u32 = 65_536;

/// One session's materialised Adj-RIB-In plus the burst-building index — the
/// memory-lean handle [`Corpus::materialize_burst`] expands bursts from, so a
/// streaming replay can hold every session's RIB without holding any burst's
/// message stream.
#[derive(Debug, Clone)]
pub struct SessionRib {
    /// The session this RIB belongs to.
    pub peer: PeerId,
    /// The peer's AS number.
    pub peer_asn: Asn,
    /// The Adj-RIB-In (interned paths).
    pub rib: InternedRib,
    /// The session's popular prefixes.
    pub popular: PrefixSet,
    link_prefixes: BTreeMap<AsLink, Vec<Prefix>>,
}

impl Corpus {
    /// Draws the corpus catalog.
    pub fn generate(config: TraceConfig) -> Self {
        assert!(
            config.table_size <= SESSION_PREFIX_SPACING as usize,
            "table_size {} exceeds the per-session prefix space {SESSION_PREFIX_SPACING}",
            config.table_size
        );
        // Keep every session's block inside nth_slash24's injective range
        // (i < 2^24 - 2^16): the last session's top index is
        // num_peers * SPACING + SPACING - 1, which fits iff num_peers <= 254.
        assert!(
            config.num_peers <= 254,
            "num_peers {} would alias prefix spaces across sessions (max 254)",
            config.num_peers
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sessions = Vec::with_capacity(config.num_peers);
        for i in 0..config.num_peers {
            let peer = PeerId(i as u32 + 1);
            let peer_asn = Asn(10_000 + i as u32);
            // Poisson-ish burst count: geometric mixture around the mean.
            let mean = config.bursts_per_peer_mean;
            let count = if mean <= 0.0 {
                0
            } else {
                let jitter: f64 = rng.gen_range(0.3..1.7);
                (mean * jitter).round() as usize
            };
            let mut bursts = Vec::with_capacity(count);
            for _ in 0..count {
                let size = config
                    .size_model
                    .sample(&mut rng)
                    .min(config.table_size / 2);
                let meta = BurstMeta {
                    peer,
                    start: rng.gen_range(0..config.duration),
                    size,
                    rate: config.rate_model.sample(&mut rng),
                    shape: BurstShape::sample(&mut rng),
                    includes_popular: rng.gen_bool(config.popular_burst_fraction),
                    seed: rng.gen(),
                };
                bursts.push(meta);
            }
            bursts.sort_by_key(|b| b.start);
            sessions.push(SessionMeta {
                peer,
                peer_asn,
                bursts,
                seed: rng.gen(),
            });
        }
        Corpus { config, sessions }
    }

    /// The generator configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Number of sessions in the corpus.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The catalog of one session.
    pub fn session_meta(&self, idx: usize) -> &SessionMeta {
        &self.sessions[idx]
    }

    /// Iterates over every burst in the catalog.
    pub fn all_bursts(&self) -> impl Iterator<Item = &BurstMeta> {
        self.sessions.iter().flat_map(|s| s.bursts.iter())
    }

    /// Total number of bursts in the catalog.
    pub fn total_bursts(&self) -> usize {
        self.sessions.iter().map(|s| s.bursts.len()).sum()
    }

    /// Materialises one session's RIB (with the per-link index bursts are
    /// built from) **without** materialising any burst's message stream —
    /// the entry point of the streaming soak replay, which expands bursts
    /// one at a time with [`Corpus::materialize_burst`].
    pub fn session_rib(&self, idx: usize) -> SessionRib {
        let meta = &self.sessions[idx];
        let mut rng = StdRng::seed_from_u64(meta.seed);
        let (rib, popular, link_prefixes) = self.build_rib(meta, &mut rng);
        SessionRib {
            peer: meta.peer,
            peer_asn: meta.peer_asn,
            rib,
            popular,
            link_prefixes,
        }
    }

    /// Materialises one burst from its catalog entry and the session's
    /// already-built [`SessionRib`]. Deterministic from the catalog alone
    /// (each burst carries its own seed), so bursts can be expanded lazily,
    /// in any order, and dropped after replay.
    pub fn materialize_burst(&self, rib: &SessionRib, meta: &BurstMeta) -> MaterializedBurst {
        self.build_burst(meta, &rib.rib, &rib.popular, &rib.link_prefixes)
    }

    /// Materialises one session: its RIB and every burst's message stream.
    pub fn materialize_session(&self, idx: usize) -> SessionTrace {
        let meta = self.sessions[idx].clone();
        let session_rib = self.session_rib(idx);
        let bursts = meta
            .bursts
            .iter()
            .map(|b| self.materialize_burst(&session_rib, b))
            .collect();
        SessionTrace {
            meta,
            rib: session_rib.rib,
            popular: session_rib.popular,
            bursts,
        }
    }

    /// Builds the session's Adj-RIB-In: a shallow provider hierarchy behind the
    /// peer, with Zipf-weighted second hops so that a few links carry most
    /// prefixes (as in the real AS-level topology).
    fn build_rib(&self, meta: &SessionMeta, rng: &mut StdRng) -> RibParts {
        let n = self.config.table_size;
        let peer = meta.peer_asn;
        let base = 1_000_000 + meta.peer.0 * 5_000;
        let second_hops = 40usize;
        let children_per_hop = 6usize;

        // Zipf(1.0) weights over the second hops.
        let weights: Vec<f64> = (1..=second_hops).map(|k| 1.0 / k as f64).collect();
        let total_w: f64 = weights.iter().sum();
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total_w;
                Some(*acc)
            })
            .collect();

        let mut rib = InternedRib::new();
        let mut link_prefixes: BTreeMap<AsLink, Vec<Prefix>> = BTreeMap::new();
        // Disjoint per-session prefix spaces within nth_slash24's injective
        // range — see [`SESSION_PREFIX_SPACING`].
        let prefix_base = meta.peer.0 * SESSION_PREFIX_SPACING;

        for i in 0..n {
            let prefix = Prefix::nth_slash24(prefix_base + i as u32);
            let u: f64 = rng.gen_range(0.0..1.0);
            let h1_idx = cumulative.partition_point(|c| *c < u).min(second_hops - 1);
            let h1 = Asn(base + h1_idx as u32);
            let mut hops = vec![peer, h1];
            // Third hop (position 2 link) with probability 0.8.
            if rng.gen_bool(0.8) {
                let child = rng.gen_range(0..children_per_hop) as u32;
                let h2 = Asn(base + 1_000 + h1_idx as u32 * children_per_hop as u32 + child);
                hops.push(h2);
                // Fourth hop with probability 0.4.
                if rng.gen_bool(0.4) {
                    let h3 = Asn(base + 100_000 + rng.gen_range(0..2_000));
                    hops.push(h3);
                }
            }
            let path = AsPath::new(hops.iter().map(|a| a.value()));
            for link in path.links() {
                link_prefixes.entry(link).or_default().push(prefix);
            }
            // Interned: prefixes sharing a provider chain share one stored path.
            rib.push_owned(prefix, path);
        }

        // Popular prefixes: everything behind the heaviest second-hop link
        // (standing in for the Google/Akamai/... origins of the Umbrella list).
        let popular_link = AsLink::new(peer, Asn(base));
        let popular: PrefixSet = link_prefixes
            .get(&popular_link)
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default();

        (rib, popular, link_prefixes)
    }

    /// Builds one burst from its catalog entry and the session RIB.
    fn build_burst(
        &self,
        meta: &BurstMeta,
        rib: &InternedRib,
        popular: &PrefixSet,
        link_prefixes: &BTreeMap<AsLink, Vec<Prefix>>,
    ) -> MaterializedBurst {
        let mut rng = StdRng::seed_from_u64(meta.seed);

        // Candidate failed links: those carrying enough prefixes to produce a
        // burst of roughly the catalogued size.
        let viable: Vec<(&AsLink, usize)> = link_prefixes
            .iter()
            .map(|(l, ps)| (l, ps.len()))
            .filter(|(_, c)| *c >= self.config.size_model.min_size.min(*c).max(1))
            .collect();
        let target = meta.size;
        let mut candidates: Vec<&AsLink> = viable
            .iter()
            .filter(|(_, c)| *c >= target)
            .map(|(l, _)| *l)
            .collect();
        if candidates.is_empty() {
            // Fall back to the largest link.
            let largest = viable
                .iter()
                .max_by_key(|(_, c)| *c)
                .map(|(l, _)| *l)
                .expect("non-empty RIB");
            candidates.push(largest);
        }
        // Popularity constraint: popular prefixes sit behind the heaviest link.
        if meta.includes_popular {
            let touching: Vec<&AsLink> = candidates
                .iter()
                .copied()
                .filter(|l| link_prefixes[l].iter().any(|p| popular.contains(p)))
                .collect();
            if !touching.is_empty() {
                candidates = touching;
            }
        }
        let failed_link = *candidates[rng.gen_range(0..candidates.len())];
        let on_link = &link_prefixes[&failed_link];

        // Withdraw a partial subset of the link's prefixes, sized to the target.
        let frac =
            rng.gen_range(self.config.withdrawn_fraction.0..=self.config.withdrawn_fraction.1);
        let max_withdraw = ((on_link.len() as f64) * frac) as usize;
        let withdraw_count = target.min(max_withdraw).max(1);
        let mut indices: Vec<usize> = (0..on_link.len()).collect();
        // Partial Fisher-Yates: pick `withdraw_count` distinct prefixes.
        for i in 0..withdraw_count.min(indices.len()) {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        let withdrawn: Vec<Prefix> = indices[..withdraw_count.min(indices.len())]
            .iter()
            .map(|i| on_link[*i])
            .collect();
        let withdrawn_set: PrefixSet = withdrawn.iter().copied().collect();

        // Some surviving prefixes on the link are re-announced over an
        // alternate path that avoids the failed link.
        let survivors: Vec<Prefix> = on_link
            .iter()
            .filter(|p| !withdrawn_set.contains(p))
            .copied()
            .collect();
        let update_count = ((survivors.len() as f64) * self.config.update_fraction) as usize;
        let updated: Vec<Prefix> = survivors.into_iter().take(update_count).collect();
        let updated_set: PrefixSet = updated.iter().copied().collect();
        let alternate_hop = Asn(9_000_000 + meta.peer.0);

        // Pace withdrawals and updates over the burst duration.
        let duration = meta.duration().max(SECOND);
        let mut messages: Vec<BgpMessage> = Vec::with_capacity(withdrawn.len() + updated.len());
        let total_events = withdrawn.len() + updated.len();
        let rib_paths: BTreeMap<Prefix, &AsPath> = rib.iter().map(|(p, a)| (*p, a)).collect();
        for (k, prefix) in withdrawn.iter().chain(updated.iter()).enumerate() {
            let q = (k as f64 + 0.5) / total_events as f64;
            let rel = meta.shape.time_of_fraction(q);
            let jitter = rng.gen_range(0..(duration / total_events as u64 + 1).max(1));
            let t = meta.start + (rel * duration as f64) as Timestamp + jitter;
            if withdrawn_set.contains(prefix) {
                messages.push(BgpMessage::withdraw(t, *prefix));
            } else {
                // Re-announce over a path that bypasses the failed link.
                let original = rib_paths.get(prefix).expect("prefix from rib");
                let hops: Vec<u32> = std::iter::once(
                    original
                        .first_hop()
                        .expect("rib paths are non-empty")
                        .value(),
                )
                .chain(std::iter::once(alternate_hop.value()))
                .chain(original.origin().map(|a| a.value()))
                .collect();
                messages.push(BgpMessage::announce(
                    t,
                    *prefix,
                    RouteAttributes::from_path(AsPath::new(hops)),
                ));
            }
        }

        // Background noise: withdrawals of unrelated prefixes.
        let windows = (duration / (10 * SECOND)).max(1);
        let noise_count = (windows as f64 * self.config.noise_per_window) as usize;
        for _ in 0..noise_count {
            let (p, path) = rib.get(rng.gen_range(0..rib.len()));
            if path.crosses_link(&failed_link) {
                continue;
            }
            let t = meta.start + rng.gen_range(0..duration);
            messages.push(BgpMessage::withdraw(t, p));
        }

        let touches_popular = withdrawn_set
            .iter()
            .chain(updated_set.iter())
            .any(|p| popular.contains(p));

        MaterializedBurst {
            meta: meta.clone(),
            failed_link,
            stream: MessageStream::from_messages(messages),
            withdrawn: withdrawn_set,
            updated: updated_set,
            touches_popular,
        }
    }
}

impl SessionTrace {
    /// Builds the vantage router's multi-peer [`RoutingTable`]: the monitored
    /// session (peer id 1, LOCAL_PREF 200 so it is the primary) plus two
    /// synthetic alternate providers whose paths avoid the monitored session's
    /// AS hierarchy entirely (peer ids 2 and 3). Peer 2 offers an alternate for
    /// ~95 % of the prefixes, peer 3 for ~60 %.
    pub fn routing_table(&self) -> RoutingTable {
        let mut table = RoutingTable::new();
        let monitored = PeerId(1);
        table.add_peer(monitored, self.meta.peer_asn);
        table.add_peer(PeerId(2), Asn(8_000_001));
        table.add_peer(PeerId(3), Asn(8_000_002));
        let mut rng = StdRng::seed_from_u64(self.meta.seed ^ 0xa17e_77a7);
        for (prefix, path) in self.rib.iter() {
            let mut attrs = RouteAttributes::from_path(path.clone());
            attrs.local_pref = Some(200);
            table.announce(monitored, *prefix, Route::new(monitored, attrs, 0));
            if rng.gen_bool(0.95) {
                let alt = AsPath::new([8_000_001u32, 8_100_000 + (prefix.addr() % 1_000)]);
                table.announce(
                    PeerId(2),
                    *prefix,
                    Route::new(PeerId(2), RouteAttributes::from_path(alt), 0),
                );
            }
            if rng.gen_bool(0.6) {
                let alt = AsPath::new([8_000_002u32, 8_200_000 + (prefix.addr() % 1_000)]);
                table.announce(
                    PeerId(3),
                    *prefix,
                    Route::new(PeerId(3), RouteAttributes::from_path(alt), 0),
                );
            }
        }
        table
    }

    /// The monitored session's peer id inside [`SessionTrace::routing_table`].
    pub fn monitored_peer(&self) -> PeerId {
        PeerId(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        Corpus::generate(TraceConfig {
            num_peers: 3,
            table_size: 4_000,
            bursts_per_peer_mean: 3.0,
            ..TraceConfig::small()
        })
    }

    #[test]
    fn catalog_has_expected_shape() {
        let corpus = small_corpus();
        assert_eq!(corpus.num_sessions(), 3);
        assert!(corpus.total_bursts() >= 3);
        for s in 0..corpus.num_sessions() {
            let meta = corpus.session_meta(s);
            assert_eq!(meta.peer, PeerId(s as u32 + 1));
            // Bursts sorted by start time and sized above the threshold.
            let mut last = 0;
            for b in &meta.bursts {
                assert!(b.start >= last);
                last = b.start;
                assert!(b.size >= 1_000, "burst size {}", b.size);
                assert!(b.duration() > 0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_corpus();
        let b = small_corpus();
        assert_eq!(a.session_meta(0), b.session_meta(0));
        let sa = a.materialize_session(0);
        let sb = b.materialize_session(0);
        assert_eq!(sa.rib.len(), sb.rib.len());
        assert_eq!(sa.bursts.len(), sb.bursts.len());
        for (x, y) in sa.bursts.iter().zip(sb.bursts.iter()) {
            assert_eq!(x.failed_link, y.failed_link);
            assert_eq!(x.stream.len(), y.stream.len());
        }
    }

    #[test]
    fn materialized_session_is_consistent() {
        let corpus = small_corpus();
        let session = corpus.materialize_session(0);
        assert_eq!(session.rib.len(), 4_000);
        // All prefixes are distinct and all paths start with the peer AS.
        let distinct: std::collections::HashSet<_> = session.rib.iter().map(|(p, _)| *p).collect();
        assert_eq!(distinct.len(), 4_000);
        assert!(session
            .rib
            .iter()
            .all(|(_, path)| path.first_hop() == Some(session.meta.peer_asn)));
        assert!(!session.popular.is_empty());

        for burst in &session.bursts {
            assert!(!burst.withdrawn.is_empty());
            // Withdrawn prefixes all crossed the failed link in the RIB.
            for p in burst.withdrawn.iter().take(50) {
                let path = session.rib.iter().find(|(q, _)| *q == p).unwrap().1;
                assert!(path.crosses_link(&burst.failed_link));
            }
            // The stream contains at least the withdrawals.
            assert!(burst.stream.total_withdrawals() >= burst.withdrawn.len());
            // Updated prefixes are disjoint from withdrawn ones.
            assert_eq!(burst.withdrawn.intersection_len(&burst.updated), 0);
            // Stream is confined to the burst's time span (plus noise inside it).
            assert!(burst.stream.start().unwrap() >= burst.meta.start);
        }
    }

    #[test]
    fn popular_flag_influences_materialization() {
        let corpus = Corpus::generate(TraceConfig {
            num_peers: 2,
            table_size: 5_000,
            bursts_per_peer_mean: 10.0,
            popular_burst_fraction: 1.0,
            ..TraceConfig::small()
        });
        let session = corpus.materialize_session(0);
        let touching = session.bursts.iter().filter(|b| b.touches_popular).count();
        assert!(
            touching * 10 >= session.bursts.len() * 8,
            "{touching}/{} bursts touch popular prefixes",
            session.bursts.len()
        );
    }

    #[test]
    fn routing_table_has_alternates_and_primary_via_monitored_peer() {
        let corpus = small_corpus();
        let session = corpus.materialize_session(1);
        let table = session.routing_table();
        assert_eq!(table.peer_count(), 3);
        assert_eq!(table.prefix_count(), session.rib.len());
        // The monitored session is primary thanks to LOCAL_PREF.
        let some_prefix = session.rib.get(0).0;
        assert_eq!(
            table.best(&some_prefix).unwrap().peer,
            session.monitored_peer()
        );
        // A large majority of prefixes have at least one alternate.
        let with_alternate = session
            .rib
            .iter()
            .filter(|(p, _)| table.candidates(p).count() >= 2)
            .count();
        assert!(with_alternate as f64 >= 0.9 * session.rib.len() as f64);
    }
}
