//! Multi-session interleaved streams: the input shape of the sharded runtime.
//!
//! A border router does not see one session's burst at a time — it sees
//! *every* session's updates interleaved on the wire. This module provides:
//!
//! * [`interleave_streams`] — deterministically merges per-session
//!   [`MessageStream`]s into one timestamp-ordered `(peer, event)` stream,
//!   preserving each session's internal order;
//! * [`MultiSessionTrace`] — a synthetic multi-session workload (per-session
//!   Zipf-skewed RIBs, a shared backup provider, one concurrent withdrawal
//!   burst per session) sized for the `exp_concurrency` scaling experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use swift_bgp::{
    AsLink, AsPath, Asn, ElementaryEvent, MessageStream, PeerId, Prefix, Route, RouteAttributes,
    RoutingTable, Timestamp, MILLISECOND,
};

/// One event of a merged multi-session stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleavedEvent {
    /// The session the event was received on.
    pub peer: PeerId,
    /// The event.
    pub event: ElementaryEvent,
}

/// Merges per-session message streams into one multi-session event stream,
/// ordered by timestamp with ties broken by peer id — and, within one
/// session, always in that session's original order (the property the
/// sharded runtime's determinism rests on).
pub fn interleave_streams(streams: &[(PeerId, &MessageStream)]) -> Vec<InterleavedEvent> {
    let mut events: Vec<InterleavedEvent> = Vec::new();
    for (peer, stream) in streams {
        for event in stream.elementary_events() {
            events.push(InterleavedEvent { peer: *peer, event });
        }
    }
    // Stable sort: same-timestamp events of one session keep their order.
    events.sort_by_key(|e| (e.event.timestamp(), e.peer.0));
    events
}

/// Configuration of the synthetic multi-session workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSessionConfig {
    /// Number of peering sessions streaming concurrently.
    pub sessions: usize,
    /// Prefixes announced on each session (total RIB = `sessions ×` this).
    pub prefixes_per_session: usize,
    /// Withdrawals per session's burst. A burst simulates *one* link
    /// failure, so it is capped at the number of prefixes behind the
    /// session's heaviest link (~23 % of the session table under the Zipf-40
    /// skew); the merged stream's length reflects the actual burst sizes.
    pub burst_size: usize,
    /// Spacing between consecutive withdrawals of one session (virtual time).
    pub event_gap: Timestamp,
    /// Fraction of prefixes with an alternate route via the backup provider.
    pub backup_coverage: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiSessionConfig {
    fn default() -> Self {
        MultiSessionConfig {
            sessions: 8,
            prefixes_per_session: 50_000,
            burst_size: 5_000,
            event_gap: MILLISECOND,
            backup_coverage: 0.95,
            seed: 0x5ca1ab1e,
        }
    }
}

/// A synthetic multi-session workload: the vantage router's table and the
/// interleaved event stream of one concurrent burst per session.
#[derive(Debug)]
pub struct MultiSessionTrace {
    /// The vantage router's routing table: one primary session per prefix
    /// block (LOCAL_PREF 200) plus one shared backup provider.
    pub table: RoutingTable,
    /// The merged multi-session event stream, timestamp-ordered.
    pub events: Vec<InterleavedEvent>,
    /// The link whose failure each session's burst simulates.
    pub failed_links: BTreeMap<PeerId, AsLink>,
}

/// The shared backup provider's peer id (outside the session id range).
pub const BACKUP_PEER: PeerId = PeerId(1_000_000);

impl MultiSessionTrace {
    /// Generates the workload deterministically from `config`.
    ///
    /// Each session's RIB mirrors the `exp_scale` shape: 40 Zipf-weighted
    /// second hops behind the peer (the heaviest carrying roughly a quarter
    /// of the table), an optional third and fourth hop. Each session's burst
    /// withdraws `burst_size` prefixes behind its heaviest link (fewer if
    /// the link carries fewer — see [`MultiSessionConfig::burst_size`]); all
    /// bursts start at time zero, so the merged stream interleaves all
    /// sessions.
    pub fn generate(config: &MultiSessionConfig) -> Self {
        let mut table = RoutingTable::new();
        let backup_asn = Asn(9_000_000);
        table.add_peer(BACKUP_PEER, backup_asn);
        let mut failed_links = BTreeMap::new();
        let mut streams: Vec<(PeerId, MessageStream)> = Vec::new();

        let second_hops = 40usize;
        let weights: Vec<f64> = (1..=second_hops).map(|k| 1.0 / k as f64).collect();
        let total: f64 = weights.iter().sum();
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total;
                Some(*acc)
            })
            .collect();

        for s in 0..config.sessions {
            let peer = PeerId(s as u32 + 1);
            let peer_asn = Asn(1_000 + s as u32);
            let hop_base = 1_000_000 + s as u32 * 200_000;
            table.add_peer(peer, peer_asn);
            let mut rng = StdRng::seed_from_u64(config.seed ^ (s as u64).wrapping_mul(0x9e37));
            let prefix_base = s as u32 * config.prefixes_per_session as u32;
            let failed = AsLink::new(peer_asn, Asn(hop_base));
            failed_links.insert(peer, failed);

            let mut on_failed: Vec<Prefix> = Vec::new();
            for i in 0..config.prefixes_per_session {
                let prefix = Prefix::nth_slash24(prefix_base + i as u32);
                let u: f64 = rng.gen_range(0.0..1.0);
                let h1 = cumulative.partition_point(|c| *c < u).min(second_hops - 1) as u32;
                let mut hops: Vec<u32> = vec![peer_asn.value(), hop_base + h1];
                if rng.gen_bool(0.8) {
                    hops.push(hop_base + 10_000 + h1 * 8 + rng.gen_range(0..8));
                    if rng.gen_bool(0.4) {
                        hops.push(hop_base + 100_000 + rng.gen_range(0..200));
                    }
                }
                if h1 == 0 && on_failed.len() < config.burst_size {
                    on_failed.push(prefix);
                }
                let mut attrs = RouteAttributes::from_path(AsPath::new(hops));
                attrs.local_pref = Some(200);
                table.announce(peer, prefix, Route::new(peer, attrs, 0));
                if rng.gen_bool(config.backup_coverage) {
                    let alt = AsPath::new([
                        backup_asn.value(),
                        9_100_000 + (prefix_base + i as u32) % 1_000,
                    ]);
                    table.announce(
                        BACKUP_PEER,
                        prefix,
                        Route::new(BACKUP_PEER, RouteAttributes::from_path(alt), 0),
                    );
                }
            }

            // The session's burst: withdrawals of the prefixes behind the
            // heaviest link, paced `event_gap` apart from time zero.
            let messages: Vec<swift_bgp::BgpMessage> = on_failed
                .iter()
                .enumerate()
                .map(|(k, p)| swift_bgp::BgpMessage::withdraw(k as u64 * config.event_gap, *p))
                .collect();
            streams.push((peer, MessageStream::from_messages(messages)));
        }

        let stream_refs: Vec<(PeerId, &MessageStream)> =
            streams.iter().map(|(p, s)| (*p, s)).collect();
        let events = interleave_streams(&stream_refs);
        MultiSessionTrace {
            table,
            events,
            failed_links,
        }
    }

    /// Total number of events in the merged stream.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the merged stream is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The merged stream as `(peer, event)` pairs (cloned) — the shape
    /// `swift_runtime::ShardedRuntime::ingest_stream` consumes.
    pub fn event_pairs(&self) -> impl Iterator<Item = (PeerId, ElementaryEvent)> + '_ {
        self.events.iter().map(|e| (e.peer, e.event.clone()))
    }

    /// Splits the merged stream into `k` per-source streams with **sessions
    /// disjoint across sources** (session peer id `p` goes to source
    /// `(p - 1) % k`, matching the `PeerId(1..=sessions)` layout of
    /// [`MultiSessionTrace::generate`]), each source preserving the merged
    /// stream's order for its sessions. Feeding source `i` to its own
    /// `swift_runtime::IngestHandle` therefore honours the handle's
    /// session-pinning rule. `k` is clamped to at least 1.
    pub fn partition_sources(&self, k: usize) -> Vec<Vec<(PeerId, ElementaryEvent)>> {
        let k = k.max(1);
        let mut sources: Vec<Vec<(PeerId, ElementaryEvent)>> = vec![Vec::new(); k];
        for e in &self.events {
            let source = (e.peer.0 as usize).saturating_sub(1) % k;
            sources[source].push((e.peer, e.event.clone()));
        }
        sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_bgp::BgpMessage;

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    #[test]
    fn interleaving_is_time_ordered_and_per_session_stable() {
        // Session 1: withdrawals at t = 0, 10, 10, 20 (two ties at 10).
        let s1 = MessageStream::from_messages(vec![
            BgpMessage::withdraw(0, p(1)),
            BgpMessage::withdraw(10, p(2)),
            BgpMessage::withdraw(10, p(3)),
            BgpMessage::withdraw(20, p(4)),
        ]);
        // Session 2: withdrawals at t = 5, 10.
        let s2 = MessageStream::from_messages(vec![
            BgpMessage::withdraw(5, p(5)),
            BgpMessage::withdraw(10, p(6)),
        ]);
        let merged = interleave_streams(&[(PeerId(1), &s1), (PeerId(2), &s2)]);
        assert_eq!(merged.len(), 6);
        // Global order by (timestamp, peer).
        let times: Vec<u64> = merged.iter().map(|e| e.event.timestamp()).collect();
        assert_eq!(times, vec![0, 5, 10, 10, 10, 20]);
        // Per-session order is each stream's original order.
        let session1: Vec<Prefix> = merged
            .iter()
            .filter(|e| e.peer == PeerId(1))
            .map(|e| e.event.prefix())
            .collect();
        assert_eq!(session1, vec![p(1), p(2), p(3), p(4)]);
        // The t=10 tie puts peer 1's events before peer 2's.
        let at_10: Vec<u32> = merged
            .iter()
            .filter(|e| e.event.timestamp() == 10)
            .map(|e| e.peer.0)
            .collect();
        assert_eq!(at_10, vec![1, 1, 2]);
    }

    #[test]
    fn generated_trace_is_deterministic_and_consistent() {
        let config = MultiSessionConfig {
            sessions: 3,
            prefixes_per_session: 2_000,
            burst_size: 300,
            ..Default::default()
        };
        let a = MultiSessionTrace::generate(&config);
        let b = MultiSessionTrace::generate(&config);
        assert_eq!(a.events, b.events, "generation is deterministic");
        assert_eq!(a.len(), 900, "burst_size withdrawals per session");
        assert!(!a.is_empty());

        // Table shape: one peer per session plus the backup provider.
        assert_eq!(a.table.peer_count(), 4);
        assert_eq!(a.table.prefix_count(), 6_000);

        // Every withdrawn prefix crossed its session's failed link.
        for ev in &a.events {
            let failed = a.failed_links[&ev.peer];
            let rib = a.table.adj_rib_in(ev.peer).unwrap();
            let route = rib.get(&ev.event.prefix()).expect("withdrawn from RIB");
            assert!(route.as_path().crosses_link(&failed));
        }

        // Sessions genuinely interleave: the first 3 × sessions events are
        // not all from one session.
        let head_peers: std::collections::BTreeSet<u32> =
            a.events.iter().take(9).map(|e| e.peer.0).collect();
        assert_eq!(head_peers.len(), 3, "all sessions active from the start");
    }

    #[test]
    fn partition_sources_splits_sessions_disjointly_in_order() {
        let trace = MultiSessionTrace::generate(&MultiSessionConfig {
            sessions: 5,
            prefixes_per_session: 2_000,
            burst_size: 200,
            ..Default::default()
        });
        for k in [1usize, 2, 3] {
            let sources = trace.partition_sources(k);
            assert_eq!(sources.len(), k);
            // Disjoint cover: total length preserved, each session entirely
            // within one source.
            assert_eq!(sources.iter().map(Vec::len).sum::<usize>(), trace.len());
            let mut owner: BTreeMap<PeerId, usize> = BTreeMap::new();
            for (i, source) in sources.iter().enumerate() {
                for (peer, _) in source {
                    assert_eq!(
                        *owner.entry(*peer).or_insert(i),
                        i,
                        "session {peer:?} split across sources at k={k}"
                    );
                }
            }
            // Order preserved: each source is the merged stream filtered to
            // its sessions.
            for (i, source) in sources.iter().enumerate() {
                let expected: Vec<(PeerId, ElementaryEvent)> = trace
                    .event_pairs()
                    .filter(|(peer, _)| owner.get(peer) == Some(&i))
                    .collect();
                assert_eq!(source, &expected, "k={k} source {i}");
            }
        }
        // k=1 is the merged stream itself.
        let single = trace.partition_sources(1);
        assert_eq!(single[0].len(), trace.len());
    }
}
