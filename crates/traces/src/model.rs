//! Statistical models behind the synthetic trace corpus.
//!
//! The corpus stands in for the RouteViews / RIPE RIS data of November 2016
//! (§2.2.1, §6.1). Its distributions are calibrated against the aggregate
//! numbers the paper reports:
//!
//! * burst sizes follow a Pareto tail with exponent ≈ 0.97 above 1,500
//!   withdrawals (so that ≈16 % of bursts exceed 10k and ≈1.5 % exceed 100k,
//!   with a maximum around 570k);
//! * per-burst withdrawal rates are log-normal-ish so that most bursts finish
//!   within 10 s but ≈37 % take longer and the largest take minutes;
//! * within a burst, withdrawals are split between head, middle and tail
//!   periods (most arrive early, but a sizeable share arrives late);
//! * 84 % of bursts touch at least one prefix originated by a "popular"
//!   organisation.

use rand::rngs::StdRng;
use rand::Rng;

/// Parameters of the burst-size Pareto distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstSizeModel {
    /// Minimum burst size considered (the 1,500-withdrawal threshold).
    pub min_size: usize,
    /// Pareto tail exponent.
    pub alpha: f64,
    /// Hard cap (the largest burst the paper observed had ≈570k withdrawals).
    pub max_size: usize,
}

impl Default for BurstSizeModel {
    fn default() -> Self {
        BurstSizeModel {
            min_size: 1_500,
            alpha: 0.97,
            max_size: 570_000,
        }
    }
}

impl BurstSizeModel {
    /// Draws a burst size.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // Inverse CDF of the Pareto distribution.
        let size = self.min_size as f64 / (1.0 - u).powf(1.0 / self.alpha);
        (size as usize).clamp(self.min_size, self.max_size)
    }
}

/// Parameters of the per-burst withdrawal-rate model (withdrawals per second).
#[derive(Debug, Clone, PartialEq)]
pub struct BurstRateModel {
    /// Median rate, withdrawals per second.
    pub median_rate: f64,
    /// Log-scale spread (σ of the underlying normal).
    pub sigma: f64,
    /// Lower bound on the rate.
    pub min_rate: f64,
}

impl Default for BurstRateModel {
    fn default() -> Self {
        BurstRateModel {
            median_rate: 1_500.0,
            sigma: 0.9,
            min_rate: 100.0,
        }
    }
}

impl BurstRateModel {
    /// Draws a withdrawal rate (w/s) using a log-normal around the median.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        // Box-Muller from two uniforms (keeps the dependency surface small).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.median_rate * (self.sigma * z).exp()).max(self.min_rate)
    }
}

/// The head/middle/tail split of withdrawals within a burst (§2.2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstShape {
    /// Fraction of withdrawals in the first third of the burst duration.
    pub head: f64,
    /// Fraction in the middle third.
    pub middle: f64,
    /// Fraction in the last third.
    pub tail: f64,
}

impl BurstShape {
    /// Draws a shape: head-heavy on average, but with a significant share of
    /// bursts carrying ≥10 % of their withdrawals in the tail.
    pub fn sample(rng: &mut StdRng) -> Self {
        let tail = rng.gen_range(0.02..0.45);
        let middle = rng.gen_range(0.10..0.40);
        let remaining: f64 = 1.0 - tail - middle;
        // Keep the head the largest share in the common case.
        let head = remaining.max(0.2);
        let norm = head + middle + tail;
        BurstShape {
            head: head / norm,
            middle: middle / norm,
            tail: tail / norm,
        }
    }

    /// The fraction of the burst's withdrawals that should have arrived by
    /// relative time `x` (0.0–1.0), piecewise-linear across the three periods.
    pub fn cumulative(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        if x <= 1.0 / 3.0 {
            self.head * x * 3.0
        } else if x <= 2.0 / 3.0 {
            self.head + self.middle * (x - 1.0 / 3.0) * 3.0
        } else {
            self.head + self.middle + self.tail * (x - 2.0 / 3.0) * 3.0
        }
    }

    /// Inverse of [`BurstShape::cumulative`]: the relative time at which the
    /// `q`-th fraction of withdrawals has arrived.
    pub fn time_of_fraction(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q <= self.head {
            (q / self.head.max(1e-12)) / 3.0
        } else if q <= self.head + self.middle {
            1.0 / 3.0 + ((q - self.head) / self.middle.max(1e-12)) / 3.0
        } else {
            2.0 / 3.0 + ((q - self.head - self.middle) / self.tail.max(1e-12)) / 3.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn burst_sizes_match_paper_tail_fractions() {
        let model = BurstSizeModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<usize> = (0..20_000).map(|_| model.sample(&mut rng)).collect();
        let frac =
            |min: usize| samples.iter().filter(|s| **s > min).count() as f64 / samples.len() as f64;
        assert!(samples.iter().all(|s| (1_500..=570_000).contains(s)));
        // ≈16 % above 10k and ≈1.5 % above 100k (±50 % relative tolerance).
        let f10k = frac(10_000);
        let f100k = frac(100_000);
        assert!((0.10..0.25).contains(&f10k), "P(>10k) = {f10k}");
        assert!((0.007..0.03).contains(&f100k), "P(>100k) = {f100k}");
    }

    #[test]
    fn burst_rates_are_positive_and_spread() {
        let model = BurstRateModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..5_000).map(|_| model.sample(&mut rng)).collect();
        assert!(samples.iter().all(|r| *r >= model.min_rate));
        let below_median = samples.iter().filter(|r| **r < 1_500.0).count();
        let frac = below_median as f64 / samples.len() as f64;
        assert!((0.4..0.6).contains(&frac), "median calibration off: {frac}");
        // Durations implied for a 5k burst: mostly under 10 s.
        let under_10s = samples.iter().filter(|r| 5_000.0 / **r < 10.0).count();
        assert!(under_10s * 2 > samples.len());
    }

    #[test]
    fn burst_shape_sums_to_one_and_is_head_heavy_on_average() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut tails_over_10pct = 0;
        let n = 2_000;
        let mut head_sum = 0.0;
        for _ in 0..n {
            let s = BurstShape::sample(&mut rng);
            assert!((s.head + s.middle + s.tail - 1.0).abs() < 1e-9);
            assert!(s.head > 0.0 && s.middle > 0.0 && s.tail > 0.0);
            if s.tail >= 0.10 {
                tails_over_10pct += 1;
            }
            head_sum += s.head;
        }
        assert!(head_sum / n as f64 > 0.4, "head share should dominate");
        // A substantial fraction of bursts keep ≥10 % of withdrawals for the tail.
        assert!(tails_over_10pct as f64 / n as f64 > 0.4);
    }

    #[test]
    fn cumulative_and_inverse_are_consistent() {
        let shape = BurstShape {
            head: 0.6,
            middle: 0.3,
            tail: 0.1,
        };
        assert!((shape.cumulative(0.0) - 0.0).abs() < 1e-12);
        assert!((shape.cumulative(1.0) - 1.0).abs() < 1e-9);
        assert!((shape.cumulative(1.0 / 3.0) - 0.6).abs() < 1e-9);
        assert!((shape.cumulative(2.0 / 3.0) - 0.9).abs() < 1e-9);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let t = shape.time_of_fraction(q);
            assert!((shape.cumulative(t) - q).abs() < 1e-6, "q={q}");
        }
        // Monotonic.
        let mut last = 0.0;
        for i in 0..=100 {
            let t = shape.time_of_fraction(i as f64 / 100.0);
            assert!(t >= last - 1e-12);
            last = t;
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = BurstSizeModel::default();
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| model.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| model.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
