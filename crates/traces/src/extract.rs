//! Sliding-window burst extraction (§2.2.1 methodology).
//!
//! The paper extracts bursts from raw per-session update streams with a 10 s
//! sliding window: a burst starts when the windowed withdrawal count exceeds a
//! start threshold (1,500 — the 99.99th percentile of windowed counts) and
//! stops when it drops below a stop threshold (9 — the 90th percentile). This
//! module reimplements that extraction so that the Fig. 2 measurements can be
//! recomputed from any message stream (synthetic or otherwise).

use swift_bgp::{MessageStream, Timestamp, SECOND};

/// An extracted burst.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedBurst {
    /// Time of the first withdrawal in the burst.
    pub start: Timestamp,
    /// Time of the last withdrawal in the burst.
    pub end: Timestamp,
    /// Number of withdrawals in the burst.
    pub withdrawals: usize,
}

impl ExtractedBurst {
    /// Duration of the burst.
    pub fn duration(&self) -> Timestamp {
        self.end.saturating_sub(self.start)
    }
}

/// Extraction parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractConfig {
    /// Sliding-window length (paper: 10 s).
    pub window: Timestamp,
    /// Windowed withdrawal count that starts a burst (paper: 1,500).
    pub start_threshold: usize,
    /// Windowed withdrawal count below which a burst stops (paper: 9).
    pub stop_threshold: usize,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            window: 10 * SECOND,
            start_threshold: 1_500,
            stop_threshold: 9,
        }
    }
}

/// Extracts the bursts of withdrawal activity from a message stream.
pub fn extract_bursts(stream: &MessageStream, config: &ExtractConfig) -> Vec<ExtractedBurst> {
    let withdrawal_times: Vec<Timestamp> = stream
        .elementary_events()
        .filter(|e| e.is_withdraw())
        .map(|e| e.timestamp())
        .collect();
    extract_from_times(&withdrawal_times, config)
}

/// Extraction working directly on withdrawal timestamps (must be sorted).
pub fn extract_from_times(times: &[Timestamp], config: &ExtractConfig) -> Vec<ExtractedBurst> {
    let mut bursts = Vec::new();
    let mut window_start = 0usize; // index of the first withdrawal in the window
    let mut in_burst = false;
    let mut burst_first = 0usize;
    #[allow(unused_assignments)]
    let mut burst_last = 0usize;

    for (i, &t) in times.iter().enumerate() {
        // Slide the window.
        while times[window_start] + config.window <= t {
            window_start += 1;
        }
        let count = i - window_start + 1;
        if !in_burst && count >= config.start_threshold {
            in_burst = true;
            burst_first = window_start;
        }
        if in_burst {
            burst_last = i;
            // Look ahead: the burst stops when the windowed count (ending at a
            // later withdrawal or at silence) drops to the stop threshold. We
            // detect it lazily: if the next withdrawal is more than `window`
            // away (or the stream ends), the window will drain below the stop
            // threshold and the burst closes here.
            let closes = match times.get(i + 1) {
                None => true,
                Some(&next) => {
                    // Count of withdrawals within `window` ending just before `next`.
                    let future_start = times[..=i].partition_point(|&x| x + config.window <= next);
                    let future_count = (i + 1).saturating_sub(future_start);
                    future_count <= config.stop_threshold
                }
            };
            if closes {
                bursts.push(ExtractedBurst {
                    start: times[burst_first],
                    end: times[burst_last],
                    withdrawals: burst_last - burst_first + 1,
                });
                in_burst = false;
            }
        }
    }
    bursts
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_bgp::{BgpMessage, Prefix};

    fn cfg(start: usize, stop: usize) -> ExtractConfig {
        ExtractConfig {
            window: 10 * SECOND,
            start_threshold: start,
            stop_threshold: stop,
        }
    }

    fn times(specs: &[(Timestamp, usize)]) -> Vec<Timestamp> {
        // (start, count): count withdrawals 1 ms apart starting at start.
        let mut v = Vec::new();
        for (start, count) in specs {
            for i in 0..*count {
                v.push(start + i as u64 * 1_000);
            }
        }
        v.sort();
        v
    }

    #[test]
    fn single_burst_is_extracted_with_full_extent() {
        let t = times(&[(100 * SECOND, 5_000)]);
        let bursts = extract_from_times(&t, &cfg(1_500, 9));
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].withdrawals, 5_000);
        assert_eq!(bursts[0].start, 100 * SECOND);
        assert_eq!(bursts[0].end, *t.last().unwrap());
        assert!(bursts[0].duration() > 0);
    }

    #[test]
    fn trickle_below_threshold_is_not_a_burst() {
        // 1 withdrawal per minute for a day: never 1,500 in a window.
        let t: Vec<Timestamp> = (0..1_440).map(|i| i * 60 * SECOND).collect();
        assert!(extract_from_times(&t, &cfg(1_500, 9)).is_empty());
    }

    #[test]
    fn two_separated_bursts_are_distinct() {
        let t = times(&[(0, 3_000), (3_600 * SECOND, 2_000)]);
        let bursts = extract_from_times(&t, &cfg(1_500, 9));
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].withdrawals, 3_000);
        assert_eq!(bursts[1].withdrawals, 2_000);
        assert!(bursts[1].start >= 3_600 * SECOND);
    }

    #[test]
    fn noise_between_bursts_is_ignored() {
        let mut t = times(&[(0, 2_000), (1_000 * SECOND, 2_000)]);
        // Sparse noise in between.
        for i in 0..50u64 {
            t.push(200 * SECOND + i * 10 * SECOND);
        }
        t.sort();
        let bursts = extract_from_times(&t, &cfg(1_500, 9));
        assert_eq!(bursts.len(), 2);
        // Noise withdrawals are not folded into either burst.
        assert!(bursts[0].withdrawals <= 2_010);
        assert!(bursts[1].withdrawals <= 2_010);
    }

    #[test]
    fn works_from_message_streams() {
        let msgs: Vec<BgpMessage> = (0..2_000u32)
            .map(|i| BgpMessage::withdraw(u64::from(i) * 5_000, Prefix::nth_slash24(i)))
            .collect();
        let stream = MessageStream::from_messages(msgs);
        let bursts = extract_bursts(&stream, &ExtractConfig::default());
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].withdrawals, 2_000);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(extract_from_times(&[], &ExtractConfig::default()).is_empty());
        assert!(extract_bursts(&MessageStream::new(), &ExtractConfig::default()).is_empty());
    }
}
