//! Corpus-scale streaming soak replay: the month-long, all-sessions input of
//! the sharded runtime's endurance experiment (`exp_soak`).
//!
//! [`crate::interleave::interleave_streams`] merges *materialised* streams —
//! fine for a handful of synthetic bursts, hopeless for the full corpus (213
//! sessions × a month of bursts ≈ millions of events whose streams would all
//! have to sit in memory at once). This module replays the same corpus
//! **streamingly**:
//!
//! * each session is a cursor: its RIB is materialised once
//!   ([`Corpus::session_rib`]), but each burst's message stream is expanded
//!   only when the replay clock reaches the burst's start and is dropped as
//!   soon as it is consumed — at any moment only the *currently active*
//!   bursts exist in memory ([`SoakReplay::materialized_bursts_high_water`]
//!   proves it);
//! * a binary heap merges the per-session cursors by `(timestamp, peer)`,
//!   producing exactly the order the materialised interleave would (tested
//!   against it), so the sharded runtime's determinism guarantees carry over;
//! * the merged stream is annotated with **lifecycle markers**
//!   ([`ReplayItem::SessionDown`] / [`ReplayItem::SessionUp`] around
//!   configured session flaps) and **convergence points**
//!   ([`ReplayItem::Converged`] whenever the corpus goes quiet for
//!   [`SoakConfig::convergence_gap`]) — the cues `exp_soak` turns into
//!   `teardown_session` / `register_session` / `resync_after_convergence`
//!   calls on the runtime.

use crate::corpus::{BurstMeta, Corpus, SessionRib};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use swift_bgp::{
    AsPath, Asn, ElementaryEvent, PeerId, Prefix, Route, RouteAttributes, RoutingTable, Timestamp,
    SECOND,
};

/// First shared backup provider of the vantage router (alternate for ~95 % of
/// every session's prefixes).
pub const SOAK_BACKUP_A: PeerId = PeerId(900_001);

/// Second shared backup provider (~60 % coverage).
pub const SOAK_BACKUP_B: PeerId = PeerId(900_002);

/// One item of the merged soak replay, in global time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayItem {
    /// The session (re-)established at `time`: the driver should register it
    /// on the runtime (engine + routes) before feeding further events.
    SessionUp {
        /// Virtual time of the re-establishment.
        time: Timestamp,
        /// The session that came back.
        peer: PeerId,
    },
    /// One per-prefix event received on `peer`'s session.
    Event {
        /// The session the event was received on.
        peer: PeerId,
        /// The event itself (its timestamp is the replay clock).
        event: ElementaryEvent,
    },
    /// The corpus went quiet for at least [`SoakConfig::convergence_gap`]:
    /// BGP has reconverged, and the driver should run
    /// `resync_after_convergence`.
    Converged {
        /// Virtual time at which convergence is declared (quiet-gap start
        /// plus the configured gap).
        time: Timestamp,
    },
    /// The session dropped at `time`: the driver should tear it down on the
    /// runtime.
    SessionDown {
        /// Virtual time of the session loss.
        time: Timestamp,
        /// The departed session.
        peer: PeerId,
    },
}

impl ReplayItem {
    /// The item's position on the replay clock.
    pub fn time(&self) -> Timestamp {
        match self {
            ReplayItem::SessionUp { time, .. } => *time,
            ReplayItem::Event { event, .. } => event.timestamp(),
            ReplayItem::Converged { time } => *time,
            ReplayItem::SessionDown { time, .. } => *time,
        }
    }
}

/// Configuration of the soak replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakConfig {
    /// A quiet gap of at least this long (virtual time) counts as BGP
    /// reconvergence and emits [`ReplayItem::Converged`].
    pub convergence_gap: Timestamp,
    /// Session flaps: `(session index, burst index)` pairs — the session
    /// drops right after that burst's last event and re-establishes just
    /// before its next burst starts. A flap is skipped (and counted in
    /// [`SoakReplay::flaps_skipped`]) when the schedule leaves no room for
    /// it: the flapped burst overlaps another of the session's bursts, is
    /// the session's last, or ends less than two ticks before the next one.
    pub flaps: Vec<(usize, usize)>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            convergence_gap: 600 * SECOND,
            flaps: Vec::new(),
        }
    }
}

/// Picks up to `max` flap points (one per session) whose catalog schedule
/// conservatively guarantees the replay can honour them — the single source
/// of flap feasibility for harnesses and tests, so they cannot drift from
/// the cursor's runtime rule.
///
/// A burst `b` qualifies when every earlier burst of the session ends before
/// `b` starts (so `b` is the only active burst when it finishes) and the
/// next burst starts strictly after `b`'s conservative end plus the two
/// ticks the down/up markers need. "Conservative end" is
/// `start + 2 × max(duration, 1 s) + 2`: materialisation paces events over
/// `duration().max(SECOND)` with under one extra nominal duration of
/// per-event jitter, so every event of the burst falls strictly before this
/// bound (sub-second catalogued durations included).
pub fn pick_feasible_flaps(corpus: &Corpus, max: usize) -> Vec<(usize, usize)> {
    let end_of = |b: &BurstMeta| b.start + b.duration().max(SECOND) * 2 + 2;
    let mut flaps = Vec::new();
    for idx in 0..corpus.num_sessions() {
        if flaps.len() >= max {
            break;
        }
        let bursts = &corpus.session_meta(idx).bursts;
        for b in 0..bursts.len().saturating_sub(1) {
            let isolated = bursts[..b]
                .iter()
                .all(|prev| end_of(prev) < bursts[b].start)
                && bursts[b + 1].start > end_of(&bursts[b]) + 2;
            if isolated {
                flaps.push((idx, b));
                break;
            }
        }
    }
    flaps
}

/// Lifecycle markers a cursor has scheduled but not yet emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MarkerKind {
    Down,
    Up,
}

/// One materialised burst being consumed.
#[derive(Debug, Clone)]
struct ActiveBurst {
    burst_idx: usize,
    events: Vec<ElementaryEvent>,
    /// Next event to emit; invariant: `pos < events.len()`.
    pos: usize,
}

impl ActiveBurst {
    fn head_time(&self) -> Timestamp {
        self.events[self.pos].timestamp()
    }
}

/// What a cursor would emit next.
enum Choice {
    Marker,
    /// Position in `active` of the burst whose head is due.
    Burst(usize),
}

/// One session's half of the streaming merge: the materialised RIB, the burst
/// catalog, and the (lazily expanded) active bursts.
#[derive(Debug, Clone)]
struct SessionCursor {
    peer: PeerId,
    asn: Asn,
    /// The session catalog's RNG seed (vantage-table backup coverage).
    seed: u64,
    rib: SessionRib,
    bursts: Vec<BurstMeta>,
    next_burst: usize,
    active: Vec<ActiveBurst>,
    markers: VecDeque<(Timestamp, MarkerKind)>,
    flap_after: BTreeSet<usize>,
    active_high_water: usize,
    flaps_skipped: usize,
}

impl SessionCursor {
    fn new(corpus: &Corpus, idx: usize, flap_after: BTreeSet<usize>) -> Self {
        let meta = corpus.session_meta(idx);
        // A flap on a burst index the session does not have can never
        // trigger: count it as skipped up front instead of silently losing
        // it.
        let (flap_after, invalid): (BTreeSet<usize>, BTreeSet<usize>) =
            flap_after.into_iter().partition(|b| *b < meta.bursts.len());
        SessionCursor {
            peer: meta.peer,
            asn: meta.peer_asn,
            seed: meta.seed,
            rib: corpus.session_rib(idx),
            bursts: meta.bursts.clone(),
            next_burst: 0,
            active: Vec::new(),
            markers: VecDeque::new(),
            flap_after,
            active_high_water: 0,
            flaps_skipped: invalid.len(),
        }
    }

    /// Expands catalog bursts into `active` until the next unexpanded burst
    /// starts strictly after everything currently due (a burst's events never
    /// precede its catalogued start, so later bursts cannot owe earlier
    /// events).
    fn ensure_materialized(&mut self, corpus: &Corpus) {
        while self.next_burst < self.bursts.len() {
            let start = self.bursts[self.next_burst].start;
            if let Some((due, _)) = self.choose() {
                if start > due {
                    break;
                }
            }
            let burst = corpus.materialize_burst(&self.rib, &self.bursts[self.next_burst]);
            let events: Vec<ElementaryEvent> = burst.stream.elementary_events().collect();
            if events.is_empty() {
                if self.flap_after.remove(&self.next_burst) {
                    self.flaps_skipped += 1;
                }
            } else {
                self.active.push(ActiveBurst {
                    burst_idx: self.next_burst,
                    events,
                    pos: 0,
                });
                self.active_high_water = self.active_high_water.max(self.active.len());
            }
            self.next_burst += 1;
        }
    }

    /// The cursor's next emission, among pending markers and active-burst
    /// heads: earliest time wins, markers win time ties, and burst ties go to
    /// the earlier burst (the order the materialised interleave's stable sort
    /// produces).
    fn choose(&self) -> Option<(Timestamp, Choice)> {
        let marker = self.markers.front().map(|(t, _)| *t);
        let mut burst: Option<(Timestamp, usize, usize)> = None;
        for (pos, b) in self.active.iter().enumerate() {
            let key = (b.head_time(), b.burst_idx);
            if burst.map_or(true, |(t, bi, _)| key < (t, bi)) {
                burst = Some((key.0, key.1, pos));
            }
        }
        match (marker, burst) {
            (None, None) => None,
            (Some(mt), None) => Some((mt, Choice::Marker)),
            (None, Some((t, _, pos))) => Some((t, Choice::Burst(pos))),
            (Some(mt), Some((t, _, pos))) => {
                if mt <= t {
                    Some((mt, Choice::Marker))
                } else {
                    Some((t, Choice::Burst(pos)))
                }
            }
        }
    }

    /// The time of the cursor's next emission, expanding bursts as needed.
    fn head_time(&mut self, corpus: &Corpus) -> Option<Timestamp> {
        self.ensure_materialized(corpus);
        self.choose().map(|(t, _)| t)
    }

    /// Emits the cursor's next item.
    fn pop_item(&mut self, corpus: &Corpus) -> Option<ReplayItem> {
        self.ensure_materialized(corpus);
        let (_, choice) = self.choose()?;
        match choice {
            Choice::Marker => {
                let (time, kind) = self.markers.pop_front().expect("marker chosen");
                Some(match kind {
                    MarkerKind::Down => ReplayItem::SessionDown {
                        time,
                        peer: self.peer,
                    },
                    MarkerKind::Up => ReplayItem::SessionUp {
                        time,
                        peer: self.peer,
                    },
                })
            }
            Choice::Burst(pos) => {
                let event = {
                    let b = &mut self.active[pos];
                    let event = b.events[b.pos].clone();
                    b.pos += 1;
                    event
                };
                if self.active[pos].pos == self.active[pos].events.len() {
                    // Burst consumed: free its stream and, if a flap is
                    // scheduled here, plan the down/up markers.
                    let finished = self.active.swap_remove(pos);
                    let last = finished
                        .events
                        .last()
                        .expect("consumed burst had events")
                        .timestamp();
                    self.maybe_schedule_flap(finished.burst_idx, last);
                }
                Some(ReplayItem::Event {
                    peer: self.peer,
                    event,
                })
            }
        }
    }

    /// Schedules the down/up markers of a flap configured after `burst_idx`,
    /// if the session's schedule leaves room for one (see
    /// [`SoakConfig::flaps`]).
    fn maybe_schedule_flap(&mut self, burst_idx: usize, last_event: Timestamp) {
        if !self.flap_after.remove(&burst_idx) {
            return;
        }
        let feasible = self.active.is_empty()
            && self.next_burst == burst_idx + 1
            && self.next_burst < self.bursts.len()
            && self.bursts[self.next_burst].start > last_event + 2;
        if !feasible {
            self.flaps_skipped += 1;
            return;
        }
        self.markers.push_back((last_event + 1, MarkerKind::Down));
        self.markers
            .push_back((self.bursts[self.next_burst].start - 1, MarkerKind::Up));
    }
}

/// The streaming k-way merged replay of a whole corpus. Obtain with
/// [`SoakReplay::new`] and consume as an iterator of [`ReplayItem`]s.
#[derive(Debug, Clone)]
pub struct SoakReplay<'a> {
    corpus: &'a Corpus,
    config: SoakConfig,
    cursors: Vec<SessionCursor>,
    /// Min-heap over `(next emission time, peer id, cursor index)` — the same
    /// `(timestamp, peer)` order `interleave_streams` sorts by.
    heap: BinaryHeap<Reverse<(Timestamp, u32, usize)>>,
    last_time: Option<Timestamp>,
    pending: Option<ReplayItem>,
    /// Configured flaps naming a session the corpus does not have.
    invalid_flaps: usize,
}

impl<'a> SoakReplay<'a> {
    /// Builds the replay: materialises every session's RIB (but no burst
    /// stream) and seeds the merge heap.
    pub fn new(corpus: &'a Corpus, config: SoakConfig) -> Self {
        let mut flaps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); corpus.num_sessions()];
        let mut invalid_flaps = 0usize;
        for &(session, burst) in &config.flaps {
            if session < flaps.len() {
                flaps[session].insert(burst);
            } else {
                // A flap on a session the corpus does not have can never
                // trigger: counted as skipped, not silently dropped.
                invalid_flaps += 1;
            }
        }
        let mut cursors: Vec<SessionCursor> = flaps
            .into_iter()
            .enumerate()
            .map(|(idx, flap_after)| SessionCursor::new(corpus, idx, flap_after))
            .collect();
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (idx, cursor) in cursors.iter_mut().enumerate() {
            if let Some(t) = cursor.head_time(corpus) {
                heap.push(Reverse((t, cursor.peer.0, idx)));
            }
        }
        SoakReplay {
            corpus,
            config,
            cursors,
            heap,
            last_time: None,
            pending: None,
            invalid_flaps,
        }
    }

    /// The corpus being replayed.
    pub fn corpus(&self) -> &Corpus {
        self.corpus
    }

    /// The sessions of the replay, as `(peer, asn)` pairs in session order.
    pub fn session_peers(&self) -> impl Iterator<Item = (PeerId, Asn)> + '_ {
        self.cursors.iter().map(|c| (c.peer, c.asn))
    }

    /// The vantage router's routing table: every session primary
    /// (LOCAL_PREF 200) plus the two shared backup providers
    /// ([`SOAK_BACKUP_A`], [`SOAK_BACKUP_B`]) whose synthetic paths avoid the
    /// sessions' AS hierarchies — the multi-session analogue of
    /// [`crate::corpus::SessionTrace::routing_table`].
    pub fn vantage_table(&self) -> RoutingTable {
        let mut table = RoutingTable::new();
        table.add_peer(SOAK_BACKUP_A, Asn(8_000_001));
        table.add_peer(SOAK_BACKUP_B, Asn(8_000_002));
        for cursor in &self.cursors {
            table.add_peer(cursor.peer, cursor.asn);
            let mut rng = StdRng::seed_from_u64(cursor.seed ^ 0x50a6_cafe);
            for (prefix, route) in Self::primary_routes(cursor) {
                table.announce(cursor.peer, prefix, route);
                if rng.gen_bool(0.95) {
                    let alt = AsPath::new([8_000_001u32, 8_100_000 + (prefix.addr() % 1_000)]);
                    table.announce(
                        SOAK_BACKUP_A,
                        prefix,
                        Route::new(SOAK_BACKUP_A, RouteAttributes::from_path(alt), 0),
                    );
                }
                if rng.gen_bool(0.6) {
                    let alt = AsPath::new([8_000_002u32, 8_200_000 + (prefix.addr() % 1_000)]);
                    table.announce(
                        SOAK_BACKUP_B,
                        prefix,
                        Route::new(SOAK_BACKUP_B, RouteAttributes::from_path(alt), 0),
                    );
                }
            }
        }
        table
    }

    /// The primary routes of one session — exactly what
    /// [`SoakReplay::vantage_table`] announced for it, so re-registering a
    /// flapped session with these restores its initial state.
    pub fn session_routes(&self, peer: PeerId) -> Option<Vec<(Prefix, Route)>> {
        self.cursors
            .iter()
            .find(|c| c.peer == peer)
            .map(|c| Self::primary_routes(c).collect())
    }

    fn primary_routes(cursor: &SessionCursor) -> impl Iterator<Item = (Prefix, Route)> + '_ {
        cursor.rib.rib.iter().map(move |(prefix, path)| {
            let mut attrs = RouteAttributes::from_path(path.clone());
            attrs.local_pref = Some(200);
            (*prefix, Route::new(cursor.peer, attrs, 0))
        })
    }

    /// The most burst streams any single session held in memory at once —
    /// the streaming replay's laziness witness (compare with the session's
    /// total burst count).
    pub fn materialized_bursts_high_water(&self) -> usize {
        self.cursors
            .iter()
            .map(|c| c.active_high_water)
            .max()
            .unwrap_or(0)
    }

    /// Configured flaps that had to be skipped: the burst schedule left no
    /// room (see [`SoakConfig::flaps`]), or the flap named a session/burst
    /// the corpus does not have.
    pub fn flaps_skipped(&self) -> usize {
        self.invalid_flaps + self.cursors.iter().map(|c| c.flaps_skipped).sum::<usize>()
    }

    /// Splits the replay into `k` per-source streams — the input shape of
    /// the runtime's multi-producer ingest (`swift_runtime::IngestHandle`):
    ///
    /// * **sessions are disjoint across sources** (session `i` goes to
    ///   source `i % k`), so pinning each source to one ingest handle
    ///   preserves per-session ordering;
    /// * each source sees its sessions' events and lifecycle markers in
    ///   exactly the order the merged replay emits them;
    /// * [`ReplayItem::Converged`] markers are **broadcast**: every source
    ///   observes the identical convergence sequence at the identical
    ///   position relative to its own events, so K producers can rendezvous
    ///   on them to run `resync_after_convergence` at the same logical point
    ///   as a single-producer replay.
    ///
    /// `k` is clamped to at least 1; with more sources than sessions the
    /// surplus sources carry only convergence markers.
    ///
    /// Each source runs its own clone of the lazy merge and filters it, so
    /// memory stays bounded by the active bursts (times `k`) while the merge
    /// work is paid once per source — the sources are meant to be consumed
    /// on `k` separate producer threads, where that work parallelizes.
    pub fn partition_sources(&self, k: usize) -> Vec<SourceReplay<'a>> {
        let k = k.max(1);
        (0..k)
            .map(|source| SourceReplay {
                replay: self.clone(),
                sessions: self
                    .cursors
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| idx % k == source)
                    .map(|(_, c)| c.peer)
                    .collect(),
            })
            .collect()
    }
}

/// One producer's slice of a [`SoakReplay`]: the events and lifecycle
/// markers of its pinned sessions, plus every (broadcast) convergence
/// marker. Obtain from [`SoakReplay::partition_sources`].
#[derive(Debug, Clone)]
pub struct SourceReplay<'a> {
    replay: SoakReplay<'a>,
    sessions: BTreeSet<PeerId>,
}

impl SourceReplay<'_> {
    /// The sessions pinned to this source.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.sessions.iter().copied()
    }

    /// Flaps the underlying (full) replay had to skip so far — every source
    /// replays the whole merge, so any fully-consumed source reports the
    /// corpus-wide count (see [`SoakReplay::flaps_skipped`]).
    pub fn flaps_skipped(&self) -> usize {
        self.replay.flaps_skipped()
    }
}

impl Iterator for SourceReplay<'_> {
    type Item = ReplayItem;

    fn next(&mut self) -> Option<ReplayItem> {
        loop {
            let item = self.replay.next()?;
            let keep = match &item {
                ReplayItem::Converged { .. } => true,
                ReplayItem::Event { peer, .. }
                | ReplayItem::SessionDown { peer, .. }
                | ReplayItem::SessionUp { peer, .. } => self.sessions.contains(peer),
            };
            if keep {
                return Some(item);
            }
        }
    }
}

impl Iterator for SoakReplay<'_> {
    type Item = ReplayItem;

    fn next(&mut self) -> Option<ReplayItem> {
        if let Some(item) = self.pending.take() {
            return Some(item);
        }
        let Reverse((time, _, idx)) = self.heap.pop()?;
        let item = self.cursors[idx]
            .pop_item(self.corpus)
            .expect("cursor with a heap entry has a head");
        if let Some(t) = self.cursors[idx].head_time(self.corpus) {
            self.heap.push(Reverse((t, self.cursors[idx].peer.0, idx)));
        }
        let quiet_since = self.last_time;
        self.last_time = Some(time);
        if let Some(last) = quiet_since {
            if time.saturating_sub(last) >= self.config.convergence_gap {
                self.pending = Some(item);
                return Some(ReplayItem::Converged {
                    time: last + self.config.convergence_gap,
                });
            }
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::TraceConfig;
    use crate::interleave::interleave_streams;
    use swift_bgp::MessageStream;

    fn small_corpus() -> Corpus {
        Corpus::generate(TraceConfig {
            num_peers: 4,
            table_size: 3_000,
            bursts_per_peer_mean: 3.0,
            ..TraceConfig::small()
        })
    }

    /// The fully-materialised reference: every burst stream of every session,
    /// session-by-session in burst order (the stable-sort input order of
    /// `interleave_streams`).
    fn materialized_reference(corpus: &Corpus) -> Vec<(PeerId, ElementaryEvent)> {
        let mut streams: Vec<(PeerId, MessageStream)> = Vec::new();
        for idx in 0..corpus.num_sessions() {
            let session = corpus.materialize_session(idx);
            for burst in &session.bursts {
                streams.push((session.meta.peer, burst.stream.clone()));
            }
        }
        let refs: Vec<(PeerId, &MessageStream)> = streams.iter().map(|(p, s)| (*p, s)).collect();
        interleave_streams(&refs)
            .into_iter()
            .map(|e| (e.peer, e.event))
            .collect()
    }

    #[test]
    fn streaming_replay_matches_materialized_interleave() {
        let corpus = small_corpus();
        let expected = materialized_reference(&corpus);
        assert!(!expected.is_empty());
        let replay = SoakReplay::new(&corpus, SoakConfig::default());
        let got: Vec<(PeerId, ElementaryEvent)> = replay
            .filter_map(|item| match item {
                ReplayItem::Event { peer, event } => Some((peer, event)),
                _ => None,
            })
            .collect();
        assert_eq!(got.len(), expected.len());
        for (i, (a, b)) in got.iter().zip(expected.iter()).enumerate() {
            assert_eq!(a, b, "event {i} diverged");
        }
    }

    #[test]
    fn replay_is_lazy_and_time_ordered() {
        let corpus = small_corpus();
        let mut replay = SoakReplay::new(&corpus, SoakConfig::default());
        assert_eq!(
            replay.materialized_bursts_high_water(),
            1,
            "construction expands at most each session's first due burst"
        );
        let mut last = 0;
        let mut events = 0usize;
        for item in replay.by_ref() {
            let t = item.time();
            assert!(t >= last, "replay clock went backwards: {t} < {last}");
            last = t;
            if matches!(item, ReplayItem::Event { .. }) {
                events += 1;
            }
        }
        assert!(events > 0);
        // The corpus spreads each session's bursts over a month, so no
        // session ever needed all of its burst streams at once.
        assert!(
            replay.materialized_bursts_high_water() < corpus.total_bursts(),
            "high-water {} should stay below the corpus total {}",
            replay.materialized_bursts_high_water(),
            corpus.total_bursts()
        );
    }

    #[test]
    fn convergence_markers_fire_on_quiet_gaps() {
        let corpus = small_corpus();
        let gap = 600 * SECOND;
        let items: Vec<ReplayItem> = SoakReplay::new(
            &corpus,
            SoakConfig {
                convergence_gap: gap,
                flaps: Vec::new(),
            },
        )
        .collect();
        let converged = items
            .iter()
            .filter(|i| matches!(i, ReplayItem::Converged { .. }))
            .count();
        assert!(
            converged > 0,
            "a month-long corpus with minute-long bursts has quiet gaps"
        );
        // Every marker sits inside a genuinely quiet stretch: the items
        // around it are at least `gap` apart.
        for (i, item) in items.iter().enumerate() {
            if matches!(item, ReplayItem::Converged { .. }) {
                assert!(i > 0 && i + 1 < items.len());
                assert!(items[i + 1].time() - items[i - 1].time() >= gap);
            }
        }
    }

    #[test]
    fn flaps_emit_ordered_lifecycle_markers() {
        let corpus = small_corpus();
        let flaps = pick_feasible_flaps(&corpus, 1);
        let (session, burst) = *flaps.first().expect("a feasible flap exists");
        let peer = corpus.session_meta(session).peer;
        let mut replay = SoakReplay::new(
            &corpus,
            SoakConfig {
                flaps: vec![(session, burst)],
                ..SoakConfig::default()
            },
        );
        let items: Vec<ReplayItem> = replay.by_ref().collect();
        assert_eq!(replay.flaps_skipped(), 0, "the chosen flap was feasible");
        let down_at = items
            .iter()
            .position(|i| matches!(i, ReplayItem::SessionDown { peer: p, .. } if *p == peer))
            .expect("one SessionDown");
        let up_at = items
            .iter()
            .position(|i| matches!(i, ReplayItem::SessionUp { peer: p, .. } if *p == peer))
            .expect("one SessionUp");
        assert!(down_at < up_at, "down before up");
        // The session is silent while down.
        for item in &items[down_at + 1..up_at] {
            if let ReplayItem::Event { peer: p, .. } = item {
                assert_ne!(*p, peer, "no events while the session is down");
            }
        }
        // The session speaks again after coming back.
        assert!(
            items[up_at + 1..]
                .iter()
                .any(|i| matches!(i, ReplayItem::Event { peer: p, .. } if *p == peer)),
            "the re-established session replays its next burst"
        );
        // Exactly one flap was configured.
        let downs = items
            .iter()
            .filter(|i| matches!(i, ReplayItem::SessionDown { .. }))
            .count();
        let ups = items
            .iter()
            .filter(|i| matches!(i, ReplayItem::SessionUp { .. }))
            .count();
        assert_eq!((downs, ups), (1, 1));
    }

    #[test]
    fn partition_sources_is_a_disjoint_cover_with_broadcast_convergence() {
        let corpus = small_corpus();
        let flaps = pick_feasible_flaps(&corpus, 1);
        let config = SoakConfig {
            flaps,
            ..SoakConfig::default()
        };
        let full: Vec<ReplayItem> = SoakReplay::new(&corpus, config.clone()).collect();
        let converged_times: Vec<_> = full
            .iter()
            .filter(|i| matches!(i, ReplayItem::Converged { .. }))
            .map(|i| i.time())
            .collect();
        assert!(!converged_times.is_empty());
        for k in [1usize, 2, 3, 7] {
            let template = SoakReplay::new(&corpus, config.clone());
            let sources = template.partition_sources(k);
            assert_eq!(sources.len(), k);
            // Sessions are disjoint across sources and cover the corpus.
            let mut seen = BTreeSet::new();
            for source in &sources {
                for peer in source.peers() {
                    assert!(seen.insert(peer), "session {peer:?} pinned twice");
                }
            }
            assert_eq!(seen.len(), corpus.num_sessions());

            let streams: Vec<Vec<ReplayItem>> = sources.into_iter().map(|s| s.collect()).collect();
            // Convergence markers are broadcast: every source sees the full
            // sequence.
            for stream in &streams {
                let got: Vec<_> = stream
                    .iter()
                    .filter(|i| matches!(i, ReplayItem::Converged { .. }))
                    .map(|i| i.time())
                    .collect();
                assert_eq!(got, converged_times, "k={k}");
            }
            // Non-convergence items: each source's stream is exactly the
            // full replay filtered to its sessions (order preserved), and
            // together they cover every item.
            let total: usize = streams
                .iter()
                .map(|s| {
                    s.iter()
                        .filter(|i| !matches!(i, ReplayItem::Converged { .. }))
                        .count()
                })
                .sum();
            let full_total = full
                .iter()
                .filter(|i| !matches!(i, ReplayItem::Converged { .. }))
                .count();
            assert_eq!(total, full_total, "k={k}");
            for stream in &streams {
                let sessions: BTreeSet<PeerId> = stream
                    .iter()
                    .filter_map(|i| match i {
                        ReplayItem::Event { peer, .. }
                        | ReplayItem::SessionDown { peer, .. }
                        | ReplayItem::SessionUp { peer, .. } => Some(*peer),
                        ReplayItem::Converged { .. } => None,
                    })
                    .collect();
                let expected: Vec<&ReplayItem> = full
                    .iter()
                    .filter(|i| match i {
                        ReplayItem::Event { peer, .. }
                        | ReplayItem::SessionDown { peer, .. }
                        | ReplayItem::SessionUp { peer, .. } => sessions.contains(peer),
                        ReplayItem::Converged { .. } => false,
                    })
                    .collect();
                let got: Vec<&ReplayItem> = stream
                    .iter()
                    .filter(|i| !matches!(i, ReplayItem::Converged { .. }))
                    .collect();
                assert_eq!(got, expected, "k={k}: per-source order is the merged order");
            }
        }
    }

    #[test]
    fn partition_sources_surplus_sources_carry_only_convergence() {
        let corpus = small_corpus();
        let template = SoakReplay::new(&corpus, SoakConfig::default());
        let k = corpus.num_sessions() + 3;
        let sources = template.partition_sources(k);
        let empty = &sources[corpus.num_sessions()];
        assert_eq!(empty.peers().count(), 0);
        let items: Vec<ReplayItem> = sources[corpus.num_sessions()].clone().collect();
        assert!(!items.is_empty(), "convergence markers still broadcast");
        assert!(items
            .iter()
            .all(|i| matches!(i, ReplayItem::Converged { .. })));
    }

    #[test]
    fn vantage_table_covers_every_session_with_backups() {
        let corpus = small_corpus();
        let replay = SoakReplay::new(&corpus, SoakConfig::default());
        let table = replay.vantage_table();
        assert_eq!(table.peer_count(), corpus.num_sessions() + 2);
        let mut total = 0usize;
        for (peer, _) in replay.session_peers() {
            let rib = table.adj_rib_in(peer).unwrap();
            assert!(!rib.is_empty());
            total += rib.len();
            // Sessions are primary for their own prefixes (LOCAL_PREF 200).
            let (prefix, _) = rib.iter().next().unwrap();
            assert_eq!(table.best(prefix).unwrap().peer, peer);
        }
        // Disjoint per-session prefix spaces: the Loc-RIB holds every
        // session's whole table.
        assert_eq!(table.prefix_count(), total);
        // The shared backups cover most prefixes.
        let backup_a = table.adj_rib_in(SOAK_BACKUP_A).unwrap().len();
        assert!(
            backup_a * 100 >= total * 90,
            "~95 % coverage expected, got {backup_a}/{total}"
        );
        // Re-registration routes replay exactly the table's announcements.
        let (peer, _) = replay.session_peers().next().unwrap();
        let routes = replay.session_routes(peer).unwrap();
        assert_eq!(routes.len(), table.adj_rib_in(peer).unwrap().len());
        for (prefix, route) in &routes {
            let announced = table.adj_rib_in(peer).unwrap().get(prefix).unwrap();
            assert_eq!(route.as_path(), announced.as_path());
        }
    }
}
