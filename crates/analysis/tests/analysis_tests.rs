//! Fixture tests for every lint rule and both topology checks, plus the
//! workspace self-check: the real tree must be clean and its extracted
//! topology must match the runtime's documented shape.
//!
//! The fixtures live under `tests/fixtures/` (a subdirectory, so cargo does
//! not compile them as test targets — several contain deliberate
//! violations). Each is checked under a synthetic workspace-relative path
//! that puts it in the right rule scope.

use std::path::{Path, PathBuf};
use swift_analysis::{atomics, protocol, rules, sarif, topology, Finding, SourceFile, Workspace};

/// The mini ShardMsg spec the protocol violation fixtures are checked
/// against (the real spec needs the full two-channel mirror in
/// `protocol_ok.rs`).
const MINI_SPEC: &str = "\
channel ShardMsg
state Running initial
state Stopped final
msg Batch kind=data Running -> Running
msg Barrier kind=lifecycle broadcast=shard_txs Running -> Running
msg Shutdown kind=lifecycle broadcast=shard_txs terminal Running -> Stopped
";

/// Runs the protocol verifier over a fixture (as runtime source) against
/// the mini spec.
fn protocol_check(name: &str) -> protocol::ProtocolReport {
    let spec = protocol::parse_spec(MINI_SPEC).expect("mini spec parses");
    let f = SourceFile::parse("crates/runtime/src/worker.rs", &fixture(name));
    protocol::check_files(&spec, &[&f])
}

/// Runs the atomics auditor over a fixture (as runtime source).
fn atomics_check(name: &str) -> atomics::AtomicsReport {
    let f = SourceFile::parse("crates/runtime/src/lib.rs", &fixture(name));
    atomics::check_files(&[&f])
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Runs the lint rules over a fixture as if it sat at `rel` in the tree.
fn check_as(rel: &str, name: &str) -> Vec<Finding> {
    rules::check_file(&SourceFile::parse(rel, &fixture(name)))
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn instant_now_fires_once_on_the_hot_path() {
    let findings = check_as("crates/runtime/src/worker.rs", "instant_now.rs");
    assert_eq!(
        count(&findings, "instant-now"),
        1,
        "exactly the VIOLATION line: literals, comments, allowlisted fns, \
         pragma'd and test code must not fire: {findings:?}"
    );
    assert_eq!(findings.len(), 1, "no other rule fires: {findings:?}");
    assert!(findings[0].message.contains("EpochClock"));
}

#[test]
fn instant_now_is_out_of_scope_off_the_hot_path() {
    let findings = check_as("crates/traces/src/fixture.rs", "instant_now.rs");
    assert_eq!(count(&findings, "instant-now"), 0);
}

#[test]
fn unwrap_fires_on_bare_and_reasonless_pragma_sites() {
    let findings = check_as("crates/traces/src/fixture.rs", "unwrap.rs");
    assert_eq!(
        count(&findings, "unwrap"),
        2,
        "the bare site and the site under a reasonless pragma: {findings:?}"
    );
    assert_eq!(
        count(&findings, "pragma"),
        1,
        "the reasonless pragma is itself flagged: {findings:?}"
    );
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn unwrap_is_out_of_scope_in_bench_code() {
    let findings = check_as("crates/bench/src/bin/fixture.rs", "unwrap.rs");
    assert_eq!(count(&findings, "unwrap"), 0);
}

#[test]
fn unbounded_channel_fires_once_even_with_turbofish() {
    let findings = check_as("crates/runtime/src/lib.rs", "unbounded.rs");
    assert_eq!(
        count(&findings, "unbounded-channel"),
        1,
        "control bindings, sync_channel, pragma'd and test code must not \
         fire: {findings:?}"
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn thread_spawn_fires_on_path_and_builder_forms() {
    let findings = check_as("crates/traces/src/fixture.rs", "thread_spawn.rs");
    assert_eq!(count(&findings, "thread-spawn"), 2, "{findings:?}");
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn thread_spawn_is_in_scope_only_outside_runtime_and_bench() {
    for rel in [
        "crates/runtime/src/lib.rs",
        "crates/bench/src/bin/fixture.rs",
    ] {
        let findings = check_as(rel, "thread_spawn.rs");
        assert_eq!(count(&findings, "thread-spawn"), 0, "{rel}");
    }
}

#[test]
fn lifecycle_send_fires_only_on_lifecycle_payloads() {
    let findings = check_as("crates/runtime/src/worker.rs", "lifecycle_send.rs");
    assert_eq!(
        count(&findings, "lifecycle-send"),
        1,
        "shedding data batches and blocking lifecycle sends are fine: {findings:?}"
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn bare_applier_fires_in_bench_code_only() {
    let findings = check_as("crates/bench/src/bin/fixture.rs", "bare_applier.rs");
    assert_eq!(count(&findings, "bare-applier"), 1, "{findings:?}");
    assert!(findings[0].message.contains("try_applier"));
    let elsewhere = check_as("crates/runtime/src/lib.rs", "bare_applier.rs");
    assert_eq!(count(&elsewhere, "bare-applier"), 0);
}

#[test]
fn hot_path_alloc_polices_every_kernel_body() {
    let findings = check_as("crates/core/src/inference/kernels.rs", "hot_path_alloc.rs");
    assert_eq!(
        count(&findings, "hot-path-alloc"),
        4,
        "exactly the four VIOLATION lines: constructors, the pragma'd fn, \
         literals, comments and test code must not fire: {findings:?}"
    );
    assert_eq!(findings.len(), 4, "no other rule fires: {findings:?}");
    assert!(findings[0].message.contains("ScoreScratch"));
}

#[test]
fn hot_path_alloc_scopes_to_hot_fns_outside_kernels() {
    // In the other scorer files only the listed hot functions are policed:
    // `block_wp` and `helper_off_hot_list` are ordinary code there.
    let findings = check_as(
        "crates/core/src/inference/fit_score.rs",
        "hot_path_alloc.rs",
    );
    assert_eq!(count(&findings, "hot-path-alloc"), 2, "{findings:?}");
    // And off the hot-file list entirely, the rule is out of scope.
    let elsewhere = check_as("crates/core/src/fixture.rs", "hot_path_alloc.rs");
    assert_eq!(count(&elsewhere, "hot-path-alloc"), 0, "{elsewhere:?}");
}

#[test]
fn pragma_rule_flags_malformed_unknown_and_reasonless() {
    let findings = check_as("crates/core/src/fixture.rs", "pragmas.rs");
    assert_eq!(count(&findings, "pragma"), 3, "{findings:?}");
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn topology_detects_a_blocking_send_cycle() {
    let f = SourceFile::parse(
        "crates/runtime/src/lib.rs",
        &fixture("topology_blocking_cycle.rs"),
    );
    let report = topology::check_files(&[&f], &[&f]);
    let cycle = report
        .blocking_cycle
        .expect("bounded ack channel closes a coordinator <-> worker cycle");
    assert!(
        cycle.contains(&"coordinator".to_string()) && cycle.contains(&"swift-worker".to_string()),
        "cycle names both nodes: {cycle:?}"
    );
    assert!(report.lock_cycle.is_none());
}

#[test]
fn topology_accepts_the_unbounded_ack_shape() {
    let f = SourceFile::parse("crates/runtime/src/lib.rs", &fixture("topology_ok.rs"));
    let report = topology::check_files(&[&f], &[&f]);
    assert!(
        report.blocking_cycle.is_none(),
        "{:?}",
        report.blocking_cycle
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let keys: Vec<&str> = report
        .topology
        .channels
        .iter()
        .map(|c| c.key.as_str())
        .collect();
    assert!(
        keys.contains(&"ShardMsg") && keys.contains(&"barrier"),
        "{keys:?}"
    );
}

#[test]
fn topology_detects_a_lock_order_cycle() {
    let f = SourceFile::parse(
        "crates/core/src/tables.rs",
        &fixture("topology_lock_cycle.rs"),
    );
    let report = topology::check_files(&[], &[&f]);
    let cycle = report
        .lock_cycle
        .expect("opposite acquisition orders cycle");
    assert!(
        cycle.contains(&"routing".to_string()) && cycle.contains(&"forwarding".to_string()),
        "{cycle:?}"
    );
}

#[test]
fn protocol_full_mirror_is_clean_against_the_real_spec() {
    let spec_text = fixture("../../protocol/runtime.protocol");
    let spec = protocol::parse_spec(&spec_text).expect("real spec parses");
    let f = SourceFile::parse("crates/runtime/src/worker.rs", &fixture("protocol_ok.rs"));
    let report = protocol::check_files(&spec, &[&f]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.automaton.len(), 2);
    for chan in &report.automaton {
        for t in &chan.transitions {
            assert!(
                t.sends >= 1 && t.recv_arms >= 1,
                "{}::{} unobserved in the mirror fixture",
                chan.name,
                t.msg.name
            );
        }
    }
}

#[test]
fn protocol_missed_broadcast_is_flagged() {
    let report = protocol_check("protocol_missed_broadcast.rs");
    assert_eq!(
        count(&report.findings, "protocol"),
        1,
        "{:#?}",
        report.findings
    );
    assert!(report.findings[0].message.contains("broadcast loop"));
    assert!(report.findings[0].message.contains("Barrier"));
}

#[test]
fn protocol_post_shutdown_send_is_flagged() {
    let report = protocol_check("protocol_post_shutdown.rs");
    assert_eq!(
        count(&report.findings, "protocol"),
        1,
        "{:#?}",
        report.findings
    );
    assert!(report.findings[0].message.contains("terminal"));
    assert!(report.findings[0].message.contains("Batch"));
}

#[test]
fn protocol_wildcard_arm_is_flagged() {
    let report = protocol_check("protocol_wildcard_arm.rs");
    assert_eq!(
        count(&report.findings, "protocol-wildcard"),
        1,
        "{:#?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "protocol" && f.message.contains("no arm for `ShardMsg::Barrier`")),
        "the uncovered variant is reported too: {:#?}",
        report.findings
    );
}

#[test]
fn atomics_relaxed_flag_pair_is_flagged_on_both_sides() {
    let report = atomics_check("atomics_flag_relaxed.rs");
    let g = report.group("shutdown").expect("flag grouped");
    assert_eq!((g.role, g.verdict), ("flag", "unsound"));
    assert_eq!(
        count(&report.findings, "atomic-ordering"),
        2,
        "{:#?}",
        report.findings
    );
}

#[test]
fn atomics_unpaired_release_store_flags_only_the_relaxed_load() {
    let report = atomics_check("atomics_unpaired.rs");
    let g = report.group("epoch").expect("flag grouped");
    assert_eq!((g.role, g.verdict), ("flag", "unsound"));
    assert_eq!(
        count(&report.findings, "atomic-ordering"),
        1,
        "{:#?}",
        report.findings
    );
    assert!(report.findings[0].message.contains("Acquire"));
}

/// The SARIF export parses as JSON and carries the 2.1.0 schema shape:
/// version, one run with a named driver declaring the fired rules, and one
/// result per finding with a physical location whose startLine is 1-based.
#[test]
fn sarif_export_has_the_2_1_0_shape() {
    use swift_telemetry::export::Json;
    let findings = vec![
        Finding {
            rule: "protocol",
            path: "crates/analysis/protocol/runtime.protocol".into(),
            line: 0,
            message: "spec drift with a \"quoted\" detail".into(),
        },
        Finding {
            rule: "atomic-ordering",
            path: "crates/runtime/src/lib.rs".into(),
            line: 896,
            message: "flag pair".into(),
        },
    ];
    let log = Json::parse(&sarif::to_sarif(&findings)).expect("SARIF is valid JSON");
    assert_eq!(log.get("version").and_then(Json::as_str), Some("2.1.0"));
    assert!(log
        .get("$schema")
        .and_then(Json::as_str)
        .is_some_and(|s| s.contains("sarif-schema-2.1.0")));
    let runs = log
        .get("runs")
        .and_then(Json::as_array)
        .expect("runs array");
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(
        driver.get("name").and_then(Json::as_str),
        Some("swift-analysis")
    );
    let rule_ids: Vec<&str> = driver
        .get("rules")
        .and_then(Json::as_array)
        .expect("driver.rules")
        .iter()
        .filter_map(|r| r.get("id").and_then(Json::as_str))
        .collect();
    assert!(rule_ids.contains(&"protocol") && rule_ids.contains(&"atomic-ordering"));
    let results = runs[0]
        .get("results")
        .and_then(Json::as_array)
        .expect("results array");
    assert_eq!(results.len(), 2);
    for r in results {
        assert!(r.get("ruleId").and_then(Json::as_str).is_some());
        assert!(r
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .is_some());
        let region = r
            .get("locations")
            .and_then(Json::as_array)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .expect("physicalLocation.region");
        let start = region
            .get("startLine")
            .and_then(Json::as_u64)
            .expect("startLine");
        assert!(start >= 1, "SARIF regions are 1-based, got {start}");
    }
}

/// End-to-end exit codes through the real binary: 0 on the clean workspace,
/// 1 on a synthetic workspace with a violation, 2 on usage errors.
#[test]
fn cli_exit_codes_gate_correctly() {
    let bin = env!("CARGO_BIN_EXE_swift-analysis");
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let scratch = std::env::temp_dir().join(format!("swift-analysis-test-{}", std::process::id()));

    let clean = std::process::Command::new(bin)
        .args(["check", "--sarif", "--budget-ms", "10000", "--root"])
        .arg(&root)
        .arg("--out-dir")
        .arg(scratch.join("artifacts"))
        .output()
        .expect("binary runs");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    for artifact in [
        "topology.dot",
        "topology.json",
        "protocol.dot",
        "protocol.json",
        "atomics.json",
        "findings.json",
        "findings.sarif",
    ] {
        assert!(
            scratch.join("artifacts").join(artifact).is_file(),
            "missing artifact {artifact}"
        );
    }

    // An impossible budget turns the otherwise-clean run into exit 1 with a
    // `budget` finding on the JSON stream.
    let over_budget = std::process::Command::new(bin)
        .args(["check", "--json", "--budget-ms", "0", "--root"])
        .arg(&root)
        .arg("--out-dir")
        .arg(scratch.join("budget-artifacts"))
        .output()
        .expect("binary runs");
    assert_eq!(over_budget.status.code(), Some(1));
    let json = String::from_utf8_lossy(&over_budget.stdout);
    assert!(json.contains("\"rule\": \"budget\""), "{json}");

    // A synthetic workspace with one violation must exit 1 and report it on
    // the JSON stream.
    let dirty = scratch.join("dirty");
    std::fs::create_dir_all(dirty.join("crates/x/src")).expect("mkdir");
    std::fs::write(dirty.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(
        dirty.join("crates/x/src/lib.rs"),
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    )
    .expect("source");
    let violating = std::process::Command::new(bin)
        .args(["check", "--json", "--root"])
        .arg(&dirty)
        .arg("--out-dir")
        .arg(scratch.join("dirty-artifacts"))
        .output()
        .expect("binary runs");
    assert_eq!(violating.status.code(), Some(1));
    let json = String::from_utf8_lossy(&violating.stdout);
    assert!(json.contains("\"rule\": \"unwrap\""), "{json}");

    let usage = std::process::Command::new(bin)
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(usage.status.code(), Some(2));

    std::fs::remove_dir_all(&scratch).ok();
}

/// The self-check the CI leg gates on: the real workspace is clean under
/// every rule, and the extracted topology matches the runtime's documented
/// shape (producer/coordinator/shard/applier over two bounded data paths
/// and two unbounded control channels, both graphs acyclic).
#[test]
fn workspace_is_clean_and_topology_matches_the_design() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let ws = Workspace::load(&root).expect("workspace loads");
    assert!(
        ws.files.len() >= 50,
        "sanity: the scan actually covered the tree ({} files)",
        ws.files.len()
    );

    let mut findings: Vec<Finding> = Vec::new();
    for file in &ws.files {
        findings.extend(rules::check_file(file));
    }
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean: {findings:#?}"
    );

    let report = topology::check(&ws);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert!(
        report.blocking_cycle.is_none(),
        "{:?}",
        report.blocking_cycle
    );
    assert!(report.lock_cycle.is_none(), "{:?}", report.lock_cycle);

    let nodes: Vec<&str> = report
        .topology
        .nodes
        .iter()
        .map(|n| n.name.as_str())
        .collect();
    for expected in ["producer", "coordinator", "swift-shard", "swift-applier"] {
        assert!(
            nodes.contains(&expected),
            "missing node {expected}: {nodes:?}"
        );
    }
    for c in &report.topology.channels {
        assert_eq!(
            c.bounded, !c.control,
            "data paths bounded, control channels unbounded: {c:?}"
        );
    }
    let keys: Vec<&str> = report
        .topology
        .channels
        .iter()
        .map(|c| c.key.as_str())
        .collect();
    for expected in ["ShardMsg", "ApplierMsg", "barrier", "reply"] {
        assert!(
            keys.contains(&expected),
            "missing channel {expected}: {keys:?}"
        );
    }
    // Every data-path send out of a producer/shard is attributed: the
    // shard -> applier hop exists and is blocking (Block backpressure).
    assert!(
        report
            .topology
            .sends
            .iter()
            .any(|s| s.node == "swift-shard" && s.channel == "ApplierMsg" && s.blocking),
        "{:#?}",
        report.topology.sends
    );
    // The DOT artifact renders every node.
    let dot = topology::to_dot(&report.topology);
    for expected in ["producer", "swift-shard", "swift-applier", "coordinator"] {
        assert!(dot.contains(expected), "DOT missing {expected}:\n{dot}");
    }

    // Layer 2: the runtime's message protocol matches the declared spec
    // exactly — every transition is both sent and handled somewhere.
    let proto = protocol::check(&ws);
    assert!(proto.findings.is_empty(), "{:#?}", proto.findings);
    assert_eq!(
        proto.automaton.len(),
        2,
        "ShardMsg and ApplierMsg: {:?}",
        proto.automaton.iter().map(|c| &c.name).collect::<Vec<_>>()
    );
    for (chan, msgs) in [("ShardMsg", 5), ("ApplierMsg", 6)] {
        let c = proto
            .automaton
            .iter()
            .find(|c| c.name == chan)
            .unwrap_or_else(|| panic!("channel {chan} missing from the automaton"));
        assert_eq!(c.transitions.len(), msgs, "{chan} transition count");
        for t in &c.transitions {
            assert!(
                t.sends >= 1 && t.recv_arms >= 1,
                "{chan}::{} declared but never observed (sends={}, recv_arms={}) — \
                 the automaton must be non-vacuous",
                t.msg.name,
                t.sends,
                t.recv_arms
            );
        }
    }

    // Layer 3: every atomic site classifies into a role and every flag
    // group proves its synchronization; the shutdown handshake pair in
    // particular is Release/Acquire-paired.
    let atoms = atomics::check(&ws);
    assert!(atoms.findings.is_empty(), "{:#?}", atoms.findings);
    assert!(
        atoms.sites.len() >= 15,
        "sanity: the audit actually covered the runtime ({} sites)",
        atoms.sites.len()
    );
    assert!(
        atoms.groups.iter().all(|g| g.role != "unclassified"),
        "{:#?}",
        atoms.groups
    );
    let shutdown = atoms.group("shutdown").expect("shutdown flag audited");
    assert_eq!(
        (shutdown.role, shutdown.verdict),
        ("flag", "release-acquire"),
        "the shutdown handshake must stay Release/Acquire-paired"
    );
}
