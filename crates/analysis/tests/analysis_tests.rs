//! Fixture tests for every lint rule and both topology checks, plus the
//! workspace self-check: the real tree must be clean and its extracted
//! topology must match the runtime's documented shape.
//!
//! The fixtures live under `tests/fixtures/` (a subdirectory, so cargo does
//! not compile them as test targets — several contain deliberate
//! violations). Each is checked under a synthetic workspace-relative path
//! that puts it in the right rule scope.

use std::path::{Path, PathBuf};
use swift_analysis::{rules, topology, Finding, SourceFile, Workspace};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Runs the lint rules over a fixture as if it sat at `rel` in the tree.
fn check_as(rel: &str, name: &str) -> Vec<Finding> {
    rules::check_file(&SourceFile::parse(rel, &fixture(name)))
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn instant_now_fires_once_on_the_hot_path() {
    let findings = check_as("crates/runtime/src/worker.rs", "instant_now.rs");
    assert_eq!(
        count(&findings, "instant-now"),
        1,
        "exactly the VIOLATION line: literals, comments, allowlisted fns, \
         pragma'd and test code must not fire: {findings:?}"
    );
    assert_eq!(findings.len(), 1, "no other rule fires: {findings:?}");
    assert!(findings[0].message.contains("EpochClock"));
}

#[test]
fn instant_now_is_out_of_scope_off_the_hot_path() {
    let findings = check_as("crates/traces/src/fixture.rs", "instant_now.rs");
    assert_eq!(count(&findings, "instant-now"), 0);
}

#[test]
fn unwrap_fires_on_bare_and_reasonless_pragma_sites() {
    let findings = check_as("crates/traces/src/fixture.rs", "unwrap.rs");
    assert_eq!(
        count(&findings, "unwrap"),
        2,
        "the bare site and the site under a reasonless pragma: {findings:?}"
    );
    assert_eq!(
        count(&findings, "pragma"),
        1,
        "the reasonless pragma is itself flagged: {findings:?}"
    );
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn unwrap_is_out_of_scope_in_bench_code() {
    let findings = check_as("crates/bench/src/bin/fixture.rs", "unwrap.rs");
    assert_eq!(count(&findings, "unwrap"), 0);
}

#[test]
fn unbounded_channel_fires_once_even_with_turbofish() {
    let findings = check_as("crates/runtime/src/lib.rs", "unbounded.rs");
    assert_eq!(
        count(&findings, "unbounded-channel"),
        1,
        "control bindings, sync_channel, pragma'd and test code must not \
         fire: {findings:?}"
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn thread_spawn_fires_on_path_and_builder_forms() {
    let findings = check_as("crates/traces/src/fixture.rs", "thread_spawn.rs");
    assert_eq!(count(&findings, "thread-spawn"), 2, "{findings:?}");
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn thread_spawn_is_in_scope_only_outside_runtime_and_bench() {
    for rel in [
        "crates/runtime/src/lib.rs",
        "crates/bench/src/bin/fixture.rs",
    ] {
        let findings = check_as(rel, "thread_spawn.rs");
        assert_eq!(count(&findings, "thread-spawn"), 0, "{rel}");
    }
}

#[test]
fn lifecycle_send_fires_only_on_lifecycle_payloads() {
    let findings = check_as("crates/runtime/src/worker.rs", "lifecycle_send.rs");
    assert_eq!(
        count(&findings, "lifecycle-send"),
        1,
        "shedding data batches and blocking lifecycle sends are fine: {findings:?}"
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn bare_applier_fires_in_bench_code_only() {
    let findings = check_as("crates/bench/src/bin/fixture.rs", "bare_applier.rs");
    assert_eq!(count(&findings, "bare-applier"), 1, "{findings:?}");
    assert!(findings[0].message.contains("try_applier"));
    let elsewhere = check_as("crates/runtime/src/lib.rs", "bare_applier.rs");
    assert_eq!(count(&elsewhere, "bare-applier"), 0);
}

#[test]
fn pragma_rule_flags_malformed_unknown_and_reasonless() {
    let findings = check_as("crates/core/src/fixture.rs", "pragmas.rs");
    assert_eq!(count(&findings, "pragma"), 3, "{findings:?}");
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn topology_detects_a_blocking_send_cycle() {
    let f = SourceFile::parse(
        "crates/runtime/src/lib.rs",
        &fixture("topology_blocking_cycle.rs"),
    );
    let report = topology::check_files(&[&f], &[&f]);
    let cycle = report
        .blocking_cycle
        .expect("bounded ack channel closes a coordinator <-> worker cycle");
    assert!(
        cycle.contains(&"coordinator".to_string()) && cycle.contains(&"swift-worker".to_string()),
        "cycle names both nodes: {cycle:?}"
    );
    assert!(report.lock_cycle.is_none());
}

#[test]
fn topology_accepts_the_unbounded_ack_shape() {
    let f = SourceFile::parse("crates/runtime/src/lib.rs", &fixture("topology_ok.rs"));
    let report = topology::check_files(&[&f], &[&f]);
    assert!(
        report.blocking_cycle.is_none(),
        "{:?}",
        report.blocking_cycle
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let keys: Vec<&str> = report
        .topology
        .channels
        .iter()
        .map(|c| c.key.as_str())
        .collect();
    assert!(
        keys.contains(&"ShardMsg") && keys.contains(&"barrier"),
        "{keys:?}"
    );
}

#[test]
fn topology_detects_a_lock_order_cycle() {
    let f = SourceFile::parse(
        "crates/core/src/tables.rs",
        &fixture("topology_lock_cycle.rs"),
    );
    let report = topology::check_files(&[], &[&f]);
    let cycle = report
        .lock_cycle
        .expect("opposite acquisition orders cycle");
    assert!(
        cycle.contains(&"routing".to_string()) && cycle.contains(&"forwarding".to_string()),
        "{cycle:?}"
    );
}

/// End-to-end exit codes through the real binary: 0 on the clean workspace,
/// 1 on a synthetic workspace with a violation, 2 on usage errors.
#[test]
fn cli_exit_codes_gate_correctly() {
    let bin = env!("CARGO_BIN_EXE_swift-analysis");
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let scratch = std::env::temp_dir().join(format!("swift-analysis-test-{}", std::process::id()));

    let clean = std::process::Command::new(bin)
        .args(["check", "--root"])
        .arg(&root)
        .arg("--out-dir")
        .arg(scratch.join("artifacts"))
        .output()
        .expect("binary runs");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    assert!(scratch.join("artifacts/topology.dot").is_file());
    assert!(scratch.join("artifacts/topology.json").is_file());
    assert!(scratch.join("artifacts/findings.json").is_file());

    // A synthetic workspace with one violation must exit 1 and report it on
    // the JSON stream.
    let dirty = scratch.join("dirty");
    std::fs::create_dir_all(dirty.join("crates/x/src")).expect("mkdir");
    std::fs::write(dirty.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(
        dirty.join("crates/x/src/lib.rs"),
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    )
    .expect("source");
    let violating = std::process::Command::new(bin)
        .args(["check", "--json", "--root"])
        .arg(&dirty)
        .arg("--out-dir")
        .arg(scratch.join("dirty-artifacts"))
        .output()
        .expect("binary runs");
    assert_eq!(violating.status.code(), Some(1));
    let json = String::from_utf8_lossy(&violating.stdout);
    assert!(json.contains("\"rule\": \"unwrap\""), "{json}");

    let usage = std::process::Command::new(bin)
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(usage.status.code(), Some(2));

    std::fs::remove_dir_all(&scratch).ok();
}

/// The self-check the CI leg gates on: the real workspace is clean under
/// every rule, and the extracted topology matches the runtime's documented
/// shape (producer/coordinator/shard/applier over two bounded data paths
/// and two unbounded control channels, both graphs acyclic).
#[test]
fn workspace_is_clean_and_topology_matches_the_design() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let ws = Workspace::load(&root).expect("workspace loads");
    assert!(
        ws.files.len() >= 50,
        "sanity: the scan actually covered the tree ({} files)",
        ws.files.len()
    );

    let mut findings: Vec<Finding> = Vec::new();
    for file in &ws.files {
        findings.extend(rules::check_file(file));
    }
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean: {findings:#?}"
    );

    let report = topology::check(&ws);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert!(
        report.blocking_cycle.is_none(),
        "{:?}",
        report.blocking_cycle
    );
    assert!(report.lock_cycle.is_none(), "{:?}", report.lock_cycle);

    let nodes: Vec<&str> = report
        .topology
        .nodes
        .iter()
        .map(|n| n.name.as_str())
        .collect();
    for expected in ["producer", "coordinator", "swift-shard", "swift-applier"] {
        assert!(
            nodes.contains(&expected),
            "missing node {expected}: {nodes:?}"
        );
    }
    for c in &report.topology.channels {
        assert_eq!(
            c.bounded, !c.control,
            "data paths bounded, control channels unbounded: {c:?}"
        );
    }
    let keys: Vec<&str> = report
        .topology
        .channels
        .iter()
        .map(|c| c.key.as_str())
        .collect();
    for expected in ["ShardMsg", "ApplierMsg", "barrier", "reply"] {
        assert!(
            keys.contains(&expected),
            "missing channel {expected}: {keys:?}"
        );
    }
    // Every data-path send out of a producer/shard is attributed: the
    // shard -> applier hop exists and is blocking (Block backpressure).
    assert!(
        report
            .topology
            .sends
            .iter()
            .any(|s| s.node == "swift-shard" && s.channel == "ApplierMsg" && s.blocking),
        "{:#?}",
        report.topology.sends
    );
    // The DOT artifact renders every node.
    let dot = topology::to_dot(&report.topology);
    for expected in ["producer", "swift-shard", "swift-applier", "coordinator"] {
        assert!(dot.contains(expected), "DOT missing {expected}:\n{dot}");
    }
}
