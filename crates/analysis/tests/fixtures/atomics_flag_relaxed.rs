//! Fixture: a handshake flag (`AtomicBool`, store+load across functions)
//! kept fully `Relaxed` with no channel edge between the threads and no
//! pragma — the mis-roled-Relaxed case. The auditor must classify the
//! group as `flag`, give it the `unsound` verdict and flag both sites.

struct Shared {
    shutdown: AtomicBool,
}

fn publisher(s: &Shared) {
    // VIOLATION: the write side of a flag must be Release.
    s.shutdown.store(true, Ordering::Relaxed);
}

fn observer(s: &Shared) -> bool {
    // VIOLATION: the read side of a flag must be Acquire.
    s.shutdown.load(Ordering::Relaxed)
}
