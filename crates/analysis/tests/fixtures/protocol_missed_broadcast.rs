//! Fixture: `Barrier` is declared `broadcast=shard_txs`, but `flush` sends
//! it to `shard_txs[0]` only — the other shards never hear the barrier and
//! the ack quorum silently hangs. Checked against the mini ShardMsg spec in
//! the test; exactly one missed-broadcast finding must fire.

enum ShardMsg {
    Batch(u64),
    Barrier(u64),
    Shutdown,
}

fn feed(shard_txs: &[SyncSender<ShardMsg>], b: u64) {
    shard_txs[0].send(ShardMsg::Batch(b)).expect("batch");
}

fn flush(shard_txs: &[SyncSender<ShardMsg>], seq: u64) {
    // VIOLATION: only the first shard hears the barrier.
    shard_txs[0].send(ShardMsg::Barrier(seq)).expect("barrier");
}

fn stop(shard_txs: &[SyncSender<ShardMsg>]) {
    for tx in shard_txs.iter() {
        let _ = tx.send(ShardMsg::Shutdown);
    }
}

fn shard_loop(rx: Receiver<ShardMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(b) => apply(b),
            ShardMsg::Barrier(seq) => ack(seq),
            ShardMsg::Shutdown => break,
        }
    }
}
