// Fixture for the topology checker's happy path: the same shape as
// `topology_blocking_cycle.rs` but with the ack flowing on an *unbounded*
// control channel — the blocking-send graph is a DAG and every channel has
// a sender and a receiver.

use std::sync::mpsc;
use std::thread;

enum ShardMsg {
    Batch(u64),
}

fn worker_loop(rx: mpsc::Receiver<ShardMsg>, barrier_tx: mpsc::Sender<u64>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(seq) => {
                barrier_tx.send(seq).expect("coordinator alive");
            }
        }
    }
}

fn build() {
    let queue_capacity = 4usize;
    let (tx, rx) = mpsc::sync_channel(queue_capacity);
    let (barrier_tx, barrier_rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name("swift-worker".to_string())
        .spawn(move || worker_loop(rx, barrier_tx))
        .expect("spawn");
    tx.send(ShardMsg::Batch(1)).expect("worker alive");
    let _ = barrier_rx.recv().expect("ack");
    drop(handle);
}
