// Fixture for the topology checker's blocking-send cycle detection,
// written in the runtime's idioms (checked as if it were
// `crates/runtime/src/lib.rs`). The coordinator blocking-sends data to the
// worker, and the worker acks on a *bounded* barrier channel — the ack can
// block, closing a coordinator -> swift-worker -> coordinator cycle.

use std::sync::mpsc;
use std::thread;

enum ShardMsg {
    Batch(u64),
}

fn worker_loop(rx: mpsc::Receiver<ShardMsg>, barrier_tx: mpsc::SyncSender<u64>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(seq) => {
                barrier_tx.send(seq).expect("coordinator alive");
            }
        }
    }
}

fn build() {
    let queue_capacity = 4usize;
    let (tx, rx) = mpsc::sync_channel(queue_capacity);
    // BUG under test: a bounded ack channel makes the ack a blocking send.
    let (barrier_tx, barrier_rx) = mpsc::sync_channel(1);
    let handle = thread::Builder::new()
        .name("swift-worker".to_string())
        .spawn(move || worker_loop(rx, barrier_tx))
        .expect("spawn");
    tx.send(ShardMsg::Batch(1)).expect("worker alive");
    let _ = barrier_rx.recv().expect("ack");
    drop(handle);
}
