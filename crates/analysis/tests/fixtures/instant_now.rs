// Fixture for the `instant-now` rule. Checked as if it were
// `crates/runtime/src/worker.rs` (a hot-path file). Expected findings:
// exactly ONE, on the line marked VIOLATION.

use std::time::Instant;

fn hot_path_stamp() {
    let t = Instant::now(); // VIOLATION: per-event clock read on the hot path
    drop(t);
}

fn string_literal_is_fine() {
    let s = "Instant::now() inside a string literal never fires";
    let r = r#"Instant::now() inside a raw string never fires"#;
    drop((s, r));
}

// Instant::now() inside a comment never fires.
/* Instant::now() inside a block comment never fires. */

fn new() -> Instant {
    // Allowlisted function name: constructors may read the clock.
    Instant::now()
}

fn shard_loop() {
    // Allowlisted: the consumer-side loop's per-batch measurements.
    let t0 = Instant::now();
    drop(t0);
}

fn justified() {
    // swift-lint: allow(instant-now) -- one-time stamp behind a OnceLock, not per-event
    let t = Instant::now();
    drop(t);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_read_the_clock() {
        let t = Instant::now();
        drop(t);
    }
}
