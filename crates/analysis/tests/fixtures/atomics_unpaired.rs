//! Fixture: a store/load pair classified as a flag (non-bool, but written
//! on one side and read on the other) where the store was upgraded to
//! `Release` but the load stayed `Relaxed` — the unpaired half. The
//! auditor must flag exactly the load.

struct Shared {
    epoch: AtomicU32,
}

fn publisher(s: &Shared) {
    s.epoch.store(7, Ordering::Release);
}

fn observer(s: &Shared) -> u32 {
    // VIOLATION: a Release store publishes nothing to a Relaxed load.
    s.epoch.load(Ordering::Relaxed)
}
