//! Fixture: the shard loop matches `ShardMsg` with a wildcard `_` arm —
//! the next protocol variant added would be silently swallowed here
//! instead of forcing this match to take a position. Checked against the
//! mini ShardMsg spec in the test; one `protocol-wildcard` finding must
//! fire on the `_` arm, plus a `protocol` finding for the uncovered
//! `Barrier` variant.

enum ShardMsg {
    Batch(u64),
    Barrier(u64),
    Shutdown,
}

fn feed(shard_txs: &[SyncSender<ShardMsg>], b: u64) {
    shard_txs[0].send(ShardMsg::Batch(b)).expect("batch");
}

fn flush(shard_txs: &[SyncSender<ShardMsg>], seq: u64) {
    for tx in shard_txs.iter() {
        tx.send(ShardMsg::Barrier(seq)).expect("barrier broadcast");
    }
}

fn stop(shard_txs: &[SyncSender<ShardMsg>]) {
    for tx in shard_txs.iter() {
        let _ = tx.send(ShardMsg::Shutdown);
    }
}

fn shard_loop(rx: Receiver<ShardMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(b) => apply(b),
            ShardMsg::Shutdown => break,
            // VIOLATION: Barrier (and every future variant) is dropped here.
            _ => {}
        }
    }
}
