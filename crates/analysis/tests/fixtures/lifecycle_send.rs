// Fixture for the `lifecycle-send` rule. Checked as if it were
// `crates/runtime/src/worker.rs`. Expected findings: exactly ONE, on the
// line marked VIOLATION — lifecycle/barrier messages are never shed.

use std::sync::mpsc::SyncSender;

enum ShardMsg {
    Batch(Vec<u64>),
    Barrier(u64),
}

fn shed_lifecycle(tx: &SyncSender<ShardMsg>) {
    let _ = tx.try_send(ShardMsg::Barrier(7)); // VIOLATION: barrier shed under pressure
}

fn shedding_data_is_fine(tx: &SyncSender<ShardMsg>) {
    // DropNewest sheds *data* batches only — that is the policy's contract.
    let _ = tx.try_send(ShardMsg::Batch(vec![1, 2, 3]));
}

fn blocking_lifecycle_is_fine(tx: &SyncSender<ShardMsg>) {
    tx.send(ShardMsg::Barrier(8)).expect("worker alive");
}

fn justified(tx: &SyncSender<ShardMsg>) {
    // swift-lint: allow(lifecycle-send) -- fixture: probe for a full queue; the caller re-sends blocking on Err
    let _ = tx.try_send(ShardMsg::Barrier(9));
}
