//! Fixture: a condensed runtime whose `ShardMsg`/`ApplierMsg` traffic
//! matches `crates/analysis/protocol/runtime.protocol` exactly — every
//! message sent, every broadcast looped over its fan-out collection, the
//! barrier acked exactly once behind the worker quorum, the resync replied
//! exactly once, both matches exhaustive. The protocol verifier must report
//! zero findings here.

enum ShardMsg {
    Batch(u64),
    Register(u32),
    Teardown(u32),
    Barrier(u64),
    Shutdown,
}

enum ApplierMsg {
    Batch(u64),
    Register { peer: u32 },
    Teardown(u32),
    Barrier(u64),
    Resync(Sender<usize>),
    ShardDone,
}

struct Link {
    tx: SyncSender<ApplierMsg>,
}

fn dispatch(shard_txs: &[SyncSender<ShardMsg>], b: u64, peer: u32) {
    shard_txs[0].send(ShardMsg::Batch(b)).expect("batch");
    shard_txs[0].send(ShardMsg::Register(peer)).expect("register");
    shard_txs[0].send(ShardMsg::Teardown(peer)).expect("teardown");
}

fn flush(shard_txs: &[SyncSender<ShardMsg>], seq: u64) {
    for tx in shard_txs.iter() {
        tx.send(ShardMsg::Barrier(seq)).expect("barrier broadcast");
    }
}

fn resync(applier_txs: &[Sender<ApplierMsg>]) -> usize {
    let (reply_tx, reply_rx) = mpsc::channel();
    for tx in applier_txs.iter() {
        tx.send(ApplierMsg::Resync(reply_tx.clone())).expect("resync broadcast");
    }
    drop(reply_tx);
    let mut removed = 0usize;
    while let Ok(n) = reply_rx.recv() {
        removed += n;
    }
    removed
}

fn stop(shard_txs: &[SyncSender<ShardMsg>]) {
    for tx in shard_txs.iter() {
        let _ = tx.send(ShardMsg::Shutdown);
    }
}

fn shard_loop(rx: Receiver<ShardMsg>, appliers: Vec<Link>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(b) => {
                for link in appliers.iter() {
                    link.tx.send(ApplierMsg::Batch(b)).expect("applier batch");
                }
            }
            ShardMsg::Register(peer) => {
                for link in appliers.iter() {
                    link.tx.send(ApplierMsg::Register { peer }).expect("applier register");
                }
            }
            ShardMsg::Teardown(peer) => {
                for link in appliers.iter() {
                    link.tx.send(ApplierMsg::Teardown(peer)).expect("applier teardown");
                }
            }
            ShardMsg::Barrier(seq) => {
                for link in appliers.iter() {
                    link.tx.send(ApplierMsg::Barrier(seq)).expect("applier barrier");
                }
            }
            ShardMsg::Shutdown => break,
        }
    }
    for link in appliers.iter() {
        let _ = link.tx.send(ApplierMsg::ShardDone);
    }
}

fn applier_loop(
    rx: Receiver<ApplierMsg>,
    barrier_tx: Sender<(usize, u64)>,
    idx: usize,
    workers: usize,
) {
    let mut done = 0usize;
    let mut acks = 0usize;
    let mut removed = 0usize;
    while done < workers {
        let msg = rx.recv().expect("applier channel live while workers remain");
        match msg {
            ApplierMsg::Batch(b) => {
                apply(b);
            }
            ApplierMsg::Register { peer } => {
                removed += register(peer);
            }
            ApplierMsg::Teardown(peer) => {
                teardown(peer);
            }
            ApplierMsg::Barrier(seq) => {
                acks += 1;
                if acks == workers {
                    acks = 0;
                    let _ = barrier_tx.send((idx, seq));
                }
            }
            ApplierMsg::Resync(reply) => {
                let _ = reply.send(removed);
            }
            ApplierMsg::ShardDone => done += 1,
        }
    }
}
