// Fixture for the `unbounded-channel` rule. Checked as if it were
// `crates/runtime/src/lib.rs`. Expected findings: exactly ONE, on the line
// marked VIOLATION.

use std::sync::mpsc;

fn data_path_must_be_bounded() {
    let (tx, rx) = mpsc::channel::<u64>(); // VIOLATION: unbounded data path
    drop((tx, rx));
}

fn bounded_data_path_is_fine() {
    let (tx, rx) = mpsc::sync_channel::<u64>(128);
    drop((tx, rx));
}

fn control_channels_may_be_unbounded() {
    let (reply_tx, reply_rx) = mpsc::channel::<u64>();
    let (barrier_tx, barrier_rx) = mpsc::channel::<(usize, u64)>();
    drop((reply_tx, reply_rx, barrier_tx, barrier_rx));
}

fn justified() {
    // swift-lint: allow(unbounded-channel) -- fixture: drained synchronously before the sender can enqueue twice
    let (tx, rx) = mpsc::channel::<u64>();
    drop((tx, rx));
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc;

    #[test]
    fn tests_may_use_unbounded_channels() {
        let (tx, rx) = mpsc::channel::<u64>();
        drop((tx, rx));
    }
}
