// Fixture for the lock-order cycle detection: `one_then_two` and
// `two_then_one` take the same pair of mutexes in opposite orders — two
// threads running them concurrently can deadlock.

use std::sync::Mutex;

struct Tables {
    routing: Mutex<Vec<u64>>,
    forwarding: Mutex<Vec<u64>>,
}

fn one_then_two(t: &Tables) {
    let routing = t.routing.lock().expect("unpoisoned");
    let forwarding = t.forwarding.lock().expect("unpoisoned");
    drop((routing, forwarding));
}

fn two_then_one(t: &Tables) {
    let forwarding = t.forwarding.lock().expect("unpoisoned");
    let routing = t.routing.lock().expect("unpoisoned");
    drop((routing, forwarding));
}
