// Fixture for the `thread-spawn` rule. Checked as if it were a
// non-runtime, non-bench library file. Expected findings: exactly TWO (the
// path-call and the builder-method VIOLATION lines).

use std::thread;

fn path_spawn() {
    let h = thread::spawn(|| 1 + 1); // VIOLATION: thread spawn outside runtime/bench
    drop(h);
}

fn builder_spawn() {
    let h = thread::Builder::new()
        .name("rogue".into())
        .spawn(|| 2 + 2); // VIOLATION: builder spawn outside runtime/bench
    drop(h);
}

fn justified() {
    // swift-lint: allow(thread-spawn) -- fixture: scoped helper joined before return
    let h = thread::spawn(|| 3 + 3);
    drop(h);
}

#[cfg(test)]
mod tests {
    use std::thread;

    #[test]
    fn tests_may_spawn() {
        thread::spawn(|| ()).join().expect("joins");
    }
}
