//! Fixture: `Shutdown` is terminal, but `stop` pushes one more data batch
//! after broadcasting it — the receiver is past its final state and the
//! send either errors or is silently dropped. Checked against the mini
//! ShardMsg spec in the test; exactly one terminal-ordering finding must
//! fire (on the late `Batch`, not on the `Shutdown`).

enum ShardMsg {
    Batch(u64),
    Barrier(u64),
    Shutdown,
}

fn feed(shard_txs: &[SyncSender<ShardMsg>], b: u64) {
    shard_txs[0].send(ShardMsg::Batch(b)).expect("batch");
}

fn flush(shard_txs: &[SyncSender<ShardMsg>], seq: u64) {
    for tx in shard_txs.iter() {
        tx.send(ShardMsg::Barrier(seq)).expect("barrier broadcast");
    }
}

fn stop(shard_txs: &[SyncSender<ShardMsg>]) {
    for tx in shard_txs.iter() {
        let _ = tx.send(ShardMsg::Shutdown);
    }
    // VIOLATION: data after the terminal message.
    shard_txs[0].send(ShardMsg::Batch(0)).expect("late batch");
}

fn shard_loop(rx: Receiver<ShardMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(b) => apply(b),
            ShardMsg::Barrier(seq) => ack(seq),
            ShardMsg::Shutdown => break,
        }
    }
}
