// Fixture for the `pragma` rule. Expected findings: exactly THREE `pragma`
// findings — a malformed pragma, an unknown rule, and a missing reason.

fn malformed() {
    // swift-lint: permit everything please
}

fn unknown_rule() {
    // swift-lint: allow(no-such-rule) -- confidently wrong
}

fn missing_reason() {
    // swift-lint: allow(unwrap)
}

fn well_formed() {
    // swift-lint: allow(unwrap) -- this one is fine and produces no finding
}
