// Fixture for the `unwrap` rule. Checked as if it were a library crate's
// `src/` file. Expected findings: ONE `unwrap` (the VIOLATION line) and ONE
// `pragma` (the allow without a reason suppresses nothing and is itself
// flagged — so its bare unwrap also fires: TWO `unwrap` findings total).

fn bare() -> u32 {
    let v: Option<u32> = Some(1);
    v.unwrap() // VIOLATION: bare unwrap in library code
}

fn named_invariant() -> u32 {
    let v: Option<u32> = Some(1);
    v.expect("seeded one line up")
}

fn unwrap_or_is_fine() -> u32 {
    let v: Option<u32> = None;
    v.unwrap_or(7) + v.unwrap_or_default() + v.unwrap_or_else(|| 9)
}

fn justified() -> u32 {
    let v: Option<u32> = Some(1);
    // swift-lint: allow(unwrap) -- fixture: invariant guaranteed by construction above
    v.unwrap()
}

fn reasonless_pragma_does_not_suppress() -> u32 {
    let v: Option<u32> = Some(1);
    // swift-lint: allow(unwrap)
    v.unwrap() // still a VIOLATION: the pragma above carries no reason
}

// "a .unwrap() in a string is fine" — and in this comment too.
fn in_string() -> &'static str {
    "x.unwrap()"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
