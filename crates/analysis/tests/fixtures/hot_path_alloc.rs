// Fixture for the `hot-path-alloc` rule. Checked twice: as
// `crates/core/src/inference/kernels.rs`, where every non-constructor
// function body is policed (expected findings: the four VIOLATION lines),
// and as `crates/core/src/inference/fit_score.rs`, where only the hot
// scoring functions are (expected findings: the two in `score_link_set`).

fn score_link_set() {
    let w: Vec<u32> = Vec::new(); // VIOLATION: per-call Vec on the scoring path
    let p = IdBitSet::new(); // VIOLATION: per-call bitset on the scoring path
    drop((w, p));
}

fn block_wp() {
    let buf = vec![0u64; 4]; // VIOLATION in kernels.rs only (not a listed hot fn)
    drop(buf);
}

fn helper_off_hot_list() {
    let v: Vec<u32> = Vec::new(); // VIOLATION in kernels.rs only
    drop(v);
}

fn new() -> Vec<u32> {
    // Constructor-family names may allocate: this is where capacity is born.
    Vec::new()
}

fn with_capacity() {
    let s = Vec::new(); // also constructor-family, never fires
    drop(s);
}

fn union_counts() {
    // swift-lint: allow(hot-path-alloc) -- scan-reference fallback, not the fused kernel
    let set = IdBitSet::new();
    drop(set);
}

fn string_literal_is_fine() {
    let s = "Vec::new() inside a string literal never fires";
    let r = r#"vec![IdBitSet::new()] inside a raw string never fires"#;
    drop((s, r));
}

// Vec::new() inside a comment never fires.
/* vec![0u8; 8] inside a block comment never fires. */

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate() {
        let v: Vec<u32> = Vec::new();
        let b = vec![1u32, 2, 3];
        drop((v, b));
    }
}
