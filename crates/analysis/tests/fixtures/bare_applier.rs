// Fixture for the `bare-applier` rule. Checked as if it were a
// `crates/bench/` harness. Expected findings: exactly ONE, on the line
// marked VIOLATION — `RuntimeReport::applier()` panics at K >= 2 shards.

fn panicking_accessor(report: &RuntimeReport) -> usize {
    report.applier().pending_events() // VIOLATION: panics when applier_shards >= 2
}

fn branching_is_fine(report: &RuntimeReport) -> usize {
    match report.try_applier() {
        Some(applier) => applier.pending_events(),
        None => report.pending_events(),
    }
}

fn aggregates_are_fine(report: &RuntimeReport) -> usize {
    report.swift_rule_count() + report.pending_events()
}

fn justified(report: &RuntimeReport) -> usize {
    // swift-lint: allow(bare-applier) -- fixture: this harness pins applier_shards = 1 in its config
    report.applier().pending_events()
}
