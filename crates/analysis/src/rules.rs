//! The lint engine: repo-specific rules over the lexed token streams.
//!
//! Every rule reports rustc-style findings (`path:line: rule: message`) and
//! honours the pragma syntax
//!
//! ```text
//! // swift-lint: allow(<rule>) -- <reason>
//! ```
//!
//! on the pragma's own line or the line directly below it. A pragma without
//! a `-- reason` suppresses nothing and is itself flagged, so every
//! exemption in the tree carries its justification.
//!
//! | key | invariant enforced |
//! |-----|--------------------|
//! | `instant-now` | PR 5's epoch-clock discipline: no `Instant::now()` on the per-event ingest/worker hot paths outside the allowlist |
//! | `unwrap` | no bare `.unwrap()` in non-test library code — use `.expect("<invariant>")` |
//! | `unbounded-channel` | `mpsc::channel()` (unbounded) only for reply/barrier control channels; data paths use `sync_channel` |
//! | `thread-spawn` | threads are spawned only by `swift-runtime` and the bench harnesses |
//! | `lifecycle-send` | lifecycle/barrier messages are never shed: no `try_send` of `Register`/`Teardown`/`Barrier`/`Resync`/`Shutdown`/`ShardDone` |
//! | `bare-applier` | bench/harness code branches on `try_applier()` instead of the K≥2-panicking `RuntimeReport::applier()` |
//! | `hot-path-alloc` | the fused-kernel scoring hot path stays allocation-free: no `Vec::new()` / `IdBitSet::new()` / `vec![...]` in kernel bodies or the hot scoring functions — capacity lives in the engine-owned `ScoreScratch` |
//! | `pragma` | every `swift-lint` pragma is well-formed, names a known rule and carries a reason |
//! | `protocol` | the `ShardMsg`/`ApplierMsg` traffic matches the declared automaton: broadcasts loop over the fan-out collection, nothing follows a terminal message, acks/replies are exactly-once, quorums are gated (see [`crate::protocol`]) |
//! | `protocol-wildcard` | no `_` arm on a protocol enum match — new variants must not be silently droppable (see [`crate::protocol`]) |
//! | `atomic-ordering` | every atomic op classifies into a role and handshake flags are Release/Acquire-paired, channel-edge-proven or pragma'd (see [`crate::atomics`]) |
//! | `budget` | the analyzer itself finished inside `--budget-ms` (CI keeps the full check under 10 s) |

use crate::lexer::{match_seq, matching_close, TokenKind};
use crate::{Finding, SourceFile};

/// Rule key: `Instant::now()` on the ingest/worker hot paths.
pub const RULE_INSTANT_NOW: &str = "instant-now";
/// Rule key: bare `.unwrap()` in library code.
pub const RULE_UNWRAP: &str = "unwrap";
/// Rule key: unbounded `mpsc::channel()` on a data path.
pub const RULE_UNBOUNDED_CHANNEL: &str = "unbounded-channel";
/// Rule key: thread spawn outside runtime/bench.
pub const RULE_THREAD_SPAWN: &str = "thread-spawn";
/// Rule key: `try_send` of a lifecycle/barrier message.
pub const RULE_LIFECYCLE_SEND: &str = "lifecycle-send";
/// Rule key: `RuntimeReport::applier()` in bench code.
pub const RULE_BARE_APPLIER: &str = "bare-applier";
/// Rule key: per-call heap allocation on the inference scoring hot path.
pub const RULE_HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule key: malformed or unknown pragma.
pub const RULE_PRAGMA: &str = "pragma";
/// Rule key: message-protocol violation against the declared automaton
/// (spec drift, missed broadcast, data send after a terminal message,
/// ack/reply/quorum breakage). Checked by [`crate::protocol`].
pub const RULE_PROTOCOL: &str = "protocol";
/// Rule key: wildcard `_` match arm on a protocol enum. Checked by
/// [`crate::protocol`].
pub const RULE_PROTOCOL_WILDCARD: &str = "protocol-wildcard";
/// Rule key: atomic-ordering violation (a handshake flag without
/// Release/Acquire pairing, a channel-edge proof, or a pragma; or an
/// unclassifiable op mix). Checked by [`crate::atomics`].
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
/// Rule key: the analyzer's own runtime exceeded the `--budget-ms` cap.
pub const RULE_BUDGET: &str = "budget";

/// Every rule key the pragma checker accepts in `allow(...)`.
pub const KNOWN_RULES: &[&str] = &[
    RULE_INSTANT_NOW,
    RULE_UNWRAP,
    RULE_UNBOUNDED_CHANNEL,
    RULE_THREAD_SPAWN,
    RULE_LIFECYCLE_SEND,
    RULE_BARE_APPLIER,
    RULE_HOT_PATH_ALLOC,
    RULE_PROTOCOL,
    RULE_PROTOCOL_WILDCARD,
    RULE_ATOMIC_ORDERING,
];

/// The hot-path files `instant-now` polices.
const HOT_PATH_FILES: &[&str] = &[
    "crates/runtime/src/ingest.rs",
    "crates/runtime/src/worker.rs",
];

/// Functions inside the hot-path files where `Instant::now()` is fine:
/// constructors (`new` — clock/handle setup, not per-event), and the
/// consumer-side loop bodies (`shard_loop`, `applier_loop`) whose per-batch /
/// per-message measurements are the documented exception — they are off the
/// per-event path and are what the latency metrics are made of.
const INSTANT_NOW_ALLOWED_FNS: &[&str] = &["new", "shard_loop", "applier_loop"];

/// The inference-scorer files `hot-path-alloc` polices. In `kernels.rs`
/// every function body is hot (the crate exists for the allocation-free
/// pass); in the other files only the functions in [`ALLOC_HOT_FNS`] are.
const ALLOC_HOT_FILES: &[&str] = &[
    "crates/core/src/inference/kernels.rs",
    "crates/core/src/inference/fit_score.rs",
    "crates/core/src/inference/aggregate.rs",
    "crates/core/src/inference/counters.rs",
];

/// The scoring hot path proper: the per-trial / per-event functions where a
/// fresh `Vec`/`IdBitSet` would allocate once per greedy step or ranking
/// drain. Reference implementations (`*_scan`, `*_materialized`,
/// `union_bits`, `rescore`) deliberately stay outside this list — their
/// allocations are the baseline the kernels are measured against.
const ALLOC_HOT_FNS: &[&str] = &[
    "score_link_set",
    "infer_with_scorer",
    "update",
    "union_counts",
    "union_counts_buffered",
    "wp",
    "w_union",
    "p_union",
    "agg_seed",
    "agg_trial",
    "agg_accept",
    "crossing_prefixes",
    "seed",
    "trial",
    "accept",
    "score_set",
];

/// Constructors in `kernels.rs` allowed to allocate: building the
/// engine-owned scratch is the one place capacity is created.
const ALLOC_KERNEL_CTORS: &[&str] = &["new", "default", "with_capacity"];

/// The message-enum variants that make up the lifecycle/barrier protocol —
/// shedding any of these would break in-band ordering or the barrier quorum.
const LIFECYCLE_VARIANTS: &[&str] = &[
    "Register",
    "Teardown",
    "Barrier",
    "Resync",
    "Shutdown",
    "ShardDone",
];

/// Runs every applicable rule over `file`.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    check_pragmas(file, &mut out);
    if HOT_PATH_FILES.contains(&file.rel.as_str()) {
        check_instant_now(file, &mut out);
    }
    if unwrap_scope(&file.rel) {
        check_unwrap(file, &mut out);
    }
    if channel_scope(&file.rel) {
        check_unbounded_channel(file, &mut out);
        check_lifecycle_send(file, &mut out);
    }
    if thread_spawn_scope(&file.rel) {
        check_thread_spawn(file, &mut out);
    }
    if file.rel.starts_with("crates/bench/") {
        check_bare_applier(file, &mut out);
    }
    if ALLOC_HOT_FILES.contains(&file.rel.as_str()) {
        check_hot_path_alloc(file, &mut out);
    }
    out
}

/// `unwrap` scope: every library crate's `src/` (the bench harnesses and
/// experiment binaries may unwrap CLI/IO errors freely).
fn unwrap_scope(rel: &str) -> bool {
    let lib_src = (rel.starts_with("crates/") && rel.contains("/src/")) || rel.starts_with("src/");
    lib_src && !rel.starts_with("crates/bench/")
}

/// `unbounded-channel` / `lifecycle-send` scope: the concurrent pipeline —
/// the runtime crate and the core pipeline it drives.
fn channel_scope(rel: &str) -> bool {
    rel.starts_with("crates/runtime/src/") || rel.starts_with("crates/core/src/")
}

/// `thread-spawn` scope: everywhere except the runtime (whose whole job is
/// spawning the shard/applier threads) and the bench harnesses (producer
/// threads for the multi-ingest experiments).
fn thread_spawn_scope(rel: &str) -> bool {
    let lib_src = (rel.starts_with("crates/") && rel.contains("/src/")) || rel.starts_with("src/");
    lib_src && !rel.starts_with("crates/runtime/src/") && !rel.starts_with("crates/bench/")
}

/// `instant-now`: flags `Instant::now` token sequences (called or passed as
/// a function value — both read the clock at runtime) in hot-path files,
/// outside allowlisted functions, test code and pragmas.
fn check_instant_now(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.tokens.len() {
        if !match_seq(&file.tokens, i, &["Instant", ":", ":", "now"]) {
            continue;
        }
        let line = file.tokens[i].line;
        if file.in_test(line) || file.allowed(RULE_INSTANT_NOW, line) {
            continue;
        }
        if let Some(f) = file.enclosing_fn(line) {
            if INSTANT_NOW_ALLOWED_FNS.contains(&f.name.as_str()) {
                continue;
            }
        }
        out.push(Finding {
            rule: RULE_INSTANT_NOW,
            path: file.rel.clone(),
            line,
            message: "`Instant::now()` on the ingest/worker hot path — stamp events with the \
                      shared `EpochClock` (PR 5's epoch-clock discipline) or justify with \
                      `// swift-lint: allow(instant-now) -- <reason>`"
                .into(),
        });
    }
}

/// `unwrap`: flags `.unwrap()` (exactly — `unwrap_or*` never fires) outside
/// test code and pragmas.
fn check_unwrap(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.tokens.len() {
        if !match_seq(&file.tokens, i, &[".", "unwrap", "(", ")"]) {
            continue;
        }
        let line = file.tokens[i + 1].line;
        if file.in_test(line) || file.allowed(RULE_UNWRAP, line) {
            continue;
        }
        out.push(Finding {
            rule: RULE_UNWRAP,
            path: file.rel.clone(),
            line,
            message: "bare `.unwrap()` in library code — name the invariant with \
                      `.expect(\"...\")` or justify with \
                      `// swift-lint: allow(unwrap) -- <reason>`"
                .into(),
        });
    }
}

/// `unbounded-channel`: flags `mpsc::channel()` unless the `let` binding
/// names mark it as a reply/barrier control channel (idents containing
/// `reply` or `barrier`) or a pragma justifies it. Data paths must use
/// `sync_channel` so a slow consumer pushes back instead of buffering
/// unboundedly.
fn check_unbounded_channel(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.tokens.len() {
        if !match_seq(&file.tokens, i, &["mpsc", ":", ":", "channel"])
            || call_open_paren(&file.tokens, i + 3).is_none()
        {
            continue;
        }
        let line = file.tokens[i].line;
        if file.in_test(line) || file.allowed(RULE_UNBOUNDED_CHANNEL, line) {
            continue;
        }
        if channel_binding_is_control(file, i) {
            continue;
        }
        out.push(Finding {
            rule: RULE_UNBOUNDED_CHANNEL,
            path: file.rel.clone(),
            line,
            message: "unbounded `mpsc::channel()` on a data path — use `sync_channel` \
                      (bounded, backpressure) or mark the binding as a control channel \
                      (`reply`/`barrier` in the name) or justify with \
                      `// swift-lint: allow(unbounded-channel) -- <reason>`"
                .into(),
        });
    }
}

/// For a call whose name token sits at `name`, returns the index of the
/// opening `(`, skipping an optional turbofish (`mpsc::channel::<T>()`).
fn call_open_paren(tokens: &[crate::lexer::Token], name: usize) -> Option<usize> {
    let mut j = name + 1;
    if match_seq(tokens, j, &[":", ":", "<"]) {
        let mut depth = 0usize;
        let mut k = j + 2;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        j = k;
    }
    (tokens.get(j)?.text == "(").then_some(j)
}

/// Walks back from the `mpsc` token at `at` to the statement's `let` and
/// reports whether any bound ident names a control channel.
fn channel_binding_is_control(file: &SourceFile, at: usize) -> bool {
    let mut j = at;
    // Scan back to the start of the statement (a `;`, `{` or `}`), then
    // forward from the `let` collecting pattern idents.
    while j > 0 {
        let t = &file.tokens[j - 1];
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        j -= 1;
        if at - j > 32 {
            break;
        }
    }
    file.tokens[j..at].iter().any(|t| {
        t.kind == TokenKind::Ident && (t.text.contains("reply") || t.text.contains("barrier"))
    })
}

/// `thread-spawn`: flags `thread::spawn(...)` and `.spawn(...)` in crates
/// that must stay thread-free — concurrency lives in `swift-runtime` (and
/// the bench harnesses), everything else stays deterministic and testable.
fn check_thread_spawn(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.tokens.len() {
        let path_spawn = match_seq(&file.tokens, i, &["thread", ":", ":", "spawn", "("]);
        let method_spawn = match_seq(&file.tokens, i, &[".", "spawn", "("]);
        if !(path_spawn || method_spawn) {
            continue;
        }
        let line = file.tokens[i].line;
        if file.in_test(line) || file.allowed(RULE_THREAD_SPAWN, line) {
            continue;
        }
        out.push(Finding {
            rule: RULE_THREAD_SPAWN,
            path: file.rel.clone(),
            line,
            message: "thread spawn outside `swift-runtime`/`swift-bench` — route concurrency \
                      through the runtime (`ShardedRuntime`, `IngestHandle`) so the topology \
                      checker sees it, or justify with \
                      `// swift-lint: allow(thread-spawn) -- <reason>`"
                .into(),
        });
    }
}

/// `lifecycle-send`: flags `try_send(...)` whose payload mentions a
/// lifecycle/barrier variant. Those messages carry in-band ordering and the
/// barrier quorum — shedding one would desynchronize engines and appliers
/// (CHANGES.md PR 4: "lifecycle messages are never shed").
fn check_lifecycle_send(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.tokens.len() {
        if !match_seq(&file.tokens, i, &[".", "try_send", "("]) {
            continue;
        }
        let line = file.tokens[i + 1].line;
        let close = matching_close(&file.tokens, i + 2);
        let payload = &file.tokens[i + 3..close.min(file.tokens.len())];
        let variant = payload
            .iter()
            .find(|t| t.kind == TokenKind::Ident && LIFECYCLE_VARIANTS.contains(&t.text.as_str()));
        let Some(variant) = variant else {
            continue;
        };
        if file.in_test(line) || file.allowed(RULE_LIFECYCLE_SEND, line) {
            continue;
        }
        out.push(Finding {
            rule: RULE_LIFECYCLE_SEND,
            path: file.rel.clone(),
            line,
            message: format!(
                "`try_send` of lifecycle/barrier message `{}` — lifecycle messages are never \
                 shed (in-band ordering, barrier quorum): use the blocking `send`",
                variant.text
            ),
        });
    }
}

/// `bare-applier`: flags `.applier()` in bench code — it panics at
/// `applier_shards >= 2`; harnesses branch on `try_applier()` or use the
/// aggregate accessors instead.
fn check_bare_applier(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.tokens.len() {
        if !match_seq(&file.tokens, i, &[".", "applier", "(", ")"]) {
            continue;
        }
        let line = file.tokens[i + 1].line;
        if file.in_test(line) || file.allowed(RULE_BARE_APPLIER, line) {
            continue;
        }
        out.push(Finding {
            rule: RULE_BARE_APPLIER,
            path: file.rel.clone(),
            line,
            message: "`RuntimeReport::applier()` in bench code panics at `applier_shards >= 2` \
                      — branch on `try_applier()` or use the aggregate accessors \
                      (`swift_rule_count()`, `pending_events()`, `forwarding_next_hop()`)"
                .into(),
        });
    }
}

/// `hot-path-alloc`: flags per-call heap allocation (`Vec::new()`,
/// `IdBitSet::new()`, `vec![...]`) inside the fused-kernel scoring hot path.
/// In `kernels.rs` every non-constructor body is policed; in the other
/// scorer files only the hot functions ([`ALLOC_HOT_FNS`]) are. Test code
/// never fires, and a pragma with a reason exempts a line — but the kernel
/// bodies themselves are expected to stay pragma-free (capacity belongs in
/// `ScoreScratch`, not in a justified allocation).
fn check_hot_path_alloc(file: &SourceFile, out: &mut Vec<Finding>) {
    let kernels = file.rel.ends_with("/kernels.rs");
    for i in 0..file.tokens.len() {
        let vec_new = match_seq(&file.tokens, i, &["Vec", ":", ":", "new", "(", ")"]);
        let bitset_new = match_seq(&file.tokens, i, &["IdBitSet", ":", ":", "new", "(", ")"]);
        let vec_macro = match_seq(&file.tokens, i, &["vec", "!", "["]);
        if !(vec_new || bitset_new || vec_macro) {
            continue;
        }
        let line = file.tokens[i].line;
        if file.in_test(line) || file.allowed(RULE_HOT_PATH_ALLOC, line) {
            continue;
        }
        let hot = match file.enclosing_fn(line) {
            Some(f) if kernels => !ALLOC_KERNEL_CTORS.contains(&f.name.as_str()),
            Some(f) => ALLOC_HOT_FNS.contains(&f.name.as_str()),
            None => false,
        };
        if !hot {
            continue;
        }
        let what = if vec_macro {
            "`vec![...]`"
        } else if vec_new {
            "`Vec::new()`"
        } else {
            "`IdBitSet::new()`"
        };
        out.push(Finding {
            rule: RULE_HOT_PATH_ALLOC,
            path: file.rel.clone(),
            line,
            message: format!(
                "{what} on the inference scoring hot path — the fused kernels are \
                 allocation-free by contract: reuse the engine-owned `ScoreScratch` \
                 (or `Vec::with_capacity` outside the kernel bodies), or justify with \
                 `// swift-lint: allow(hot-path-alloc) -- <reason>`"
            ),
        });
    }
}

/// `pragma`: every `swift-lint` pragma must be `allow(<known-rule>) -- \
/// <reason>` — malformed pragmas, unknown rules and missing reasons are
/// findings so a typo cannot silently disable a lint.
pub fn check_pragmas(file: &SourceFile, out: &mut Vec<Finding>) {
    for p in &file.pragmas {
        let message = if p.rule.is_empty() {
            "malformed `swift-lint` pragma — expected \
             `// swift-lint: allow(<rule>) -- <reason>`"
                .to_string()
        } else if !KNOWN_RULES.contains(&p.rule.as_str()) {
            format!(
                "unknown rule `{}` in `swift-lint` pragma — known rules: {}",
                p.rule,
                KNOWN_RULES.join(", ")
            )
        } else if p.reason.is_empty() {
            format!(
                "`swift-lint: allow({})` without a `-- <reason>` justification suppresses \
                 nothing — state why the exemption is sound",
                p.rule
            )
        } else {
            continue;
        };
        out.push(Finding {
            rule: RULE_PRAGMA,
            path: file.rel.clone(),
            line: p.line,
            message,
        });
    }
}
