//! SARIF 2.1.0 export for the findings, so CI can annotate PRs inline.
//!
//! Emits the minimal valid shape: one `run` with a `tool.driver` that
//! declares every fired rule, and one `result` per finding with a
//! `physicalLocation` (`startLine` clamped to 1 — SARIF regions are
//! 1-based, and spec-level findings carry line 0). Hand-rolled like every
//! other emitter in this crate: the build environment is offline, so no
//! serde.

use crate::{json_escape, Finding};
use std::collections::BTreeSet;

/// The `$schema` URI stamped into the log (the canonical 2.1.0 schema).
pub const SCHEMA_URI: &str =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json";

/// Renders `findings` as a SARIF 2.1.0 log.
pub fn to_sarif(findings: &[Finding]) -> String {
    let rules: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"$schema\": \"{SCHEMA_URI}\",\n"));
    out.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"swift-analysis\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/swift-analysis\",\n");
    out.push_str("          \"rules\": [");
    let mut first = true;
    for rule in &rules {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_escape(rule),
            json_escape(rule)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    first = true;
    for f in findings {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            \
             {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}\n          ]\n        }}",
            json_escape(f.rule),
            json_escape(&f.message),
            json_escape(&f.path),
            f.line.max(1)
        ));
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_findings_still_form_a_run() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn line_zero_findings_clamp_to_one() {
        let s = to_sarif(&[Finding {
            rule: "protocol",
            path: "crates/analysis/protocol/runtime.protocol".into(),
            line: 0,
            message: "spec drift".into(),
        }]);
        assert!(s.contains("\"startLine\": 1"), "{s}");
    }
}
