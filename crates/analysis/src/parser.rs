//! The parser layer: an item/fn-granularity AST over the token streams of
//! [`crate::lexer`].
//!
//! PR 7's rules and topology extractor work straight off the token stream;
//! the semantic checks added in PR 9 (the protocol verifier and the
//! atomic-ordering auditor) need *structure*: which `fn` a call sits in,
//! whether a send is inside a broadcast loop, what a `match` scrutinizes and
//! which variants its arms cover. This module builds exactly that much
//! structure — and no more:
//!
//! * **items** — `enum` definitions (name + variant list), struct fields
//!   whose type is an `Atomic*` (name + atomic type, tuple fields as
//!   `Type.0`), and `fn` items with their enclosing `impl` type;
//! * **fn bodies** — a statement/call tree of [`Node`]s: loops (`for` /
//!   `while` / `loop`, with their header text), `match` expressions with
//!   per-arm patterns and bodies, calls (free and method, with receiver
//!   chains and nested argument nodes), and transparent blocks;
//! * **match arms** — the pattern's leading path (`ShardMsg::Batch` →
//!   `["ShardMsg", "Batch"]`), wildcard detection, and the arm body as a
//!   node tree.
//!
//! Same zero-dependency discipline as the rest of the crate: hand-rolled
//! over the lexer, conventions over full Rust semantics. Nested functions
//! are *not* re-parsed into their outer body (each gets its own [`FnDef`]),
//! so walking every `FnDef` visits each call site exactly once.

use crate::lexer::{matching_close, structural, Token, TokenKind};
use crate::SourceFile;

/// An `enum` item: its name and variant names (payloads dropped).
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
}

/// A struct field (named or tuple) whose declared type mentions an
/// `Atomic*` — the atomics auditor's type oracle.
#[derive(Debug, Clone)]
pub struct AtomicFieldDef {
    /// The field's name: `shutdown` for named fields, `Counter.0` for the
    /// payload of a tuple struct.
    pub name: String,
    /// The atomic type name (`AtomicBool`, `AtomicU64`, …).
    pub atomic: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// One `fn` item with its parsed body.
#[derive(Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl` target type the fn sits in, if any (`impl Counter` →
    /// `Counter`, `impl Trait for Gauge` → `Gauge`).
    pub impl_type: Option<String>,
    /// 1-based first line.
    pub start_line: u32,
    /// 1-based last line.
    pub end_line: u32,
    /// The body as a statement/call tree.
    pub body: Vec<Node>,
}

/// One node of a fn-body statement/call tree.
#[derive(Debug)]
pub enum Node {
    /// A `for`/`while`/`loop`. Header-position calls (`rx.recv()` in a
    /// `while let`) are parsed into the body, prepended — they execute per
    /// iteration.
    Loop {
        /// The header's joined token text (`link in & appliers`, empty for
        /// bare `loop`).
        header: String,
        /// A per-file unique id, for "same enclosing loop" queries.
        id: u32,
        /// The loop body (header nodes first).
        body: Vec<Node>,
        /// 1-based line of the loop keyword.
        line: u32,
    },
    /// A `match` expression with its arms.
    Match {
        /// The scrutinee's joined token text.
        scrutinee: String,
        /// The arms, in source order.
        arms: Vec<Arm>,
        /// 1-based line of the `match` keyword.
        line: u32,
    },
    /// A call — free (`shard_of(peer, n)`), path (`ShardMsg::Batch(b)` —
    /// enum constructors parse as calls, which is exactly what the protocol
    /// verifier wants), or method (`tx.send(msg)`).
    Call(CallNode),
    /// A transparent brace group (if/else bodies, bare blocks, struct
    /// literals) — grouping only, no semantics attached.
    Block {
        /// The contained nodes.
        body: Vec<Node>,
        /// 1-based line of the `{`.
        line: u32,
    },
}

/// A call site inside a fn body.
#[derive(Debug)]
pub struct CallNode {
    /// The called path: `[shard_of]` for free calls, `[ShardMsg, Batch]`
    /// for path calls, `[send]` for method calls.
    pub path: Vec<String>,
    /// `true` for method-call syntax (`recv.name(...)`).
    pub method: bool,
    /// The receiver's ident chain for method calls, index expressions
    /// stripped (`self.shared.depth[shard].fetch_add` → `[self, shared,
    /// depth]`; tuple fields kept: `self.0.load` → `[self, 0]`).
    pub receiver: Vec<String>,
    /// Token range of the argument list (exclusive of the parens), for
    /// payload scans against the file's token stream.
    pub args_lo: usize,
    /// Exclusive upper bound of the argument token range.
    pub args_hi: usize,
    /// Nested nodes inside the argument list (nested calls, closures…).
    pub args: Vec<Node>,
    /// 1-based line of the call name.
    pub line: u32,
}

/// One arm of a [`Node::Match`].
#[derive(Debug)]
pub struct Arm {
    /// The pattern's joined token text (guard included).
    pub pattern: String,
    /// The pattern's leading ident path (`ApplierMsg::Register { .. }` →
    /// `[ApplierMsg, Register]`; `Some(x)` → `[Some]`; empty for tuples,
    /// literals and `_`).
    pub path: Vec<String>,
    /// `true` if the pattern is exactly the wildcard `_`.
    pub wildcard: bool,
    /// The arm body as a node tree.
    pub body: Vec<Node>,
    /// Token range of the arm body (for ident-level scans the node tree
    /// drops, e.g. `done += 1` counters).
    pub body_lo: usize,
    /// Exclusive upper bound of the arm-body token range.
    pub body_hi: usize,
    /// 1-based line the pattern starts on.
    pub line: u32,
}

/// The parsed AST of one file.
#[derive(Debug)]
pub struct Ast {
    /// Every `enum` item.
    pub enums: Vec<EnumDef>,
    /// Every struct field of `Atomic*` type.
    pub atomic_fields: Vec<AtomicFieldDef>,
    /// Every `fn` item (nested fns get their own entry and are skipped in
    /// the outer body).
    pub fns: Vec<FnDef>,
}

/// The atomic integer/bool type names the field scan recognises.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
];

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "move", "as", "ref", "mut",
];

/// Parses `file` into an [`Ast`].
pub fn parse(file: &SourceFile) -> Ast {
    let toks = &file.tokens;
    let mut ast = Ast {
        enums: Vec::new(),
        atomic_fields: Vec::new(),
        fns: Vec::new(),
    };
    collect_enums(toks, &mut ast.enums);
    collect_atomic_fields(toks, &mut ast.atomic_fields);
    let impls = collect_impl_ranges(toks);
    let mut loop_id = 0u32;
    for span in &file.fns {
        // Locate the body's `{` (bodiless signatures have none).
        let mut open = None;
        for (k, t) in toks
            .iter()
            .enumerate()
            .take(span.end_tok + 1)
            .skip(span.start_tok)
        {
            if structural(t) == "{" {
                open = Some(k);
                break;
            }
            if structural(t) == ";" {
                break;
            }
        }
        let body = match open {
            Some(open) => parse_nodes(toks, open + 1, span.end_tok, &mut loop_id),
            None => Vec::new(),
        };
        let impl_type = impls
            .iter()
            .filter(|(lo, hi, _)| *lo <= span.start_tok && span.end_tok <= *hi)
            .min_by_key(|(lo, hi, _)| hi - lo)
            .map(|(_, _, name)| name.clone());
        ast.fns.push(FnDef {
            name: span.name.clone(),
            impl_type,
            start_line: span.start_line,
            end_line: span.end_line,
            body,
        });
    }
    ast
}

/// Collects `enum Name { Variant, … }` items (attributes and payloads
/// skipped; generic parameters on the enum skipped).
fn collect_enums(toks: &[Token], out: &mut Vec<EnumDef>) {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if !(toks[i].kind == TokenKind::Ident
            && toks[i].text == "enum"
            && toks[i + 1].kind == TokenKind::Ident)
        {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // Find the body `{`, skipping a generics group.
        let mut k = i + 2;
        let mut angle = 0i32;
        let mut open = None;
        while k < toks.len() {
            match structural(&toks[k]) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => {
                    open = Some(k);
                    break;
                }
                ";" => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let close = matching_close(toks, open).min(toks.len());
        let mut variants = Vec::new();
        let mut j = open + 1;
        while j < close {
            // Skip attributes on the variant.
            while j + 1 < close && structural(&toks[j]) == "#" && structural(&toks[j + 1]) == "[" {
                j = matching_close(toks, j + 1) + 1;
            }
            if j >= close {
                break;
            }
            if toks[j].kind == TokenKind::Ident {
                variants.push(toks[j].text.clone());
            }
            // Skip to the next `,` at this depth (past any payload group).
            while j < close {
                match structural(&toks[j]) {
                    "(" | "{" | "[" => j = matching_close(toks, j).min(close),
                    "," => break,
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        out.push(EnumDef {
            name,
            variants,
            line,
        });
        i = close + 1;
    }
}

/// Collects struct fields whose declared type is an `Atomic*`: walks back
/// from each `Atomic*` token through wrapper-type syntax (`Arc<`, `Vec<`,
/// `Box<`) to a `name :` field declaration, or to a tuple-struct `Name(`
/// (recorded as `Name.0`). Paths (`atomic::AtomicBool`) and `use` lists are
/// rejected by the walk.
fn collect_atomic_fields(toks: &[Token], out: &mut Vec<AtomicFieldDef>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !ATOMIC_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // `Atomic*::new(...)` in an initializer still names the field when
        // the initializer sits in a struct literal (`shutdown:
        // AtomicBool::new(false)`), so the walk-back below covers both the
        // declaration and that construction form.
        let mut j = i;
        let floor = i.saturating_sub(10);
        let mut found = None;
        while j > floor {
            j -= 1;
            let p = &toks[j];
            match p.text.as_str() {
                "<" => continue,
                "Arc" | "Vec" | "Box" | "Mutex" | "RefCell" => continue,
                ":" => {
                    // `::` means a path segment, not a field declaration.
                    if j > 0 && toks[j - 1].text == ":" {
                        break;
                    }
                    if j > 0 && toks[j - 1].kind == TokenKind::Ident {
                        found = Some(toks[j - 1].text.clone());
                    }
                    break;
                }
                "(" => {
                    // Tuple struct: require the `struct` keyword nearby so
                    // ordinary calls (`Arc::new(AtomicUsize::new(0))`) do
                    // not register a phantom field.
                    if j >= 2
                        && toks[j - 1].kind == TokenKind::Ident
                        && toks[j - 2].text == "struct"
                    {
                        found = Some(format!("{}.0", toks[j - 1].text));
                    }
                    break;
                }
                _ => break,
            }
        }
        if let Some(name) = found {
            if !out.iter().any(|f: &AtomicFieldDef| f.name == name) {
                out.push(AtomicFieldDef {
                    name,
                    atomic: t.text.clone(),
                    line: t.line,
                });
            }
        }
    }
}

/// Collects `(start_tok, end_tok, target_type)` for every `impl` block.
fn collect_impl_ranges(toks: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokenKind::Ident && toks[i].text == "impl") {
            i += 1;
            continue;
        }
        // Scan to the body `{` at angle depth 0, noting a `for` (trait
        // impls name the target after it).
        let mut k = i + 1;
        let mut angle = 0i32;
        let mut after_for = None;
        let mut first_ident = None;
        let mut open = None;
        while k < toks.len() {
            let t = &toks[k];
            match structural(t) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "for" if angle <= 0 => after_for = Some(k),
                "{" if angle <= 0 => {
                    open = Some(k);
                    break;
                }
                ";" => break,
                _ => {
                    if t.kind == TokenKind::Ident && angle <= 0 && first_ident.is_none() {
                        first_ident = Some(k);
                    }
                }
            }
            k += 1;
        }
        let Some(open) = open else {
            i = k + 1;
            continue;
        };
        let close = matching_close(toks, open).min(toks.len() - 1);
        let target = match after_for {
            Some(f) => toks[f + 1..open]
                .iter()
                .find(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone()),
            None => first_ident.map(|k| toks[k].text.clone()),
        };
        if let Some(target) = target {
            out.push((i, close, target));
        }
        i = open + 1; // impls nest only through fns; keep scanning inside
    }
    out
}

/// Parses the token range `[lo, hi)` into a node tree.
fn parse_nodes(toks: &[Token], lo: usize, hi: usize, loop_id: &mut u32) -> Vec<Node> {
    let hi = hi.min(toks.len());
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                // A nested fn gets its own FnDef — skip its whole span so
                // its calls are not attributed to the outer body too.
                "fn" if toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) => {
                    let mut k = i + 2;
                    while k < hi && structural(&toks[k]) != "{" && structural(&toks[k]) != ";" {
                        k += 1;
                    }
                    i = if k < hi && structural(&toks[k]) == "{" {
                        matching_close(toks, k) + 1
                    } else {
                        k + 1
                    };
                    continue;
                }
                "for" | "while" => {
                    let Some(open) = find_body_brace(toks, i + 1, hi) else {
                        i += 1;
                        continue;
                    };
                    let close = matching_close(toks, open).min(hi);
                    let header = join(&toks[i + 1..open]);
                    *loop_id += 1;
                    let id = *loop_id;
                    // Header calls (`rx.recv()` in `while let`) run per
                    // iteration: parse them into the body, first.
                    let mut body = parse_nodes(toks, i + 1, open, loop_id);
                    body.extend(parse_nodes(toks, open + 1, close, loop_id));
                    out.push(Node::Loop {
                        header,
                        id,
                        body,
                        line: t.line,
                    });
                    i = close + 1;
                    continue;
                }
                "loop" if toks.get(i + 1).is_some_and(|t| structural(t) == "{") => {
                    let close = matching_close(toks, i + 1).min(hi);
                    *loop_id += 1;
                    let id = *loop_id;
                    let body = parse_nodes(toks, i + 2, close, loop_id);
                    out.push(Node::Loop {
                        header: String::new(),
                        id,
                        body,
                        line: t.line,
                    });
                    i = close + 1;
                    continue;
                }
                "match" => {
                    let Some(open) = find_body_brace(toks, i + 1, hi) else {
                        i += 1;
                        continue;
                    };
                    let close = matching_close(toks, open).min(hi);
                    // Scrutinee-position calls (`rx.recv()`) are real sites:
                    // surface them before the match node.
                    out.extend(parse_nodes(toks, i + 1, open, loop_id));
                    let arms = parse_arms(toks, open + 1, close, loop_id);
                    out.push(Node::Match {
                        scrutinee: join(&toks[i + 1..open]),
                        arms,
                        line: t.line,
                    });
                    i = close + 1;
                    continue;
                }
                "if" => {
                    let Some(open) = find_body_brace(toks, i + 1, hi) else {
                        i += 1;
                        continue;
                    };
                    let close = matching_close(toks, open).min(hi);
                    out.extend(parse_nodes(toks, i + 1, open, loop_id));
                    out.push(Node::Block {
                        body: parse_nodes(toks, open + 1, close, loop_id),
                        line: toks[open].line,
                    });
                    i = close + 1;
                    continue;
                }
                name if !NON_CALL_KEYWORDS.contains(&name)
                    && toks.get(i + 1).is_some_and(|t| structural(t) == "(") =>
                {
                    let open = i + 1;
                    let close = matching_close(toks, open).min(hi);
                    let method = i > 0 && toks[i - 1].text == ".";
                    let path = if method {
                        vec![t.text.clone()]
                    } else {
                        leading_path(toks, i)
                    };
                    let receiver = if method {
                        receiver_chain(toks, i - 1)
                    } else {
                        Vec::new()
                    };
                    let args = parse_nodes(toks, open + 1, close, loop_id);
                    out.push(Node::Call(CallNode {
                        path,
                        method,
                        receiver,
                        args_lo: open + 1,
                        args_hi: close,
                        args,
                        line: t.line,
                    }));
                    i = close + 1;
                    continue;
                }
                _ => {}
            }
        } else if structural(t) == "{" {
            let close = matching_close(toks, i).min(hi);
            out.push(Node::Block {
                body: parse_nodes(toks, i + 1, close, loop_id),
                line: t.line,
            });
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Finds the `{` opening a control-flow body: the first `{` at
/// paren/bracket depth 0 after `from` (loop/match/if headers cannot contain
/// bare struct literals, so the first such brace is the body).
fn find_body_brace(toks: &[Token], from: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(from) {
        match structural(t) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(k),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Parses the arms of a `match` body in `[lo, hi)`.
fn parse_arms(toks: &[Token], lo: usize, hi: usize, loop_id: &mut u32) -> Vec<Arm> {
    let hi = hi.min(toks.len());
    let mut out = Vec::new();
    let mut i = lo;
    loop {
        while i < hi && matches!(structural(&toks[i]), "," | "|") {
            i += 1;
        }
        if i >= hi {
            break;
        }
        let pat_lo = i;
        // Scan for the `=>` at depth 0 (patterns may contain groups and
        // or-patterns; guards sit before the arrow).
        let mut depth = 0i32;
        let mut arrow = None;
        let mut k = i;
        while k < hi {
            match structural(&toks[k]) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 && toks.get(k + 1).is_some_and(|t| structural(t) == ">") => {
                    arrow = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(arrow) = arrow else {
            break;
        };
        let pattern = join(&toks[pat_lo..arrow]);
        let path = leading_arm_path(&toks[pat_lo..arrow]);
        let wildcard = arrow == pat_lo + 1 && structural(&toks[pat_lo]) == "_";
        let after_arrow = arrow + 2;
        let (body, range, next) = if toks.get(after_arrow).is_some_and(|t| structural(t) == "{") {
            let close = matching_close(toks, after_arrow).min(hi);
            (
                parse_nodes(toks, after_arrow + 1, close, loop_id),
                (after_arrow + 1, close),
                close + 1,
            )
        } else {
            // Expression arm: ends at the `,` at depth 0 (or the match's
            // closing brace).
            let mut depth = 0i32;
            let mut end = hi;
            let mut k = after_arrow;
            while k < hi {
                match structural(&toks[k]) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => {
                        end = k;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            (
                parse_nodes(toks, after_arrow, end, loop_id),
                (after_arrow, end),
                end + 1,
            )
        };
        out.push(Arm {
            pattern,
            path,
            wildcard,
            body,
            body_lo: range.0,
            body_hi: range.1,
            line: toks[pat_lo].line,
        });
        i = next;
    }
    out
}

/// The `A::B::name` path ending at the ident token `at` (walking back
/// through `::` pairs).
fn leading_path(toks: &[Token], at: usize) -> Vec<String> {
    let mut path = vec![toks[at].text.clone()];
    let mut i = at;
    while i >= 3
        && structural(&toks[i - 1]) == ":"
        && structural(&toks[i - 2]) == ":"
        && toks[i - 3].kind == TokenKind::Ident
    {
        path.insert(0, toks[i - 3].text.clone());
        i -= 3;
    }
    path
}

/// The leading ident path of a pattern (`ApplierMsg :: Register { … }` →
/// `[ApplierMsg, Register]`; empty when the pattern opens with a group,
/// literal or wildcard).
fn leading_arm_path(pat: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < pat.len() {
        let t = &pat[i];
        if t.kind == TokenKind::Ident && t.text != "_" {
            out.push(t.text.clone());
            if pat.get(i + 1).is_some_and(|t| structural(t) == ":")
                && pat.get(i + 2).is_some_and(|t| structural(t) == ":")
            {
                i += 3;
                continue;
            }
        }
        break;
    }
    out
}

/// The receiver's ident chain before the `.` at `dot`, index expressions
/// (`[shard]`) stripped, tuple-field numbers kept.
fn receiver_chain(toks: &[Token], dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = dot;
    let floor = dot.saturating_sub(24);
    while j > floor {
        j -= 1;
        let t = &toks[j];
        match structural(t) {
            "." => continue,
            "]" => {
                // Walk back over the index group.
                let mut depth = 1i32;
                while j > floor && depth > 0 {
                    j -= 1;
                    match structural(&toks[j]) {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                continue;
            }
            _ if t.kind == TokenKind::Ident || t.kind == TokenKind::Num => {
                chain.push(t.text.clone());
                // Only a `.` continues the chain leftwards.
                if j == 0 || structural(&toks[j - 1]) != "." {
                    break;
                }
            }
            _ => break,
        }
    }
    chain.reverse();
    chain
}

/// Joins token texts with single spaces (for headers/patterns in reports).
fn join(toks: &[Token]) -> String {
    toks.iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// One enclosing loop on a call visitor's stack: `(loop id, header text)`.
pub type LoopFrame<'a> = (u32, &'a str);

/// Visitor passed to [`for_each_call`]: the call node plus the stack of
/// enclosing loops, outermost first.
pub type CallVisitor<'a, 'f> = &'f mut dyn FnMut(&'a CallNode, &[LoopFrame<'a>]);

/// Depth-first walk over `nodes` calling `f` on every call site with the
/// stack of enclosing loops (`(id, header)` pairs, outermost first). Match
/// arms and argument lists are descended into.
pub fn for_each_call<'a>(nodes: &'a [Node], f: CallVisitor<'a, '_>) {
    fn walk<'a>(nodes: &'a [Node], loops: &mut Vec<LoopFrame<'a>>, f: CallVisitor<'a, '_>) {
        for n in nodes {
            match n {
                Node::Loop {
                    header, id, body, ..
                } => {
                    loops.push((*id, header.as_str()));
                    walk(body, loops, f);
                    loops.pop();
                }
                Node::Match { arms, .. } => {
                    for a in arms {
                        walk(&a.body, loops, f);
                    }
                }
                Node::Call(c) => {
                    f(c, loops);
                    walk(&c.args, loops, f);
                }
                Node::Block { body, .. } => walk(body, loops, f),
            }
        }
    }
    walk(nodes, &mut Vec::new(), f);
}

/// Depth-first walk over `nodes` calling `f` on every `match` node
/// (scrutinee text, arms, line), descending into arms, loops, blocks and
/// call arguments.
pub fn for_each_match<'a>(nodes: &'a [Node], f: &mut dyn FnMut(&'a str, &'a [Arm], u32)) {
    for n in nodes {
        match n {
            Node::Loop { body, .. } | Node::Block { body, .. } => for_each_match(body, f),
            Node::Match {
                scrutinee,
                arms,
                line,
            } => {
                f(scrutinee.as_str(), arms, *line);
                for a in arms {
                    for_each_match(&a.body, f);
                }
            }
            Node::Call(c) => for_each_match(&c.args, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ast_of(src: &str) -> Ast {
        parse(&SourceFile::parse("crates/runtime/src/worker.rs", src))
    }

    /// Delimiters inside char literals are data, not structure: a `'{'`
    /// pushed onto a buffer must not open a block, a `'('` matched in an
    /// arm must not open a group, and `'_'` is a char pattern, not a
    /// wildcard (regression: the JSON writer in swift-telemetry made the
    /// old text-only matching tear the token stream apart).
    #[test]
    fn char_literal_delimiters_are_not_structural() {
        let ast = ast_of(
            "fn emit(buf: &mut String, c: char) {\n\
                 buf.push('{');\n\
                 match c {\n\
                     '(' => buf.push(')'),\n\
                     '_' => buf.push('}'),\n\
                     _ => other(c),\n\
                 }\n\
                 buf.push('}');\n\
             }\n",
        );
        assert_eq!(ast.fns.len(), 1);
        let mut calls = Vec::new();
        for_each_call(&ast.fns[0].body, &mut |c, _| {
            calls.push(c.path.join("::"));
        });
        assert_eq!(
            calls.iter().filter(|p| *p == "push").count(),
            4,
            "every push survives: {calls:?}"
        );
        assert_eq!(calls.iter().filter(|p| *p == "other").count(), 1);
        let mut arms = Vec::new();
        for_each_match(&ast.fns[0].body, &mut |_, a, _| {
            arms.extend(a.iter().map(|arm| (arm.pattern.clone(), arm.wildcard)));
        });
        assert_eq!(arms.len(), 3, "{arms:?}");
        assert_eq!(
            arms.iter().filter(|(_, w)| *w).count(),
            1,
            "only the bare `_` is a wildcard: {arms:?}"
        );
    }

    #[test]
    fn enums_parse_names_and_variants() {
        let ast = ast_of(
            "enum ShardMsg { Batch(Vec<u8>), Register(Box<R>), Teardown(u32), Barrier(u64), \
             Shutdown }\n",
        );
        assert_eq!(ast.enums.len(), 1);
        assert_eq!(ast.enums[0].name, "ShardMsg");
        assert_eq!(
            ast.enums[0].variants,
            ["Batch", "Register", "Teardown", "Barrier", "Shutdown"]
        );
    }

    #[test]
    fn atomic_fields_map_named_and_tuple_forms() {
        let ast = ast_of(
            "struct Shared { shutdown: AtomicBool, depth: Vec<Arc<AtomicUsize>> }\n\
             pub struct Counter(Arc<AtomicU64>);\n\
             fn f() { let x = Arc::new(AtomicUsize::new(0)); }\n",
        );
        let names: Vec<(&str, &str)> = ast
            .atomic_fields
            .iter()
            .map(|f| (f.name.as_str(), f.atomic.as_str()))
            .collect();
        assert!(names.contains(&("shutdown", "AtomicBool")), "{names:?}");
        assert!(names.contains(&("depth", "AtomicUsize")), "{names:?}");
        assert!(names.contains(&("Counter.0", "AtomicU64")), "{names:?}");
        assert_eq!(ast.atomic_fields.len(), 3, "no phantom field: {names:?}");
    }

    #[test]
    fn fns_carry_their_impl_type() {
        let ast = ast_of(
            "impl Counter { fn add(&self) {} }\n\
             impl Default for Gauge { fn default() -> Gauge { Gauge } }\n\
             fn free() {}\n",
        );
        let by_name = |n: &str| {
            ast.fns
                .iter()
                .find(|f| f.name == n)
                .unwrap_or_else(|| panic!("fn {n}"))
        };
        assert_eq!(by_name("add").impl_type.as_deref(), Some("Counter"));
        assert_eq!(by_name("default").impl_type.as_deref(), Some("Gauge"));
        assert_eq!(by_name("free").impl_type, None);
    }

    #[test]
    fn calls_record_path_method_and_receiver() {
        let ast = ast_of(
            "fn f(link: &Link) {\n\
               link.tx.send(ApplierMsg::Batch(batch));\n\
               self.shared.depth[shard].fetch_add(1, Ordering::Relaxed);\n\
             }\n",
        );
        let mut calls = Vec::new();
        for_each_call(&ast.fns[0].body, &mut |c, _| {
            calls.push((c.path.join("::"), c.method, c.receiver.join(".")));
        });
        assert!(
            calls.contains(&("send".into(), true, "link.tx".into())),
            "{calls:?}"
        );
        assert!(
            calls.contains(&("ApplierMsg::Batch".into(), false, String::new())),
            "enum constructors in args parse as path calls: {calls:?}"
        );
        assert!(
            calls.contains(&("fetch_add".into(), true, "self.shared.depth".into())),
            "index expressions stripped: {calls:?}"
        );
    }

    #[test]
    fn loops_wrap_their_sites_and_headers_survive() {
        let ast = ast_of(
            "fn f(appliers: &[Link]) {\n\
               for link in appliers.iter() { link.tx.send(ApplierMsg::Barrier(seq)); }\n\
               one.tx.send(ApplierMsg::Teardown(peer));\n\
             }\n",
        );
        let mut in_loop = None;
        let mut out_of_loop = None;
        for_each_call(&ast.fns[0].body, &mut |c, loops| {
            if c.path.last().is_some_and(|p| p == "send") {
                if loops.is_empty() {
                    out_of_loop = Some(c.line);
                } else {
                    in_loop = Some(loops[0].1.to_string());
                }
            }
        });
        assert!(
            in_loop.is_some_and(|h| h.contains("appliers")),
            "loop header names the fan-out collection"
        );
        assert_eq!(out_of_loop, Some(3));
    }

    #[test]
    fn match_arms_carry_paths_wildcards_and_bodies() {
        let ast = ast_of(
            "fn f(rx: Receiver<ShardMsg>) {\n\
               while let Ok(msg) = rx.recv() {\n\
                 match msg {\n\
                   ShardMsg::Batch(b) => { handle(b); }\n\
                   ShardMsg::Register { peer, asn } => register(peer, asn),\n\
                   _ => {}\n\
                 }\n\
               }\n\
             }\n",
        );
        let mut seen = Vec::new();
        for_each_match(&ast.fns[0].body, &mut |scrutinee, arms, _| {
            for a in arms {
                seen.push((scrutinee.to_string(), a.path.join("::"), a.wildcard));
            }
        });
        assert_eq!(
            seen,
            [
                ("msg".into(), "ShardMsg::Batch".into(), false),
                ("msg".into(), "ShardMsg::Register".into(), false),
                ("msg".into(), String::new(), true),
            ]
        );
    }

    #[test]
    fn nested_fns_are_not_double_counted() {
        let ast = ast_of("fn outer() {\n  fn inner() { target(); }\n  other();\n}\n");
        let outer = ast
            .fns
            .iter()
            .find(|f| f.name == "outer")
            .expect("outer parsed");
        let mut calls = Vec::new();
        for_each_call(&outer.body, &mut |c, _| calls.push(c.path.join("::")));
        assert_eq!(calls, ["other"], "inner's body belongs to inner only");
    }
}
