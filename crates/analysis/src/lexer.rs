//! A small token-level Rust lexer, shared by every rule and by the topology
//! extractor.
//!
//! The lexer is deliberately not a full Rust parser: it produces a flat,
//! line-mapped token stream that is *comment- and string-aware* — the two
//! properties the lint rules actually need (`Instant::now` inside a string
//! literal or a comment must never fire a finding). It handles:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments,
//!   collected separately so pragma comments stay inspectable;
//! * string literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//!   depth), byte/C-string prefixes (`b"…"`, `br#"…"#`, `c"…"`);
//! * char literals vs lifetimes (`'a'` vs `'a`);
//! * identifiers, numbers, and single-char punctuation (so `::` is two `:`
//!   tokens — see [`match_seq`] for sequence matching that papers over it).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `Instant`, `unwrap`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — distinct from char literals.
    Lifetime,
    /// A numeric literal (`42`, `0x9E37`, `1_000`).
    Num,
    /// A string literal of any flavour (plain, raw, byte, C). The text is
    /// the literal's *contents*, delimiters stripped.
    Str,
    /// A char literal (`'x'`, `'\n'`). Text is the contents.
    Char,
    /// A single punctuation character (`.`, `:`, `(`, `{`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's text (see [`TokenKind`] for what the text contains).
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: u32,
}

/// One comment, collected out-of-band from the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The comment's text without the `//` / `/*` delimiters.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into a token stream plus its comments.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    // Counts newlines in a consumed span so multi-line tokens keep the map.
    fn advance_lines(chars: &[char], from: usize, to: usize, line: &mut u32) {
        *line += chars[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    }

    while i < n {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && bytes[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: bytes[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let start_line = line;
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < n && depth > 0 {
                if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            advance_lines(&bytes, i, j, &mut line);
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                line: start_line,
                text: bytes[start..end].iter().collect(),
            });
            i = j;
            continue;
        }
        // Raw / byte / C string prefixes and plain identifiers.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                j += 1;
            }
            let ident: String = bytes[start..j].iter().collect();
            // A string-literal prefix directly followed by `"` or `r#`-style
            // hashes is a literal, not an identifier.
            let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
            if is_str_prefix && j < n && (bytes[j] == '"' || bytes[j] == '#') {
                let raw = ident.contains('r');
                let (text, end) = if raw {
                    lex_raw_string(&bytes, j)
                } else {
                    lex_string(&bytes, j)
                };
                let start_line = line;
                advance_lines(&bytes, j, end, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line: start_line,
                });
                i = end;
                continue;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: ident,
                line,
            });
            i = j;
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let (text, end) = lex_string(&bytes, i);
            let start_line = line;
            advance_lines(&bytes, i, end, &mut line);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text,
                line: start_line,
            });
            i = end;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // `'ident` not followed by a closing quote is a lifetime.
            if i + 1 < n && (bytes[i + 1].is_alphabetic() || bytes[i + 1] == '_') {
                let mut j = i + 1;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                if j < n && bytes[j] == '\'' && j == i + 2 {
                    // Exactly one ident char then a quote: `'a'` is a char.
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: bytes[i + 1..j].iter().collect(),
                        line,
                    });
                    i = j + 1;
                    continue;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: bytes[i + 1..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            // Char literal with escapes: `'\n'`, `'\''`, `'"'`.
            let mut j = i + 1;
            while j < n {
                if bytes[j] == '\\' {
                    j += 2;
                    continue;
                }
                if bytes[j] == '\'' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            let start_line = line;
            advance_lines(&bytes, i, j.min(n), &mut line);
            out.tokens.push(Token {
                kind: TokenKind::Char,
                text: bytes[i + 1..j.saturating_sub(1).max(i + 1)]
                    .iter()
                    .collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Number: digits plus alphanumerics/underscores (covers hex, suffixes).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: bytes[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Everything else: one punctuation char per token.
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Lexes a plain (escaped) string starting at the opening `"`; returns the
/// contents and the index one past the closing quote.
fn lex_string(bytes: &[char], open: usize) -> (String, usize) {
    let n = bytes.len();
    let mut j = open + 1;
    let mut text = String::new();
    while j < n {
        match bytes[j] {
            '\\' => {
                if j + 1 < n {
                    text.push(bytes[j + 1]);
                }
                j += 2;
            }
            '"' => return (text, j + 1),
            other => {
                text.push(other);
                j += 1;
            }
        }
    }
    (text, n)
}

/// Lexes a raw string starting at the first `#` or `"` after the `r`
/// prefix; returns the contents and the index one past the closing
/// delimiter.
fn lex_raw_string(bytes: &[char], mut j: usize) -> (String, usize) {
    let n = bytes.len();
    let mut hashes = 0usize;
    while j < n && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || bytes[j] != '"' {
        // Not actually a raw string (e.g. `r#ident` raw identifier): treat
        // the consumed hashes as empty text and resume after them.
        return (String::new(), j);
    }
    j += 1;
    let start = j;
    while j < n {
        if bytes[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && bytes[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (bytes[start..j].iter().collect(), k);
            }
        }
        j += 1;
    }
    (bytes[start..].iter().collect(), n)
}

/// Matches `pattern` against the token texts starting at `at`, requiring
/// every pattern element to be a non-`Str`, non-`Char` token (so patterns
/// never match inside literals). Multi-char operators are written as their
/// chars: `::` is `":", ":"`.
pub fn match_seq(tokens: &[Token], at: usize, pattern: &[&str]) -> bool {
    if at + pattern.len() > tokens.len() {
        return false;
    }
    pattern.iter().enumerate().all(|(k, want)| {
        let t = &tokens[at + k];
        !matches!(t.kind, TokenKind::Str | TokenKind::Char) && t.text == *want
    })
}

/// The token's text for structural matching: literal tokens (strings and
/// chars) yield `""` so that delimiter and keyword matching never fires on
/// literal *content* — `'{'` and `"}"` are data, not structure.
pub fn structural(t: &Token) -> &str {
    match t.kind {
        TokenKind::Str | TokenKind::Char => "",
        _ => &t.text,
    }
}

/// Index of the matching close delimiter for the open delimiter at `open`
/// (`(`/`)`, `{`/`}`, `[`/`]`), or `tokens.len()` if `open` is not a punct
/// open delimiter or the stream is unbalanced from it.
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match structural(&tokens[open]) {
        "(" => ("(", ")"),
        "{" => ("{", "}"),
        "[" => ("[", "]"),
        _ => return tokens.len(),
    };
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                // A close with nothing open means `open` was not a punct
                // delimiter (or the slice is torn): report unbalanced
                // rather than underflowing.
                let Some(d) = depth.checked_sub(1) else {
                    return tokens.len();
                };
                depth = d;
                if depth == 0 {
                    return k;
                }
            }
        }
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_produce_ident_tokens() {
        let src = r##"
// Instant::now() in a comment
/* block Instant::now() */
let s = "Instant::now()";
let r = r#"Instant::now()"#;
let real = Instant::now();
"##;
        let lexed = lex(src);
        let instants: Vec<&Token> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text == "Instant")
            .collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(instants[0].line, 6);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = texts("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokenKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokenKind::Char, "x".into())));
    }

    #[test]
    fn escaped_quotes_and_raw_hashes_terminate_correctly() {
        let toks = texts(r##"let a = "he \"said\""; let b = r#"a "quoted" b"#; after"##);
        let strs: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0], "he \"said\"");
        assert_eq!(strs[1], "a \"quoted\" b");
        assert!(toks.contains(&(TokenKind::Ident, "after".into())));
    }

    #[test]
    fn nested_block_comments_close_at_depth_zero() {
        let toks = texts("before /* a /* nested */ still comment */ after");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "before".into()),
                (TokenKind::Ident, "after".into())
            ]
        );
    }

    #[test]
    fn match_seq_and_matching_close_pair_up() {
        let lexed = lex("x.try_send(ShardMsg::Barrier(seq)).ok();");
        let i = lexed
            .tokens
            .iter()
            .position(|t| t.text == "try_send")
            .expect("try_send token");
        assert!(match_seq(&lexed.tokens, i, &["try_send", "("]));
        let close = matching_close(&lexed.tokens, i + 1);
        assert_eq!(lexed.tokens[close].text, ")");
        // The close matches the outer paren, past the nested `(seq)`.
        assert_eq!(lexed.tokens[close + 1].text, ".");
    }

    #[test]
    fn multi_line_tokens_keep_the_line_map() {
        let src = "a\n\"two\nline\"\nb";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(
            lexed.tokens[2].line, 4,
            "line counter advanced past the literal"
        );
    }
}
