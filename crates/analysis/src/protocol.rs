//! The protocol verifier: checks the runtime's `ShardMsg`/`ApplierMsg`
//! message protocol against the declared spec in
//! `crates/analysis/protocol/runtime.protocol`.
//!
//! The runtime's correctness argument leans on properties the compiler
//! cannot see: lifecycle messages broadcast to *all* K appliers (a missed
//! broadcast is a silent hang — an applier that never hears a `Barrier`
//! never acks it), every `Barrier(seq)` answered by exactly one ack per
//! applier shard, no data traffic after `Shutdown`, `Resync` replies
//! bounded to one per request, and protocol `match`es kept wildcard-free so
//! a new variant cannot be silently dropped. This module extracts every
//! send/recv site of the protocol enums from `runtime/src` (over the
//! [`crate::parser`] AST), builds the per-channel message-sequence
//! automaton, checks it against the spec, and emits the automaton as
//! `target/analysis/protocol.{dot,json}`.
//!
//! The spec format is line-oriented (`channel` / `state` / `msg`
//! declarations) and documented in the spec file itself.

use crate::lexer::TokenKind;
use crate::parser::{self, Arm};
use crate::rules::{RULE_PROTOCOL, RULE_PROTOCOL_WILDCARD};
use crate::{json_escape, Finding, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Workspace-relative path of the protocol spec.
pub const SPEC_PATH: &str = "crates/analysis/protocol/runtime.protocol";

/// One declared state of a channel automaton.
#[derive(Debug, Clone)]
pub struct StateSpec {
    /// The state's name.
    pub name: String,
    /// `true` for the initial state.
    pub initial: bool,
    /// `true` for a final (absorbing) state.
    pub terminal: bool,
}

/// One declared message (= automaton transition) of a channel.
#[derive(Debug, Clone)]
pub struct MsgSpec {
    /// The enum variant's name.
    pub name: String,
    /// `data` (sheddable payload) or `lifecycle` (in-band, never shed).
    pub kind: String,
    /// If set, every send site must sit in a loop whose header contains
    /// this substring (the fan-out collection).
    pub broadcast: Option<String>,
    /// `true` if no data-kind send on this channel may follow this message
    /// in the sending function.
    pub terminal: bool,
    /// If set, the handling arm must send exactly once on the control
    /// channel whose receiver binding contains this substring.
    pub ack: Option<String>,
    /// If set, the handling arm must reply exactly once on the carried
    /// channel whose binding contains this substring.
    pub reply: Option<String>,
    /// If set, the handling arm counts toward a quorum compared against
    /// this ident in the receiving function.
    pub quorum: Option<String>,
    /// Source state.
    pub from: String,
    /// Target state.
    pub to: String,
}

/// One channel's declared automaton.
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    /// The protocol enum's name (`ShardMsg`, `ApplierMsg`).
    pub name: String,
    /// Declared states.
    pub states: Vec<StateSpec>,
    /// Declared messages/transitions.
    pub msgs: Vec<MsgSpec>,
}

/// The parsed protocol spec.
#[derive(Debug, Clone, Default)]
pub struct ProtocolSpec {
    /// Every declared channel.
    pub channels: Vec<ChannelSpec>,
}

impl ProtocolSpec {
    /// The channel named `name`, if declared.
    pub fn channel(&self, name: &str) -> Option<&ChannelSpec> {
        self.channels.iter().find(|c| c.name == name)
    }
}

/// Parses the line-oriented spec format.
pub fn parse_spec(text: &str) -> Result<ProtocolSpec, String> {
    let mut spec = ProtocolSpec::default();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: &str| format!("protocol spec line {}: {msg}: `{line}`", ln + 1);
        match words[0] {
            "channel" => {
                let name = words.get(1).ok_or_else(|| err("missing channel name"))?;
                spec.channels.push(ChannelSpec {
                    name: (*name).to_string(),
                    states: Vec::new(),
                    msgs: Vec::new(),
                });
            }
            "state" => {
                let chan = spec
                    .channels
                    .last_mut()
                    .ok_or_else(|| err("state before any channel"))?;
                let name = words.get(1).ok_or_else(|| err("missing state name"))?;
                chan.states.push(StateSpec {
                    name: (*name).to_string(),
                    initial: words.contains(&"initial"),
                    terminal: words.contains(&"final"),
                });
            }
            "msg" => {
                let chan = spec
                    .channels
                    .last_mut()
                    .ok_or_else(|| err("msg before any channel"))?;
                let name = words.get(1).ok_or_else(|| err("missing msg name"))?;
                // Trailing `<From> -> <To>`.
                let arrow = words
                    .iter()
                    .position(|w| *w == "->")
                    .ok_or_else(|| err("missing `From -> To` transition"))?;
                if arrow < 3 || arrow + 1 >= words.len() {
                    return Err(err("malformed `From -> To` transition"));
                }
                let mut msg = MsgSpec {
                    name: (*name).to_string(),
                    kind: String::new(),
                    broadcast: None,
                    terminal: false,
                    ack: None,
                    reply: None,
                    quorum: None,
                    from: words[arrow - 1].to_string(),
                    to: words[arrow + 1].to_string(),
                };
                for w in &words[2..arrow - 1] {
                    match w.split_once('=') {
                        Some(("kind", v)) => msg.kind = v.to_string(),
                        Some(("broadcast", v)) => msg.broadcast = Some(v.to_string()),
                        Some(("ack", v)) => msg.ack = Some(v.to_string()),
                        Some(("reply", v)) => msg.reply = Some(v.to_string()),
                        Some(("quorum", v)) => msg.quorum = Some(v.to_string()),
                        None if *w == "terminal" => msg.terminal = true,
                        _ => return Err(err(&format!("unknown msg attribute `{w}`"))),
                    }
                }
                if msg.kind != "data" && msg.kind != "lifecycle" {
                    return Err(err("msg needs kind=data or kind=lifecycle"));
                }
                for s in [&msg.from, &msg.to] {
                    if !chan.states.iter().any(|st| &st.name == s) {
                        return Err(err(&format!("undeclared state `{s}`")));
                    }
                }
                chan.msgs.push(msg);
            }
            other => return Err(err(&format!("unknown declaration `{other}`"))),
        }
    }
    for c in &spec.channels {
        if c.states.iter().filter(|s| s.initial).count() != 1 {
            return Err(format!("channel {}: exactly one initial state", c.name));
        }
    }
    Ok(spec)
}

/// One observed send site of a protocol message.
#[derive(Debug, Clone)]
pub struct SendSite {
    /// The channel (enum) name.
    pub channel: String,
    /// The variant sent.
    pub variant: String,
    /// `send` or `try_send`.
    pub method: String,
    /// The sending function.
    pub fn_name: String,
    /// Headers of the enclosing loops, outermost first.
    pub loops: Vec<String>,
    /// Ids of the enclosing loops (for same-loop queries).
    pub loop_ids: Vec<u32>,
    /// Visit order within the extraction (source order within a fn).
    pub seq: usize,
    /// File of the site.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// One arm of an observed protocol `match`.
#[derive(Debug, Clone)]
pub struct ArmSite {
    /// The variant the arm covers (`None` for wildcard/foreign patterns).
    pub variant: Option<String>,
    /// `true` for a `_` arm.
    pub wildcard: bool,
    /// Receiver chains (joined with `.`) of `send` calls inside the arm.
    pub sends: Vec<String>,
    /// Every ident token inside the arm body.
    pub idents: Vec<String>,
    /// 1-based line of the pattern.
    pub line: u32,
}

/// One observed `match` over a protocol enum.
#[derive(Debug, Clone)]
pub struct MatchSite {
    /// The channel (enum) name.
    pub channel: String,
    /// The function the match sits in.
    pub fn_name: String,
    /// Every ident token of the enclosing function (for quorum scans).
    pub fn_idents: Vec<String>,
    /// The arms.
    pub arms: Vec<ArmSite>,
    /// File of the site.
    pub file: String,
    /// 1-based line of the `match`.
    pub line: u32,
}

/// One transition of the emitted automaton: the spec msg plus observed
/// send/recv counts.
#[derive(Debug, Clone)]
pub struct Transition {
    /// The message (spec attrs included).
    pub msg: MsgSpec,
    /// Observed send sites.
    pub sends: usize,
    /// Observed handling arms across protocol matches.
    pub recv_arms: usize,
}

/// One channel of the emitted automaton.
#[derive(Debug, Clone)]
pub struct ChannelAutomaton {
    /// The channel name.
    pub name: String,
    /// Declared states.
    pub states: Vec<StateSpec>,
    /// Transitions with observed counts.
    pub transitions: Vec<Transition>,
}

/// The verifier's result: findings plus the automaton artifact.
#[derive(Debug, Default)]
pub struct ProtocolReport {
    /// Findings (spec mismatches, missed broadcasts, wildcard arms, …).
    pub findings: Vec<Finding>,
    /// The per-channel automaton (spec transitions + observed counts).
    pub automaton: Vec<ChannelAutomaton>,
    /// Every observed protocol send site.
    pub sends: Vec<SendSite>,
    /// Every observed protocol `match`.
    pub matches: Vec<MatchSite>,
}

impl ProtocolReport {
    /// `true` if the observed protocol matches the spec.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Loads the spec from `<root>/crates/analysis/protocol/runtime.protocol`
/// and verifies the runtime sources against it. A missing spec is tolerated
/// only while the tree has no protocol traffic (fixture workspaces).
pub fn check(ws: &Workspace) -> ProtocolReport {
    let runtime: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.rel.starts_with("crates/runtime/src/"))
        .collect();
    let spec_text = std::fs::read_to_string(ws.root.join(SPEC_PATH));
    match spec_text {
        Ok(text) => match parse_spec(&text) {
            Ok(spec) => check_files(&spec, &runtime),
            Err(e) => ProtocolReport {
                findings: vec![Finding {
                    rule: RULE_PROTOCOL,
                    path: SPEC_PATH.into(),
                    line: 0,
                    message: e,
                }],
                ..ProtocolReport::default()
            },
        },
        Err(_) => {
            // No spec: only acceptable while nothing speaks the protocol
            // (e.g. the synthetic workspaces of the CLI tests).
            let mut report = ProtocolReport::default();
            let has_protocol = runtime.iter().any(|f| {
                parser::parse(f).enums.iter().any(|e| {
                    e.variants.iter().any(|v| v == "Barrier" || v == "Shutdown")
                        && !f.in_test(e.line)
                })
            });
            if has_protocol {
                report.findings.push(Finding {
                    rule: RULE_PROTOCOL,
                    path: SPEC_PATH.into(),
                    line: 0,
                    message: "runtime sources define a lifecycle protocol enum but the protocol \
                              spec is missing — declare the automaton in the spec file"
                        .into(),
                });
            }
            report
        }
    }
}

/// Verifies `files` (the runtime sources, or a fixture emulating them)
/// against `spec`.
pub fn check_files(spec: &ProtocolSpec, files: &[&SourceFile]) -> ProtocolReport {
    let channel_names: BTreeSet<&str> = spec.channels.iter().map(|c| c.name.as_str()).collect();
    let mut findings = Vec::new();
    let mut sends: Vec<SendSite> = Vec::new();
    let mut matches: Vec<MatchSite> = Vec::new();
    // Observed enum definitions: name -> (variants, file, line).
    let mut enums: BTreeMap<String, (Vec<String>, String, u32)> = BTreeMap::new();
    let mut seq = 0usize;

    for f in files {
        let ast = parser::parse(f);
        for e in &ast.enums {
            if channel_names.contains(e.name.as_str()) && !f.in_test(e.line) {
                enums.insert(e.name.clone(), (e.variants.clone(), f.rel.clone(), e.line));
            }
        }
        for fun in &ast.fns {
            if f.in_test(fun.start_line) {
                continue;
            }
            parser::for_each_call(&fun.body, &mut |c, loops| {
                if !c.method
                    || !matches!(c.path.last().map(String::as_str), Some("send" | "try_send"))
                {
                    return;
                }
                let Some((channel, variant)) =
                    payload_variant(f, c.args_lo, c.args_hi, &channel_names)
                else {
                    return;
                };
                seq += 1;
                sends.push(SendSite {
                    channel,
                    variant,
                    method: c.path.last().cloned().unwrap_or_default(),
                    fn_name: fun.name.clone(),
                    loops: loops.iter().map(|(_, h)| (*h).to_string()).collect(),
                    loop_ids: loops.iter().map(|(id, _)| *id).collect(),
                    seq,
                    file: f.rel.clone(),
                    line: c.line,
                });
            });
            let fn_idents: Vec<String> = f
                .fns
                .iter()
                .find(|s| s.name == fun.name && s.start_line == fun.start_line)
                .map(|s| {
                    f.tokens[s.start_tok..=s.end_tok.min(f.tokens.len() - 1)]
                        .iter()
                        .filter(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone())
                        .collect()
                })
                .unwrap_or_default();
            parser::for_each_match(&fun.body, &mut |_, arms, line| {
                let Some(channel) = arms
                    .iter()
                    .find(|a| a.path.len() == 2 && channel_names.contains(a.path[0].as_str()))
                    .map(|a| a.path[0].clone())
                else {
                    return;
                };
                if f.in_test(line) {
                    return;
                }
                let arm_sites = arms
                    .iter()
                    .map(|a| arm_site(f, &channel, a))
                    .collect::<Vec<_>>();
                matches.push(MatchSite {
                    channel,
                    fn_name: fun.name.clone(),
                    fn_idents: fn_idents.clone(),
                    arms: arm_sites,
                    file: f.rel.clone(),
                    line,
                });
            });
        }
    }

    let by_rel: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.rel.as_str(), *f)).collect();
    let allowed =
        |rule: &str, file: &str, line: u32| by_rel.get(file).is_some_and(|f| f.allowed(rule, line));

    // 1. Spec channels exist as enums and the variant sets agree.
    for chan in &spec.channels {
        match enums.get(&chan.name) {
            None => findings.push(Finding {
                rule: RULE_PROTOCOL,
                path: SPEC_PATH.into(),
                line: 0,
                message: format!(
                    "spec declares channel `{}` but no such enum exists in the checked sources",
                    chan.name
                ),
            }),
            Some((variants, file, line)) => {
                let declared: BTreeSet<&str> = chan.msgs.iter().map(|m| m.name.as_str()).collect();
                let observed: BTreeSet<&str> = variants.iter().map(String::as_str).collect();
                for v in observed.difference(&declared) {
                    findings.push(Finding {
                        rule: RULE_PROTOCOL,
                        path: file.clone(),
                        line: *line,
                        message: format!(
                            "enum `{}` has variant `{v}` that the protocol spec does not \
                             declare — extend {SPEC_PATH} (kind, broadcast, transition) so \
                             the automaton stays checked",
                            chan.name
                        ),
                    });
                }
                for v in declared.difference(&observed) {
                    findings.push(Finding {
                        rule: RULE_PROTOCOL,
                        path: SPEC_PATH.into(),
                        line: 0,
                        message: format!(
                            "spec declares `{}::{v}` but the enum has no such variant",
                            chan.name
                        ),
                    });
                }
            }
        }
        // 2. Liveness of the declared surface: every message is sent
        // somewhere and some match receives the channel.
        for m in &chan.msgs {
            if enums.contains_key(&chan.name)
                && !sends
                    .iter()
                    .any(|s| s.channel == chan.name && s.variant == m.name)
            {
                findings.push(Finding {
                    rule: RULE_PROTOCOL,
                    path: SPEC_PATH.into(),
                    line: 0,
                    message: format!(
                        "`{}::{}` is declared in the spec but never sent — dead protocol \
                         surface (or the extractor cannot see the send site)",
                        chan.name, m.name
                    ),
                });
            }
        }
        if enums.contains_key(&chan.name) && !matches.iter().any(|m| m.channel == chan.name) {
            findings.push(Finding {
                rule: RULE_PROTOCOL,
                path: SPEC_PATH.into(),
                line: 0,
                message: format!(
                    "no `match` over `{}` found — the recv side is gone",
                    chan.name
                ),
            });
        }
    }

    // 3. Recv exhaustiveness: every protocol match covers every declared
    // variant and has no wildcard arm.
    for m in &matches {
        let Some(chan) = spec.channel(&m.channel) else {
            continue;
        };
        let covered: BTreeSet<&str> = m.arms.iter().filter_map(|a| a.variant.as_deref()).collect();
        for msg in &chan.msgs {
            if !covered.contains(msg.name.as_str()) {
                findings.push(Finding {
                    rule: RULE_PROTOCOL,
                    path: m.file.clone(),
                    line: m.line,
                    message: format!(
                        "`match` over `{}` has no arm for `{}::{}` — every protocol variant \
                         is handled explicitly (wildcards silently drop new variants)",
                        m.channel, m.channel, msg.name
                    ),
                });
            }
        }
        for a in m.arms.iter().filter(|a| a.wildcard) {
            if allowed(RULE_PROTOCOL_WILDCARD, &m.file, a.line) {
                continue;
            }
            findings.push(Finding {
                rule: RULE_PROTOCOL_WILDCARD,
                path: m.file.clone(),
                line: a.line,
                message: format!(
                    "wildcard `_` arm on protocol enum `{}` — name every variant so the \
                     compiler (and this lint) catch future protocol growth instead of \
                     silently dropping messages",
                    m.channel
                ),
            });
        }
    }

    // 4. Broadcast discipline: lifecycle fan-out sends sit in a loop over
    // the fan-out collection.
    for s in &sends {
        let Some(msg) = spec
            .channel(&s.channel)
            .and_then(|c| c.msgs.iter().find(|m| m.name == s.variant))
        else {
            continue;
        };
        if let Some(over) = &msg.broadcast {
            let broadcasting = s.loops.iter().any(|h| h.contains(over.as_str()));
            if !broadcasting && !allowed(RULE_PROTOCOL, &s.file, s.line) {
                findings.push(Finding {
                    rule: RULE_PROTOCOL,
                    path: s.file.clone(),
                    line: s.line,
                    message: format!(
                        "`{}::{}` sent outside a broadcast loop over `{over}` — lifecycle \
                         variants go to *all* receivers; a missed broadcast desynchronizes \
                         the quorum and hangs the pipeline",
                        s.channel, s.variant
                    ),
                });
            }
        }
    }

    // 5. Terminal ordering: no data-kind send after (or looping with) a
    // terminal send in the same function.
    for chan in &spec.channels {
        let data: BTreeSet<&str> = chan
            .msgs
            .iter()
            .filter(|m| m.kind == "data")
            .map(|m| m.name.as_str())
            .collect();
        for t in sends.iter().filter(|s| {
            s.channel == chan.name && chan.msgs.iter().any(|m| m.name == s.variant && m.terminal)
        }) {
            for d in sends.iter().filter(|s| {
                s.channel == chan.name
                    && data.contains(s.variant.as_str())
                    && s.file == t.file
                    && s.fn_name == t.fn_name
            }) {
                let after = d.seq > t.seq;
                let same_loop = d.loop_ids.iter().any(|id| t.loop_ids.contains(id));
                if (after || same_loop) && !allowed(RULE_PROTOCOL, &d.file, d.line) {
                    findings.push(Finding {
                        rule: RULE_PROTOCOL,
                        path: d.file.clone(),
                        line: d.line,
                        message: format!(
                            "data send `{}::{}` can execute after terminal `{}::{}` (line {}) \
                             in `{}` — the receiver is past its final state; nothing may \
                             follow the terminal message",
                            d.channel, d.variant, t.channel, t.variant, t.line, t.fn_name
                        ),
                    });
                }
            }
        }
    }

    // 6. Ack/reply/quorum discipline in the handling arms.
    for m in &matches {
        let Some(chan) = spec.channel(&m.channel) else {
            continue;
        };
        for msg in &chan.msgs {
            let Some(arm) = m
                .arms
                .iter()
                .find(|a| a.variant.as_deref() == Some(msg.name.as_str()))
            else {
                continue;
            };
            for (attr, chan_substr) in [("ack", &msg.ack), ("reply", &msg.reply)] {
                let Some(substr) = chan_substr else { continue };
                let n = arm
                    .sends
                    .iter()
                    .filter(|recv| recv.contains(substr.as_str()))
                    .count();
                if n != 1 && !allowed(RULE_PROTOCOL, &m.file, arm.line) {
                    findings.push(Finding {
                        rule: RULE_PROTOCOL,
                        path: m.file.clone(),
                        line: arm.line,
                        message: format!(
                            "`{}::{}` arm sends {n} time(s) on the `{substr}` {attr} channel — \
                             exactly one {attr} per message keeps the {} bounded",
                            m.channel,
                            msg.name,
                            if attr == "ack" {
                                "barrier quorum exact"
                            } else {
                                "in-flight replies"
                            }
                        ),
                    });
                }
            }
            if let Some(quorum) = &msg.quorum {
                let gated = arm.idents.iter().any(|i| i == quorum)
                    || arm
                        .idents
                        .iter()
                        .any(|i| ident_compared_to(&m.fn_idents_raw_pairs(), i, quorum));
                if !gated && !allowed(RULE_PROTOCOL, &m.file, arm.line) {
                    findings.push(Finding {
                        rule: RULE_PROTOCOL,
                        path: m.file.clone(),
                        line: arm.line,
                        message: format!(
                            "`{}::{}` arm does not gate on the `{quorum}` quorum — the action \
                             must fire only once all senders' copies arrived",
                            m.channel, msg.name
                        ),
                    });
                }
            }
        }
    }

    let automaton = build_automaton(spec, &sends, &matches);
    ProtocolReport {
        findings,
        automaton,
        sends,
        matches,
    }
}

impl MatchSite {
    /// Adjacent ident pairs of the enclosing fn, for quorum-comparison
    /// scans (`done < workers` appears as the pair `(done, workers)` once
    /// puncts are dropped).
    fn fn_idents_raw_pairs(&self) -> Vec<(&str, &str)> {
        self.fn_idents
            .windows(2)
            .map(|w| (w[0].as_str(), w[1].as_str()))
            .collect()
    }
}

/// `true` if ident `x` appears directly before `quorum` in the fn's ident
/// stream — the shape of a comparison (`done < workers`, `acks == workers`)
/// after punctuation is dropped.
fn ident_compared_to(pairs: &[(&str, &str)], x: &str, quorum: &str) -> bool {
    pairs.iter().any(|(a, b)| *a == x && *b == quorum)
}

/// Extracts `(channel, variant)` from a send's argument token range: the
/// first `Chan :: Variant` path whose `Chan` is a declared protocol enum.
fn payload_variant(
    f: &SourceFile,
    lo: usize,
    hi: usize,
    channels: &BTreeSet<&str>,
) -> Option<(String, String)> {
    let toks = &f.tokens;
    let hi = hi.min(toks.len());
    let mut k = lo;
    while k + 3 < hi {
        if toks[k].kind == TokenKind::Ident
            && channels.contains(toks[k].text.as_str())
            && toks[k + 1].text == ":"
            && toks[k + 2].text == ":"
            && toks[k + 3].kind == TokenKind::Ident
        {
            return Some((toks[k].text.clone(), toks[k + 3].text.clone()));
        }
        k += 1;
    }
    None
}

/// Builds an [`ArmSite`] from a parsed arm: variant/wildcard from the
/// pattern, send receiver chains from the body tree, idents from the body
/// token range.
fn arm_site(f: &SourceFile, channel: &str, a: &Arm) -> ArmSite {
    let variant = (a.path.len() == 2 && a.path[0] == channel).then(|| a.path[1].clone());
    let mut arm_sends = Vec::new();
    parser::for_each_call(&a.body, &mut |c, _| {
        if c.method && matches!(c.path.last().map(String::as_str), Some("send" | "try_send")) {
            arm_sends.push(c.receiver.join("."));
        }
    });
    let idents = f.tokens[a.body_lo..a.body_hi.min(f.tokens.len())]
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    ArmSite {
        variant,
        wildcard: a.wildcard,
        sends: arm_sends,
        idents,
        line: a.line,
    }
}

/// Assembles the automaton artifact: spec transitions annotated with
/// observed send/recv counts.
fn build_automaton(
    spec: &ProtocolSpec,
    sends: &[SendSite],
    matches: &[MatchSite],
) -> Vec<ChannelAutomaton> {
    spec.channels
        .iter()
        .map(|chan| ChannelAutomaton {
            name: chan.name.clone(),
            states: chan.states.clone(),
            transitions: chan
                .msgs
                .iter()
                .map(|m| Transition {
                    msg: m.clone(),
                    sends: sends
                        .iter()
                        .filter(|s| s.channel == chan.name && s.variant == m.name)
                        .count(),
                    recv_arms: matches
                        .iter()
                        .filter(|ms| ms.channel == chan.name)
                        .flat_map(|ms| ms.arms.iter())
                        .filter(|a| a.variant.as_deref() == Some(m.name.as_str()))
                        .count(),
                })
                .collect(),
        })
        .collect()
}

/// Renders the automaton as a Graphviz DOT digraph: one cluster per
/// channel, circles for states (doublecircle = final), edges labelled with
/// the message and its attributes.
pub fn to_dot(report: &ProtocolReport) -> String {
    let mut out =
        String::from("digraph swift_protocol {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n");
    for (i, chan) in report.automaton.iter().enumerate() {
        out.push_str(&format!(
            "  subgraph cluster_{i} {{\n    label=\"{}\";\n",
            chan.name
        ));
        for s in &chan.states {
            let shape = if s.terminal { "doublecircle" } else { "circle" };
            let style = if s.initial { ", style=bold" } else { "" };
            out.push_str(&format!(
                "    \"{}.{}\" [shape={shape}{style}, label=\"{}\"];\n",
                chan.name, s.name, s.name
            ));
        }
        for t in &chan.transitions {
            let mut attrs = vec![t.msg.kind.clone()];
            if t.msg.broadcast.is_some() {
                attrs.push("broadcast".into());
            }
            if t.msg.terminal {
                attrs.push("terminal".into());
            }
            if t.msg.ack.is_some() {
                attrs.push("ack".into());
            }
            if t.msg.reply.is_some() {
                attrs.push("reply".into());
            }
            if t.msg.quorum.is_some() {
                attrs.push("quorum".into());
            }
            out.push_str(&format!(
                "    \"{0}.{1}\" -> \"{0}.{2}\" [label=\"{3}\\n[{4}]\"];\n",
                chan.name,
                t.msg.from,
                t.msg.to,
                t.msg.name,
                attrs.join(",")
            ));
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

/// Renders the automaton + observed sites as JSON (hand-rolled — the
/// workspace is offline, no serde).
pub fn to_json(report: &ProtocolReport) -> String {
    let mut out = String::from("{\n  \"channels\": [");
    let mut first_chan = true;
    for chan in &report.automaton {
        if !first_chan {
            out.push(',');
        }
        first_chan = false;
        out.push_str(&format!(
            "\n    {{\n      \"name\": \"{}\",\n      \"states\": [",
            chan.name
        ));
        let mut first = true;
        for s in &chan.states {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n        {{\"name\": \"{}\", \"initial\": {}, \"final\": {}}}",
                json_escape(&s.name),
                s.initial,
                s.terminal
            ));
        }
        out.push_str("\n      ],\n      \"transitions\": [");
        first = true;
        for t in &chan.transitions {
            if !first {
                out.push(',');
            }
            first = false;
            let opt = |v: &Option<String>| match v {
                Some(s) => format!("\"{}\"", json_escape(s)),
                None => "null".into(),
            };
            out.push_str(&format!(
                "\n        {{\"msg\": \"{}\", \"kind\": \"{}\", \"from\": \"{}\", \"to\": \"{}\", \
                 \"broadcast\": {}, \"terminal\": {}, \"ack\": {}, \"reply\": {}, \
                 \"quorum\": {}, \"send_sites\": {}, \"recv_arms\": {}}}",
                json_escape(&t.msg.name),
                json_escape(&t.msg.kind),
                json_escape(&t.msg.from),
                json_escape(&t.msg.to),
                opt(&t.msg.broadcast),
                t.msg.terminal,
                opt(&t.msg.ack),
                opt(&t.msg.reply),
                opt(&t.msg.quorum),
                t.sends,
                t.recv_arms
            ));
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ],\n  \"sends\": [");
    let mut first = true;
    for s in &report.sends {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"channel\": \"{}\", \"variant\": \"{}\", \"method\": \"{}\", \"fn\": \"{}\", \
             \"broadcast_loop\": {}, \"file\": \"{}\", \"line\": {}}}",
            json_escape(&s.channel),
            json_escape(&s.variant),
            json_escape(&s.method),
            json_escape(&s.fn_name),
            !s.loops.is_empty(),
            json_escape(&s.file),
            s.line
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"matches\": {},\n  \"clean\": {}\n}}\n",
        report.matches.len(),
        report.clean()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI_SPEC: &str = "\
channel ShardMsg
state Running initial
state Stopped final
msg Batch kind=data Running -> Running
msg Shutdown kind=lifecycle broadcast=shard_txs terminal Running -> Stopped
";

    #[test]
    fn spec_parses_states_msgs_and_attrs() {
        let spec = parse_spec(MINI_SPEC).expect("parses");
        let chan = spec.channel("ShardMsg").expect("channel");
        assert_eq!(chan.states.len(), 2);
        assert!(chan.states[0].initial && chan.states[1].terminal);
        assert_eq!(chan.msgs[0].kind, "data");
        let shutdown = &chan.msgs[1];
        assert!(shutdown.terminal);
        assert_eq!(shutdown.broadcast.as_deref(), Some("shard_txs"));
        assert_eq!(
            (shutdown.from.as_str(), shutdown.to.as_str()),
            ("Running", "Stopped")
        );
    }

    #[test]
    fn spec_rejects_undeclared_states_and_bad_kinds() {
        assert!(parse_spec("channel C\nstate A initial\nmsg M kind=data A -> B\n").is_err());
        assert!(parse_spec("channel C\nstate A initial\nmsg M kind=odd A -> A\n").is_err());
        assert!(parse_spec("state A initial\n").is_err());
    }

    #[test]
    fn terminal_ordering_catches_data_after_shutdown() {
        let spec = parse_spec(MINI_SPEC).expect("parses");
        let f = SourceFile::parse(
            "crates/runtime/src/lib.rs",
            "enum ShardMsg { Batch(u64), Shutdown }\n\
             fn stop(txs: &[Tx]) {\n\
               for tx in txs.iter() { let _ = tx.send(ShardMsg::Shutdown); }\n\
               txs[0].send(ShardMsg::Batch(1)).ok();\n\
             }\n\
             fn feed(tx: &Tx) { tx.send(ShardMsg::Batch(2)).ok(); }\n\
             fn pump(rx: Rx) { match rx.recv() { Ok(m) => match m { ShardMsg::Batch(_) => {}, \
             ShardMsg::Shutdown => {} }, Err(_) => {} } }\n",
        );
        let report = check_files(&spec, &[&f]);
        let terminal: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.message.contains("terminal"))
            .collect();
        assert_eq!(terminal.len(), 1, "{:#?}", report.findings);
        assert_eq!(terminal[0].line, 4);
        // The broadcast loop is missing around… no: Shutdown is in a loop
        // over `txs` which does not mention `shard_txs` — that finding
        // fires too, proving the broadcast check reads the header.
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("broadcast")),
            "{:#?}",
            report.findings
        );
    }
}
