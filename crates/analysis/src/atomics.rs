//! The atomic-ordering auditor: classifies every atomic operation in the
//! workspace into a role by usage pattern and enforces the ordering rules
//! that role implies.
//!
//! The runtime's lock-free counters all use `Ordering::Relaxed`, and for
//! most of them that is exactly right — a statistics counter or a depth
//! gauge carries no happens-before obligation. But a *handshake flag*
//! (a boolean whose load gates another thread's memory reads, like the
//! runtime's `shutdown` flag) is a different animal: Relaxed there means
//! the reader can observe the flag without observing the writes the flag
//! is supposed to publish. The auditor tells those cases apart
//! mechanically:
//!
//! * every atomic method call carrying an `Ordering::…` argument is a
//!   **site**; sites group by the receiver's field identity
//!   (`Counter.0`, `EpochClock.cached`, `shutdown`, `depth`);
//! * each group gets a **role** from its op mix: `flag` (AtomicBool, or
//!   store+load/swap/compare-exchange), `watermark` (fetch_max/fetch_min),
//!   `gauge` (fetch_add + fetch_sub), `counter` (fetch_add only),
//!   `statistic` (one-sided loads or stores);
//! * Relaxed is accepted for every role except `flag`. A flag group must
//!   either be Release/Acquire-paired, have every writer→reader thread
//!   pair connected by a channel edge the topology graph proves (a
//!   channel send/recv is itself a release/acquire pair), or carry a
//!   reasoned `// swift-lint: allow(atomic-ordering)` pragma on the
//!   offending sites.
//!
//! The classification is emitted as `target/analysis/atomics.json` so the
//! role table is reviewable, and every site must classify — an
//! `unclassified` group is itself a finding.

use crate::lexer::TokenKind;
use crate::parser;
use crate::rules::RULE_ATOMIC_ORDERING;
use crate::topology;
use crate::{json_escape, Finding, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Atomic methods that take an `Ordering` and write the value.
const WRITE_OPS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Atomic methods that read the value (RMW ops both read and write).
const READ_OPS: &[&str] = &["load", "swap", "compare_exchange", "compare_exchange_weak"];

/// One observed atomic operation.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// The group key: `Type.field` for `self.field` receivers inside an
    /// impl block (`EpochClock.cached`, `Counter.0`), else the last
    /// element of the receiver chain (`shutdown`, `depth`) — which is what
    /// lets the same shared field group across files.
    pub identity: String,
    /// The method (`load`, `store`, `fetch_add`, …).
    pub op: String,
    /// Every `Ordering::X` name in the argument list (two for
    /// compare-exchange).
    pub orderings: Vec<String>,
    /// The thread node the site runs on, per the topology node map.
    pub node: String,
    /// `true` if the node came from an actual spawn-body mapping rather
    /// than the file-based producer/coordinator fallback. Same-node
    /// "already ordered" proofs require a real mapping on both sides.
    pub mapped: bool,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// One identity group with its inferred role and verdict.
#[derive(Debug, Clone)]
pub struct AtomicGroup {
    /// The group key (see [`AtomicSite::identity`]).
    pub identity: String,
    /// The declared atomic type, when a field declaration was found
    /// (`AtomicBool`, `AtomicU64`, …).
    pub ty: Option<String>,
    /// The inferred role: `flag`, `watermark`, `gauge`, `counter`,
    /// `statistic` or `unclassified`.
    pub role: &'static str,
    /// How the group satisfies (or fails) its role's ordering rule:
    /// `relaxed-ok`, `release-acquire`, `channel-edge`, `pragma` or
    /// `unsound`.
    pub verdict: &'static str,
    /// Indices into [`AtomicsReport::sites`].
    pub sites: Vec<usize>,
}

/// The auditor's result.
#[derive(Debug, Default)]
pub struct AtomicsReport {
    /// Every observed site, in scan order.
    pub sites: Vec<AtomicSite>,
    /// The identity groups, sorted by key.
    pub groups: Vec<AtomicGroup>,
    /// Ordering violations and unclassifiable groups.
    pub findings: Vec<Finding>,
}

impl AtomicsReport {
    /// `true` if every group classified and satisfied its ordering rule.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The group for `identity`, if observed.
    pub fn group(&self, identity: &str) -> Option<&AtomicGroup> {
        self.groups.iter().find(|g| g.identity == identity)
    }
}

/// Audits the workspace: every `crates/*/src` file (benches are out of
/// scope — they exercise the runtime, they are not part of it).
pub fn check(ws: &Workspace) -> AtomicsReport {
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| !f.rel.contains("/benches/"))
        .collect();
    check_files(&files)
}

/// Audits `files` (the workspace sources, or a fixture).
pub fn check_files(files: &[&SourceFile]) -> AtomicsReport {
    let mut report = AtomicsReport::default();
    let (fn_node, _) = topology::node_map(files);

    // The type oracle: field name → declared atomic type.
    let mut field_ty: BTreeMap<String, String> = BTreeMap::new();
    for f in files {
        for fd in parser::parse(f).atomic_fields {
            field_ty.entry(fd.name).or_insert(fd.atomic);
        }
    }

    for f in files {
        let ast = parser::parse(f);
        for fun in &ast.fns {
            if f.in_test(fun.start_line) {
                continue;
            }
            parser::for_each_call(&fun.body, &mut |c, _| {
                if !c.method {
                    return;
                }
                let op = match c.path.last() {
                    Some(op) if WRITE_OPS.contains(&op.as_str()) || op == "load" => op.clone(),
                    _ => return,
                };
                let orderings = ordering_args(f, c.args_lo, c.args_hi);
                if orderings.is_empty() {
                    return; // `Vec::swap`, `HashMap::… ` — not an atomic op
                }
                let identity = match (c.receiver.as_slice(), &fun.impl_type) {
                    ([s, field], Some(ty)) if s == "self" => format!("{ty}.{field}"),
                    (chain, _) => chain.last().cloned().unwrap_or_else(|| "<expr>".into()),
                };
                let mapped = f
                    .enclosing_fn(c.line)
                    .is_some_and(|span| fn_node.contains_key(&span.name));
                report.sites.push(AtomicSite {
                    identity,
                    op,
                    orderings,
                    node: topology::node_of(f, c.line, &fn_node),
                    mapped,
                    file: f.rel.clone(),
                    line: c.line,
                });
            });
        }
    }

    let by_rel: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.rel.as_str(), *f)).collect();
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, s) in report.sites.iter().enumerate() {
        groups.entry(s.identity.clone()).or_default().push(i);
    }

    // Channel-edge reachability between thread nodes, for flag proofs.
    let topo = topology::extract(files);
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    for s in &topo.sends {
        for r in topo.recvs.iter().filter(|r| r.channel == s.channel) {
            edges.insert((s.node.clone(), r.node.clone()));
        }
    }

    for (identity, site_ids) in groups {
        let ty = field_ty
            .get(&identity)
            .or_else(|| field_ty.get(identity.rsplit('.').next().unwrap_or(&identity)))
            .cloned();
        let ops: BTreeSet<&str> = site_ids
            .iter()
            .map(|&i| report.sites[i].op.as_str())
            .collect();
        let role = classify(ty.as_deref(), &ops);
        let mut verdict = if role == "flag" {
            flag_verdict(
                &report.sites,
                &site_ids,
                &edges,
                &by_rel,
                &mut report.findings,
            )
        } else {
            "relaxed-ok"
        };
        if role == "unclassified" {
            verdict = "unsound";
            let s = &report.sites[site_ids[0]];
            report.findings.push(Finding {
                rule: RULE_ATOMIC_ORDERING,
                path: s.file.clone(),
                line: s.line,
                message: format!(
                    "atomic `{identity}` has an op mix ({}) the auditor cannot classify — \
                     every atomic site must map to a role (flag/watermark/gauge/counter/\
                     statistic) so its ordering rule is known",
                    ops.iter().copied().collect::<Vec<_>>().join(", ")
                ),
            });
        }
        report.groups.push(AtomicGroup {
            identity,
            ty,
            role,
            verdict,
            sites: site_ids,
        });
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
}

/// Infers a group's role from its declared type and op mix.
fn classify(ty: Option<&str>, ops: &BTreeSet<&str>) -> &'static str {
    let has = |op: &str| ops.contains(op);
    if ty == Some("AtomicBool") {
        return "flag";
    }
    if has("fetch_max") || has("fetch_min") {
        return "watermark";
    }
    if has("fetch_add") && has("fetch_sub") {
        return "gauge";
    }
    if has("fetch_add") || has("fetch_sub") {
        return "counter";
    }
    if has("swap") || has("compare_exchange") || has("compare_exchange_weak") {
        return "flag";
    }
    if has("store") && has("load") {
        return "flag";
    }
    if has("load") || has("store") {
        return "statistic";
    }
    "unclassified"
}

/// Decides how a flag group satisfies its pairing rule, pushing findings
/// for the sites that don't.
fn flag_verdict(
    sites: &[AtomicSite],
    ids: &[usize],
    edges: &BTreeSet<(String, String)>,
    by_rel: &BTreeMap<&str, &SourceFile>,
    findings: &mut Vec<Finding>,
) -> &'static str {
    let release_ok = |s: &AtomicSite| {
        s.orderings
            .iter()
            .any(|o| matches!(o.as_str(), "Release" | "AcqRel" | "SeqCst"))
    };
    let acquire_ok = |s: &AtomicSite| {
        s.orderings
            .iter()
            .any(|o| matches!(o.as_str(), "Acquire" | "AcqRel" | "SeqCst"))
    };
    let writes: Vec<&AtomicSite> = ids
        .iter()
        .map(|&i| &sites[i])
        .filter(|s| WRITE_OPS.contains(&s.op.as_str()))
        .collect();
    let reads: Vec<&AtomicSite> = ids
        .iter()
        .map(|&i| &sites[i])
        .filter(|s| READ_OPS.contains(&s.op.as_str()))
        .collect();

    if writes.iter().all(|s| release_ok(s)) && reads.iter().all(|s| acquire_ok(s)) {
        return "release-acquire";
    }

    // Channel-edge proof: every writer thread reaches every reader thread
    // over at least one channel hop (send/recv is a release/acquire pair),
    // so the flag's payload is published by the channel, not the flag.
    // Same-node needs no ordering at all — but only when both sides carry a
    // *real* spawn-body mapping; two sites that merely defaulted to the
    // same fallback node prove nothing.
    let reachable = |from: &str, to: &str| {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for (_, b) in edges.iter().filter(|(a, _)| a == n) {
                if b == to {
                    return true;
                }
                stack.push(b.as_str());
            }
        }
        false
    };
    if !writes.is_empty()
        && !reads.is_empty()
        && writes.iter().all(|w| {
            reads.iter().all(|r| {
                if w.node == r.node {
                    w.mapped && r.mapped
                } else {
                    reachable(&w.node, &r.node)
                }
            })
        })
    {
        return "channel-edge";
    }

    let offending: Vec<&AtomicSite> = writes
        .iter()
        .filter(|s| !release_ok(s))
        .chain(reads.iter().filter(|s| !acquire_ok(s)))
        .copied()
        .collect();
    let allowed = |s: &AtomicSite| {
        by_rel
            .get(s.file.as_str())
            .is_some_and(|f| f.allowed(RULE_ATOMIC_ORDERING, s.line))
    };
    if !offending.is_empty() && offending.iter().all(|s| allowed(s)) {
        return "pragma";
    }
    for s in offending.iter().filter(|s| !allowed(s)) {
        let side = if WRITE_OPS.contains(&s.op.as_str()) && !release_ok(s) {
            ("write", "Release")
        } else {
            ("read", "Acquire")
        };
        findings.push(Finding {
            rule: RULE_ATOMIC_ORDERING,
            path: s.file.clone(),
            line: s.line,
            message: format!(
                "`{}` is a handshake flag but this {} uses {} — a flag gating another \
                 thread's reads must be {}-side {} (or be proven by a channel edge, or \
                 carry a reasoned `swift-lint: allow(atomic-ordering)` pragma)",
                s.identity,
                side.0,
                s.orderings.join("/"),
                side.0,
                side.1
            ),
        });
    }
    "unsound"
}

/// Collects every `Ordering::X` name in the token range `[lo, hi)`.
fn ordering_args(f: &SourceFile, lo: usize, hi: usize) -> Vec<String> {
    let toks = &f.tokens;
    let hi = hi.min(toks.len());
    let mut out = Vec::new();
    let mut k = lo;
    while k + 3 < hi {
        if toks[k].kind == TokenKind::Ident
            && toks[k].text == "Ordering"
            && toks[k + 1].text == ":"
            && toks[k + 2].text == ":"
            && toks[k + 3].kind == TokenKind::Ident
        {
            out.push(toks[k + 3].text.clone());
            k += 4;
        } else {
            k += 1;
        }
    }
    out
}

/// Renders the classification as JSON for `target/analysis/atomics.json`.
pub fn to_json(report: &AtomicsReport) -> String {
    let mut out = String::from("{\n  \"groups\": [");
    let mut first = true;
    for g in &report.groups {
        if !first {
            out.push(',');
        }
        first = false;
        let ty = match &g.ty {
            Some(t) => format!("\"{}\"", json_escape(t)),
            None => "null".into(),
        };
        out.push_str(&format!(
            "\n    {{\n      \"identity\": \"{}\",\n      \"type\": {ty},\n      \
             \"role\": \"{}\",\n      \"verdict\": \"{}\",\n      \"sites\": [",
            json_escape(&g.identity),
            g.role,
            g.verdict
        ));
        let mut first_site = true;
        for &i in &g.sites {
            let s = &report.sites[i];
            if !first_site {
                out.push(',');
            }
            first_site = false;
            out.push_str(&format!(
                "\n        {{\"op\": \"{}\", \"orderings\": [{}], \"node\": \"{}\", \
                 \"file\": \"{}\", \"line\": {}}}",
                json_escape(&s.op),
                s.orderings
                    .iter()
                    .map(|o| format!("\"{}\"", json_escape(o)))
                    .collect::<Vec<_>>()
                    .join(", "),
                json_escape(&s.node),
                json_escape(&s.file),
                s.line
            ));
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str(&format!(
        "\n  ],\n  \"sites\": {},\n  \"clean\": {}\n}}\n",
        report.sites.len(),
        report.clean()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(src: &str) -> AtomicsReport {
        let f = SourceFile::parse("crates/runtime/src/lib.rs", src);
        check_files(&[&f])
    }

    #[test]
    fn roles_classify_by_op_mix() {
        let report = audit(
            "struct S { hits: AtomicU64, depth: AtomicUsize, high: AtomicU64 }\n\
             impl S {\n\
               fn a(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
               fn b(&self) { self.depth.fetch_add(1, Ordering::Relaxed); \
                             self.depth.fetch_sub(1, Ordering::Relaxed); }\n\
               fn c(&self) { self.high.fetch_max(9, Ordering::Relaxed); }\n\
             }\n",
        );
        assert!(report.clean(), "{:#?}", report.findings);
        assert_eq!(report.group("S.hits").map(|g| g.role), Some("counter"));
        assert_eq!(report.group("S.depth").map(|g| g.role), Some("gauge"));
        assert_eq!(report.group("S.high").map(|g| g.role), Some("watermark"));
    }

    #[test]
    fn relaxed_flag_pair_is_unsound_without_a_proof() {
        let report = audit(
            "struct S { done: AtomicBool }\n\
             fn w(s: &S) { s.done.store(true, Ordering::Relaxed); }\n\
             fn r(s: &S) { while !s.done.load(Ordering::Relaxed) {} }\n",
        );
        let g = report.group("done").expect("grouped");
        assert_eq!((g.role, g.verdict), ("flag", "unsound"));
        assert_eq!(report.findings.len(), 2, "{:#?}", report.findings);
    }

    #[test]
    fn release_acquire_pairing_is_clean() {
        let report = audit(
            "struct S { done: AtomicBool }\n\
             fn w(s: &S) { s.done.store(true, Ordering::Release); }\n\
             fn r(s: &S) { while !s.done.load(Ordering::Acquire) {} }\n",
        );
        let g = report.group("done").expect("grouped");
        assert_eq!((g.role, g.verdict), ("flag", "release-acquire"));
        assert!(report.clean(), "{:#?}", report.findings);
    }

    #[test]
    fn unpaired_release_store_flags_the_relaxed_load() {
        let report = audit(
            "struct S { done: AtomicBool }\n\
             fn w(s: &S) { s.done.store(true, Ordering::Release); }\n\
             fn r(s: &S) { s.done.load(Ordering::Relaxed); }\n",
        );
        assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
        assert_eq!(report.findings[0].line, 3);
        assert!(report.findings[0].message.contains("Acquire"));
    }

    #[test]
    fn pragma_on_every_offending_site_downgrades_to_pragma_verdict() {
        let report = audit(
            "struct S { done: AtomicBool }\n\
             fn w(s: &S) { s.done.store(true, Ordering::Release); }\n\
             // swift-lint: allow(atomic-ordering) -- reader only polls for liveness\n\
             fn r(s: &S) { s.done.load(Ordering::Relaxed); }\n",
        );
        assert!(report.clean(), "{:#?}", report.findings);
        assert_eq!(report.group("done").map(|g| g.verdict), Some("pragma"));
    }

    #[test]
    fn channel_edge_between_writer_and_reader_threads_proves_the_flag() {
        let report = audit(
            "struct S { done: AtomicBool }\n\
             fn build(s: Arc<S>) {\n\
               let (tx, rx) = mpsc::sync_channel(8);\n\
               std::thread::Builder::new().name(\"swift-worker\".into())\
                 .spawn(move || worker_loop(rx, s)).expect(\"spawn\");\n\
               producer_loop(tx, s2);\n\
             }\n\
             fn producer_loop(tx: SyncSender<u64>, s: Arc<S>) {\n\
               s.done.store(true, Ordering::Relaxed);\n\
               tx.send(1).expect(\"send\");\n\
             }\n\
             fn worker_loop(rx: Receiver<u64>, s: Arc<S>) {\n\
               while let Ok(v) = rx.recv() { let _ = s.done.load(Ordering::Relaxed); }\n\
             }\n",
        );
        let g = report.group("done").expect("grouped");
        assert_eq!(
            (g.role, g.verdict),
            ("flag", "channel-edge"),
            "{:#?}",
            report.findings
        );
        assert!(report.clean(), "{:#?}", report.findings);
    }
}
