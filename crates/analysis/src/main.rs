//! The `swift-analysis` CLI: `check` runs the workspace lint, the
//! concurrency-topology checker, the message-protocol verifier and the
//! atomic-ordering auditor, prints rustc-style findings, writes the
//! artifacts (topology + protocol DOT/JSON, atomics classification, SARIF)
//! and exits nonzero on any finding so CI can gate on it. `rules` lists the
//! rule keys for pragma authors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use swift_analysis::{
    atomics, find_workspace_root, json_escape, protocol, rules, sarif, topology, Finding, Workspace,
};

const USAGE: &str = "usage: swift-analysis <command> [options]

commands:
  check      run the workspace lint + topology + protocol + atomics checks
  rules      list the lint rule keys accepted by `swift-lint: allow(...)`

options (check):
  --json             print findings as a JSON array on stdout
  --sarif            also write findings.sarif (SARIF 2.1.0) to the out-dir
  --root <dir>       workspace root (default: walk up from the cwd)
  --out-dir <dir>    artifact directory (default: <root>/target/analysis)
  --budget-ms <n>    fail (rule `budget`) if the whole check takes longer
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for rule in rules::KNOWN_RULES {
                println!("{rule}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parsed `check` options.
struct Opts {
    json: bool,
    sarif: bool,
    root: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    budget_ms: Option<u64>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        json: false,
        sarif: false,
        root: None,
        out_dir: None,
        budget_ms: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--root" => {
                opts.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--out-dir" => {
                opts.out_dir = Some(PathBuf::from(
                    it.next().ok_or("--out-dir needs a directory")?,
                ));
            }
            "--budget-ms" => {
                let v = it.next().ok_or("--budget-ms needs a number")?;
                opts.budget_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--budget-ms: `{v}` is not a number"))?,
                );
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn check(args: &[String]) -> ExitCode {
    let started = Instant::now();
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("swift-analysis: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("swift-analysis: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "swift-analysis: failed to load workspace under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    // Layer: the lint rules.
    let mut findings: Vec<Finding> = Vec::new();
    for file in &ws.files {
        findings.extend(rules::check_file(file));
    }

    // Layer: the topology checks.
    let report = topology::check(&ws);
    findings.extend(report.findings.iter().cloned());
    if let Some(cycle) = &report.blocking_cycle {
        findings.push(Finding {
            rule: "topology",
            path: "crates/runtime/src/lib.rs".into(),
            line: 0,
            message: format!(
                "cycle of blocking sends through the thread graph: {} — under \
                 `BackpressurePolicy::Block` this can deadlock; acks must flow on \
                 unbounded control channels",
                cycle.join(" -> ")
            ),
        });
    }
    if let Some(cycle) = &report.lock_cycle {
        findings.push(Finding {
            rule: "topology",
            path: "workspace".into(),
            line: 0,
            message: format!(
                "lock-order cycle: {} — two threads can take these mutexes in opposite \
                 orders and deadlock",
                cycle.join(" -> ")
            ),
        });
    }

    // Layer: the protocol verifier.
    let proto = protocol::check(&ws);
    findings.extend(proto.findings.iter().cloned());

    // Layer: the atomic-ordering auditor.
    let atomics_report = atomics::check(&ws);
    findings.extend(atomics_report.findings.iter().cloned());

    // The analyzer's own runtime budget (CI keeps the full check < 10 s so
    // the lint can't rot into the slow path).
    if let Some(budget) = opts.budget_ms {
        let took = started.elapsed().as_millis() as u64;
        if took > budget {
            findings.push(Finding {
                rule: rules::RULE_BUDGET,
                path: "workspace".into(),
                line: 0,
                message: format!(
                    "swift-analysis took {took} ms against a --budget-ms of {budget} — \
                     the analyzer must stay out of CI's slow path"
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));

    // Artifacts.
    let out_dir = opts
        .out_dir
        .unwrap_or_else(|| root.join("target").join("analysis"));
    if let Err(e) = write_artifacts(
        &out_dir,
        &report,
        &proto,
        &atomics_report,
        &findings,
        opts.sarif,
    ) {
        eprintln!(
            "swift-analysis: failed to write artifacts under {}: {e}",
            out_dir.display()
        );
        return ExitCode::from(2);
    }

    if opts.json {
        println!("{}", findings_json(&findings));
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        let nodes: Vec<&str> = {
            let mut seen = Vec::new();
            for n in &report.topology.nodes {
                if !seen.contains(&n.name.as_str()) {
                    seen.push(n.name.as_str());
                }
            }
            seen
        };
        let proto_msgs: usize = proto.automaton.iter().map(|c| c.transitions.len()).sum();
        eprintln!(
            "swift-analysis: {} file(s), {} finding(s); topology: {} thread class(es) [{}], \
             {} channel(s), blocking-send graph {}, lock graph {} ({} edge(s)); protocol: \
             {} channel(s), {} message(s), {} send site(s); atomics: {} site(s) in {} \
             group(s); artifacts in {} ({} ms)",
            ws.files.len(),
            findings.len(),
            nodes.len(),
            nodes.join(", "),
            report.topology.channels.len(),
            if report.blocking_cycle.is_none() {
                "acyclic"
            } else {
                "CYCLIC"
            },
            if report.lock_cycle.is_none() {
                "acyclic"
            } else {
                "CYCLIC"
            },
            report.topology.lock_edges.len(),
            proto.automaton.len(),
            proto_msgs,
            proto.sends.len(),
            atomics_report.sites.len(),
            atomics_report.groups.len(),
            out_dir.display(),
            started.elapsed().as_millis(),
        );
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Writes `topology.{dot,json}`, `protocol.{dot,json}`, `atomics.json`,
/// `findings.json` and (with `--sarif`) `findings.sarif` under `dir`.
fn write_artifacts(
    dir: &PathBuf,
    report: &topology::TopologyReport,
    proto: &protocol::ProtocolReport,
    atomics_report: &atomics::AtomicsReport,
    findings: &[Finding],
    emit_sarif: bool,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("topology.dot"), topology::to_dot(&report.topology))?;
    std::fs::write(dir.join("topology.json"), topology::to_json(report))?;
    std::fs::write(dir.join("protocol.dot"), protocol::to_dot(proto))?;
    std::fs::write(dir.join("protocol.json"), protocol::to_json(proto))?;
    std::fs::write(dir.join("atomics.json"), atomics::to_json(atomics_report))?;
    std::fs::write(dir.join("findings.json"), findings_json(findings))?;
    if emit_sarif {
        std::fs::write(dir.join("findings.sarif"), sarif::to_sarif(findings))?;
    }
    Ok(())
}

/// Renders findings as a JSON array (no serde — the workspace is offline).
fn findings_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.path),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}
