//! The concurrency-topology extractor: parses the runtime's channel
//! construction and thread spawns into a thread/channel graph, emits DOT and
//! JSON, and statically checks deadlock-freedom-shaped properties:
//!
//! * **no cycle of blocking sends** — under `BackpressurePolicy::Block`
//!   every `send` on a bounded (`sync_channel`) queue can block; a cycle of
//!   such edges through the thread graph is a deadlock waiting for the right
//!   queue depths. The runtime's design is a DAG (producers → shard workers
//!   → applier shards, with control acks flowing back on *unbounded*
//!   channels precisely so they cannot close a blocking cycle) and this
//!   check keeps it one.
//! * **lock-order acyclicity** — `Mutex` acquisitions are collected per
//!   function; an edge `a → b` is recorded when `b` is taken after `a`
//!   inside one function. A cycle across the workspace means two threads can
//!   take the same pair of locks in opposite orders.
//! * **channel sanity** — every constructed channel has at least one sender
//!   and one receiver, and data channels are bounded.
//!
//! The extractor understands the runtime's *conventions* rather than full
//! Rust semantics: channels are classified by their binding names
//! (`barrier`/`reply` ⇒ control) or their capacity expression
//! (`applier…` ⇒ the `ApplierMsg` path, `queue…` ⇒ the `ShardMsg` path);
//! send/recv sites are attributed to the thread whose spawned body function
//! (transitively) contains them, producers to `ingest.rs`, everything else
//! to the coordinating caller thread. Those conventions are themselves part
//! of what the lint enforces — the workspace self-check pins them, so a new
//! channel or thread that the extractor cannot classify fails CI loudly
//! instead of silently vanishing from the graph.

use crate::lexer::{match_seq, matching_close, Token, TokenKind};
use crate::{json_escape, Finding, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// The implicit node for ingest-side producer threads (any caller thread
/// holding an `IngestHandle`).
pub const NODE_PRODUCER: &str = "producer";
/// The implicit node for the coordinating caller thread (the
/// `ShardedRuntime` method surface: flush, resync, shutdown).
pub const NODE_COORDINATOR: &str = "coordinator";

/// One channel construction site.
#[derive(Debug, Clone)]
pub struct ChannelInfo {
    /// The channel's key: `ShardMsg`/`ApplierMsg` for the data paths,
    /// `barrier`/`reply` for control channels.
    pub key: String,
    /// `true` for `sync_channel` (bounded), `false` for `channel`.
    pub bounded: bool,
    /// The capacity expression's source text (empty for unbounded).
    pub capacity: String,
    /// `true` for control channels (acks/replies), `false` for data paths.
    pub control: bool,
    /// File + line of the construction.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// One thread-class node (spawned threads plus the implicit producer and
/// coordinator).
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Display name (thread name with per-instance suffixes stripped, e.g.
    /// `swift-shard`).
    pub name: String,
    /// `true` if the spawn sits in a loop (a class of N threads).
    pub many: bool,
    /// The spawned body function (empty for implicit nodes).
    pub body_fn: String,
    /// File of the spawn site (empty for implicit nodes).
    pub file: String,
    /// 1-based line of the spawn site (0 for implicit nodes).
    pub line: u32,
}

/// One `send`/`try_send` site, attributed to a node and a channel.
#[derive(Debug, Clone)]
pub struct SendEdge {
    /// The sending node.
    pub node: String,
    /// The channel key.
    pub channel: String,
    /// `send` or `try_send`.
    pub method: String,
    /// `true` if this send can block (blocking `send` on a bounded channel).
    pub blocking: bool,
    /// The payload's leading path segment (`ShardMsg`, `ApplierMsg`, or a
    /// tuple/value description).
    pub payload: String,
    /// File of the site.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// One `recv` site, attributed to a node and a channel.
#[derive(Debug, Clone)]
pub struct RecvEdge {
    /// The receiving node.
    pub node: String,
    /// The channel key.
    pub channel: String,
    /// File of the site.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// One `Mutex::lock` site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// The mutex's field/binding name.
    pub mutex: String,
    /// The enclosing function.
    pub function: String,
    /// File of the site.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// The extracted thread/channel graph.
#[derive(Debug, Default)]
pub struct Topology {
    /// Thread-class nodes.
    pub nodes: Vec<NodeInfo>,
    /// Channel construction sites.
    pub channels: Vec<ChannelInfo>,
    /// Send sites.
    pub sends: Vec<SendEdge>,
    /// Recv sites.
    pub recvs: Vec<RecvEdge>,
    /// Lock sites across the workspace.
    pub locks: Vec<LockSite>,
    /// Deduplicated lock-order edges `a → b` (b taken while a held).
    pub lock_edges: Vec<(String, String)>,
}

/// The topology plus the verdicts of the static checks.
#[derive(Debug)]
pub struct TopologyReport {
    /// The extracted graph.
    pub topology: Topology,
    /// Channel-sanity findings (orphan channels, unbounded data paths,
    /// unattributable sends).
    pub findings: Vec<Finding>,
    /// A cycle of blocking sends through the thread graph, if one exists
    /// (node names, first node repeated at the end).
    pub blocking_cycle: Option<Vec<String>>,
    /// A cycle in the lock-order graph, if one exists.
    pub lock_cycle: Option<Vec<String>>,
}

impl TopologyReport {
    /// `true` if every check passed.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.blocking_cycle.is_none() && self.lock_cycle.is_none()
    }
}

/// Runs the full topology extraction + checks over the workspace: the
/// thread/channel graph from `crates/runtime/src`, the lock-order graph
/// from every scanned file.
pub fn check(ws: &Workspace) -> TopologyReport {
    let runtime: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.rel.starts_with("crates/runtime/src/"))
        .collect();
    let all: Vec<&SourceFile> = ws.files.iter().collect();
    check_files(&runtime, &all)
}

/// The same checks over explicit file sets: the thread/channel graph from
/// `runtime`, the lock-order graph from `all` (fixture tests drive this
/// directly with synthetic files).
pub fn check_files(runtime: &[&SourceFile], all: &[&SourceFile]) -> TopologyReport {
    let mut topo = extract(runtime);
    for f in all {
        collect_locks(f, &mut topo.locks);
    }
    topo.lock_edges = lock_order_edges(&topo.locks);
    finish(topo)
}

/// Runs the checks over an already-extracted topology (used by `check` and
/// by the fixture tests, which extract from synthetic files).
pub fn finish(topo: Topology) -> TopologyReport {
    let findings = sanity_findings(&topo);
    let blocking_cycle = blocking_send_cycle(&topo);
    let lock_cycle = find_cycle(
        &topo
            .lock_edges
            .iter()
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect::<Vec<_>>(),
    );
    TopologyReport {
        topology: topo,
        findings,
        blocking_cycle,
        lock_cycle,
    }
}

/// Maps function names to the thread node they run on (passes 1–2 of
/// extraction): spawn sites name nodes via `.name(...)`, and unmapped
/// helpers called from exactly one mapped function in the same file adopt
/// that node. Public so the atomic-ordering auditor can attribute atomic
/// sites to threads when proving a channel-edge synchronization.
pub fn node_map(files: &[&SourceFile]) -> (BTreeMap<String, String>, Vec<NodeInfo>) {
    // All function names defined anywhere in the given files — used to tell
    // a spawned body function from ordinary calls inside the spawn closure.
    let defined: BTreeSet<&str> = files
        .iter()
        .flat_map(|f| f.fns.iter().map(|s| s.name.as_str()))
        .collect();

    // Pass 1: spawn sites → named nodes + body-fn mapping.
    let mut nodes = Vec::new();
    let mut fn_node: BTreeMap<String, String> = BTreeMap::new();
    for f in files {
        for i in 0..f.tokens.len() {
            if !match_seq(&f.tokens, i, &[".", "spawn", "("]) || f.in_test(f.tokens[i].line) {
                continue;
            }
            let close = matching_close(&f.tokens, i + 2);
            let args = &f.tokens[i + 3..close.min(f.tokens.len())];
            // The spawned body: the first called identifier that is a
            // function defined in the scanned files.
            let body = args
                .windows(2)
                .find(|w| {
                    w[0].kind == TokenKind::Ident
                        && w[1].text == "("
                        && defined.contains(w[0].text.as_str())
                })
                .map(|w| w[0].text.clone());
            let Some(body) = body else {
                continue; // not a thread spawn we can attribute (e.g. scoped test helper)
            };
            let name = spawn_thread_name(&f.tokens, i).unwrap_or_else(|| body.clone());
            let many = spawn_in_loop(f, i);
            fn_node.insert(body.clone(), name.clone());
            nodes.push(NodeInfo {
                name,
                many,
                body_fn: body,
                file: f.rel.clone(),
                line: f.tokens[i].line,
            });
        }
    }

    // Pass 2: helper inheritance — an unmapped function *plainly* called
    // (not a method call: `send_batch(...)`, never `x.send_batch(...)`) from
    // exactly one mapped function in the *same file* joins that node (covers
    // e.g. `send_batch` called only from `shard_loop`). Method-call syntax
    // is excluded because method names collide freely across types
    // (`applier.register(...)` must not adopt `IngestHandle::register`).
    for _ in 0..2 {
        let mut adopt: Vec<(String, String)> = Vec::new();
        for f in files {
            for span in &f.fns {
                if fn_node.contains_key(&span.name) {
                    continue;
                }
                let mut callers: BTreeSet<&str> = BTreeSet::new();
                for caller in &f.fns {
                    let Some(node) = fn_node.get(&caller.name) else {
                        continue;
                    };
                    let lo = caller.start_tok;
                    let hi = caller.end_tok.min(f.tokens.len() - 1);
                    for k in lo..hi {
                        if f.tokens[k].text == span.name
                            && f.tokens[k].kind == TokenKind::Ident
                            && f.tokens.get(k + 1).is_some_and(|t| t.text == "(")
                            && !f
                                .tokens
                                .get(k.wrapping_sub(1))
                                .is_some_and(|t| t.text == ".")
                        {
                            callers.insert(node);
                            break;
                        }
                    }
                }
                if callers.len() == 1 {
                    let node = callers.iter().next().expect("one caller").to_string();
                    adopt.push((span.name.clone(), node));
                }
            }
        }
        for (f, n) in adopt {
            fn_node.insert(f, n);
        }
    }
    (fn_node, nodes)
}

/// Extracts the thread/channel graph from `files` (the runtime crate's
/// sources, or a fixture emulating their idioms).
pub fn extract(files: &[&SourceFile]) -> Topology {
    let mut topo = Topology::default();
    let (fn_node, nodes) = node_map(files);
    topo.nodes = nodes;

    // Pass 3: channel constructions.
    for f in files {
        for i in 0..f.tokens.len() {
            let sync = match_seq(&f.tokens, i, &["mpsc", ":", ":", "sync_channel", "("]);
            let unbounded = match_seq(&f.tokens, i, &["mpsc", ":", ":", "channel", "("]);
            if !(sync || unbounded) || f.in_test(f.tokens[i].line) {
                continue;
            }
            let open = i + 4;
            let close = matching_close(&f.tokens, open);
            let capacity: String = if sync {
                f.tokens[open + 1..close.min(f.tokens.len())]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            } else {
                String::new()
            };
            let bindings = channel_bindings(&f.tokens, i);
            let (key, control) = classify_channel(&bindings, &capacity, sync, f.tokens[i].line);
            topo.channels.push(ChannelInfo {
                key,
                bounded: sync,
                capacity,
                control,
                file: f.rel.clone(),
                line: f.tokens[i].line,
            });
        }
    }

    // Pass 4: send/recv sites.
    let bounded: BTreeMap<&str, bool> = topo
        .channels
        .iter()
        .map(|c| (c.key.as_str(), c.bounded))
        .collect();
    for f in files {
        for i in 0..f.tokens.len() {
            let line = f.tokens[i].line;
            if f.in_test(line) {
                continue;
            }
            let is_send = match_seq(&f.tokens, i, &[".", "send", "("]);
            let is_try = match_seq(&f.tokens, i, &[".", "try_send", "("]);
            if is_send || is_try {
                let close = matching_close(&f.tokens, i + 2);
                let args = &f.tokens[i + 3..close.min(f.tokens.len())];
                let chain = receiver_chain(&f.tokens, i);
                let (channel, payload) = classify_send(args, &chain);
                let node = node_of(f, line, &fn_node);
                let method = if is_send { "send" } else { "try_send" };
                let blocking = is_send && bounded.get(channel.as_str()).copied().unwrap_or(false);
                topo.sends.push(SendEdge {
                    node,
                    channel,
                    method: method.into(),
                    blocking,
                    payload,
                    file: f.rel.clone(),
                    line,
                });
            } else if match_seq(&f.tokens, i, &[".", "recv", "("]) {
                let chain = receiver_chain(&f.tokens, i);
                let channel = classify_recv(&f.tokens, i, &chain);
                let node = node_of(f, line, &fn_node);
                topo.recvs.push(RecvEdge {
                    node,
                    channel,
                    file: f.rel.clone(),
                    line,
                });
            }
        }
    }

    topo.nodes.extend(implicit_nodes(&topo));
    topo
}

/// Adds the implicit producer/coordinator nodes if any site was attributed
/// to them.
fn implicit_nodes(topo: &Topology) -> Vec<NodeInfo> {
    let mut out = Vec::new();
    let referenced: BTreeSet<&str> = topo
        .sends
        .iter()
        .map(|s| s.node.as_str())
        .chain(topo.recvs.iter().map(|r| r.node.as_str()))
        .collect();
    for name in [NODE_PRODUCER, NODE_COORDINATOR] {
        if referenced.contains(name) && !topo.nodes.iter().any(|n| n.name == name) {
            out.push(NodeInfo {
                name: name.into(),
                many: name == NODE_PRODUCER,
                body_fn: String::new(),
                file: String::new(),
                line: 0,
            });
        }
    }
    out
}

/// The node a site at `line` in `f` belongs to: its enclosing function's
/// mapped node, else `producer` for the ingest module, else the
/// coordinator (the runtime's caller-thread method surface).
pub fn node_of(f: &SourceFile, line: u32, fn_node: &BTreeMap<String, String>) -> String {
    if let Some(span) = f.enclosing_fn(line) {
        if let Some(node) = fn_node.get(&span.name) {
            return node.clone();
        }
    }
    if f.rel.ends_with("ingest.rs") {
        NODE_PRODUCER.into()
    } else {
        NODE_COORDINATOR.into()
    }
}

/// Extracts the thread name from the `.name(...)` call preceding a spawn,
/// normalizing per-instance suffixes (`swift-shard-{i}` → `swift-shard`).
fn spawn_thread_name(tokens: &[Token], spawn_at: usize) -> Option<String> {
    let from = spawn_at.saturating_sub(120);
    let mut j = spawn_at;
    while j > from {
        j -= 1;
        if tokens[j].text == ";" {
            return None;
        }
        if match_seq(tokens, j, &[".", "name", "("]) {
            let close = matching_close(tokens, j + 2);
            let name = tokens[j + 3..close.min(tokens.len())]
                .iter()
                .find(|t| t.kind == TokenKind::Str)?;
            let mut text = name.text.as_str();
            if let Some(brace) = text.find('{') {
                text = &text[..brace];
            }
            return Some(text.trim_end_matches(['-', '_']).to_string());
        }
    }
    None
}

/// `true` if the spawn site sits inside a `for`/`while`/`loop` in its
/// enclosing function — a class of N threads rather than one.
fn spawn_in_loop(f: &SourceFile, spawn_at: usize) -> bool {
    let line = f.tokens[spawn_at].line;
    let Some(span) = f.enclosing_fn(line) else {
        return false;
    };
    f.tokens[span.start_tok..spawn_at]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop"))
}

/// The idents bound by the `let (a, b) = …` pattern in front of a channel
/// construction at token `at`.
fn channel_bindings(tokens: &[Token], at: usize) -> Vec<String> {
    let mut j = at;
    let from = at.saturating_sub(24);
    while j > from {
        j -= 1;
        if matches!(tokens[j].text.as_str(), ";" | "}") {
            return Vec::new();
        }
        if tokens[j].kind == TokenKind::Ident && tokens[j].text == "let" {
            return tokens[j + 1..at]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone())
                .collect();
        }
    }
    Vec::new()
}

/// Classifies a channel by its binding names (control channels) or its
/// capacity expression (which data path it belongs to).
fn classify_channel(
    bindings: &[String],
    capacity: &str,
    bounded: bool,
    line: u32,
) -> (String, bool) {
    if bindings.iter().any(|b| b.contains("barrier")) {
        return ("barrier".into(), true);
    }
    if bindings.iter().any(|b| b.contains("reply")) {
        return ("reply".into(), true);
    }
    if capacity.contains("applier") {
        return ("ApplierMsg".into(), false);
    }
    if capacity.contains("queue") {
        return ("ShardMsg".into(), false);
    }
    // Unclassifiable: keyed by line so the sanity check reports it as an
    // orphan (no send/recv will resolve to this key).
    (
        format!(
            "unclassified-{}-L{line}",
            if bounded { "sync" } else { "unbounded" }
        ),
        false,
    )
}

/// The trailing ident chain of the receiver expression before the `.` at
/// `dot` (e.g. `self.shared.shard_txs[shard]` → `[self, shared, shard_txs,
/// shard]`).
fn receiver_chain(tokens: &[Token], dot: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let from = dot.saturating_sub(12);
    let mut j = dot;
    while j > from {
        j -= 1;
        let t = &tokens[j];
        match t.kind {
            TokenKind::Ident => idents.push(t.text.clone()),
            TokenKind::Num => {}
            TokenKind::Punct if matches!(t.text.as_str(), "." | "[" | "]") => {}
            _ => break,
        }
    }
    idents.reverse();
    idents
}

/// Resolves a send site to its channel key and payload description: the
/// payload's leading enum path wins (`ShardMsg::…`), else the receiver's
/// name marks a control channel.
fn classify_send(args: &[Token], chain: &[String]) -> (String, String) {
    if args.len() >= 3
        && args[0].kind == TokenKind::Ident
        && args[1].text == ":"
        && args[2].text == ":"
    {
        let payload = format!(
            "{}::{}",
            args[0].text,
            args.get(3).map(|t| t.text.as_str()).unwrap_or("?")
        );
        return (args[0].text.clone(), payload);
    }
    for name in chain.iter().rev() {
        if name.contains("barrier") {
            return ("barrier".into(), "ack".into());
        }
        if name.contains("reply") {
            return ("reply".into(), "reply".into());
        }
    }
    (
        "unknown".into(),
        args.first().map(|t| t.text.clone()).unwrap_or_default(),
    )
}

/// Resolves a recv site to its channel key: the receiver's name for control
/// channels, else the enum matched on right after the recv (the `match msg
/// { ShardMsg::… }` idiom of the worker loops).
fn classify_recv(tokens: &[Token], at: usize, chain: &[String]) -> String {
    for name in chain.iter().rev() {
        if name.contains("barrier") {
            return "barrier".into();
        }
        if name.contains("reply") {
            return "reply".into();
        }
    }
    // Scan forward for the first `X::` path in match-arm position.
    let horizon = (at + 120).min(tokens.len());
    let mut k = at;
    while k + 3 < horizon {
        if tokens[k].kind == TokenKind::Ident && tokens[k].text == "match" {
            let mut j = k;
            while j + 3 < horizon {
                if tokens[j].kind == TokenKind::Ident
                    && tokens[j + 1].text == ":"
                    && tokens[j + 2].text == ":"
                    && tokens[j + 3].kind == TokenKind::Ident
                {
                    return tokens[j].text.clone();
                }
                j += 1;
            }
            break;
        }
        k += 1;
    }
    "unknown".into()
}

/// Collects `.lock()` sites from one file (tests excluded).
fn collect_locks(f: &SourceFile, out: &mut Vec<LockSite>) {
    for i in 0..f.tokens.len() {
        if !match_seq(&f.tokens, i, &[".", "lock", "(", ")"]) {
            continue;
        }
        let line = f.tokens[i].line;
        if f.in_test(line) {
            continue;
        }
        let chain = receiver_chain(&f.tokens, i);
        let Some(mutex) = chain.last().cloned() else {
            continue;
        };
        let function = f
            .enclosing_fn(line)
            .map(|s| s.name.clone())
            .unwrap_or_default();
        out.push(LockSite {
            mutex,
            function,
            file: f.rel.clone(),
            line,
        });
    }
}

/// Lock-order edges: within each function, every later acquisition of a
/// *different* mutex is ordered after every earlier one (conservative —
/// guards are assumed held for the rest of the function).
fn lock_order_edges(locks: &[LockSite]) -> Vec<(String, String)> {
    let mut per_fn: BTreeMap<(&str, &str), Vec<&LockSite>> = BTreeMap::new();
    for l in locks {
        per_fn
            .entry((l.file.as_str(), l.function.as_str()))
            .or_default()
            .push(l);
    }
    let mut edges = BTreeSet::new();
    for sites in per_fn.values() {
        for (a_idx, a) in sites.iter().enumerate() {
            for b in sites.iter().skip(a_idx + 1) {
                if a.mutex != b.mutex {
                    edges.insert((a.mutex.clone(), b.mutex.clone()));
                }
            }
        }
    }
    edges.into_iter().collect()
}

/// Channel sanity: every channel needs ≥1 sender and ≥1 receiver, data
/// channels must be bounded, and no send may target an unknown channel.
fn sanity_findings(topo: &Topology) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in &topo.channels {
        let sends = topo.sends.iter().filter(|s| s.channel == c.key).count();
        let recvs = topo.recvs.iter().filter(|r| r.channel == c.key).count();
        if sends == 0 || recvs == 0 {
            out.push(Finding {
                rule: "topology",
                path: c.file.clone(),
                line: c.line,
                message: format!(
                    "channel `{}` has {sends} send site(s) and {recvs} recv site(s) — every \
                     channel needs at least one of each (unclassifiable constructions land \
                     here too; extend the extractor's conventions if this channel is new)",
                    c.key
                ),
            });
        }
        if !c.control && !c.bounded {
            out.push(Finding {
                rule: "topology",
                path: c.file.clone(),
                line: c.line,
                message: format!(
                    "data channel `{}` is unbounded — data paths use `sync_channel` so a slow \
                     consumer pushes back instead of buffering unboundedly",
                    c.key
                ),
            });
        }
    }
    for s in &topo.sends {
        if s.channel == "unknown" {
            out.push(Finding {
                rule: "topology",
                path: s.file.clone(),
                line: s.line,
                message: "send site could not be attributed to a channel — name the payload \
                          enum or the control channel binding so the topology stays checkable"
                    .into(),
            });
        }
    }
    out
}

/// Finds a cycle of blocking sends through the thread graph: edge
/// `sender → consumer` for every blocking send, consumers resolved via the
/// recv sites.
fn blocking_send_cycle(topo: &Topology) -> Option<Vec<String>> {
    let mut consumers: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for r in &topo.recvs {
        consumers
            .entry(r.channel.as_str())
            .or_default()
            .insert(r.node.as_str());
    }
    let mut edges: Vec<(String, String)> = Vec::new();
    for s in &topo.sends {
        if !s.blocking {
            continue;
        }
        if let Some(nodes) = consumers.get(s.channel.as_str()) {
            for n in nodes {
                edges.push((s.node.clone(), (*n).to_string()));
            }
        }
    }
    find_cycle(&edges)
}

/// Generic cycle finder over string edges; returns the cycle's node path
/// (first node repeated at the end) if one exists.
pub fn find_cycle(edges: &[(String, String)]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    // Iterative colored DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut color: BTreeMap<&str, Color> = nodes.iter().map(|&n| (n, Color::White)).collect();
    for &start in &nodes {
        if color[start] != Color::White {
            continue;
        }
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, Vec::new())];
        let mut path: Vec<&str> = Vec::new();
        while let Some((node, _)) = stack.last().cloned() {
            if color.get(node).copied().unwrap_or(Color::White) == Color::White {
                color.insert(node, Color::Gray);
                path.push(node);
                let succs: Vec<&str> = adj
                    .get(node)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                stack.last_mut().expect("frame on stack").1 = succs;
            }
            let frame = stack.last_mut().expect("frame on stack");
            if let Some(next) = frame.1.pop() {
                match color.get(next).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        // Found a cycle: slice the current path from `next`.
                        let at = path.iter().position(|&n| n == next).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[at..].iter().map(|s| s.to_string()).collect();
                        cycle.push(next.to_string());
                        return Some(cycle);
                    }
                    Color::White => stack.push((next, Vec::new())),
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                path.pop();
                stack.pop();
            }
        }
    }
    None
}

/// Renders the topology as a Graphviz DOT digraph: boxes are thread
/// classes, ellipses are channels; solid edges are blocking sends, dashed
/// edges non-blocking sends, dotted edges the consume side.
pub fn to_dot(topo: &Topology) -> String {
    let mut out =
        String::from("digraph swift_topology {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n");
    let mut seen = BTreeSet::new();
    for n in &topo.nodes {
        if !seen.insert(n.name.clone()) {
            continue;
        }
        let mult = if n.many { " ×N" } else { "" };
        out.push_str(&format!(
            "  \"{}\" [shape=box, label=\"{}{}\"];\n",
            n.name, n.name, mult
        ));
    }
    for c in &topo.channels {
        let label = if c.bounded {
            format!("{}\\nsync_channel({})", c.key, c.capacity)
        } else {
            format!("{}\\nchannel (unbounded)", c.key)
        };
        out.push_str(&format!(
            "  \"chan:{}\" [shape=ellipse, label=\"{}\"];\n",
            c.key, label
        ));
    }
    let mut edges = BTreeSet::new();
    for s in &topo.sends {
        let style = if s.blocking { "solid" } else { "dashed" };
        edges.insert(format!(
            "  \"{}\" -> \"chan:{}\" [style={}, label=\"{}\"];\n",
            s.node, s.channel, style, s.method
        ));
    }
    for r in &topo.recvs {
        edges.insert(format!(
            "  \"chan:{}\" -> \"{}\" [style=dotted];\n",
            r.channel, r.node
        ));
    }
    for e in edges {
        out.push_str(&e);
    }
    out.push_str("}\n");
    out
}

/// Renders the report as JSON (hand-rolled: the workspace is offline, no
/// serde).
pub fn to_json(report: &TopologyReport) -> String {
    let t = &report.topology;
    let mut out = String::from("{\n");
    out.push_str("  \"nodes\": [");
    let mut first = true;
    let mut seen = BTreeSet::new();
    for n in &t.nodes {
        if !seen.insert(n.name.clone()) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"many\": {}, \"body_fn\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
            json_escape(&n.name),
            n.many,
            json_escape(&n.body_fn),
            json_escape(&n.file),
            n.line
        ));
    }
    out.push_str("\n  ],\n  \"channels\": [");
    first = true;
    for c in &t.channels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"key\": \"{}\", \"bounded\": {}, \"control\": {}, \"capacity\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
            json_escape(&c.key),
            c.bounded,
            c.control,
            json_escape(&c.capacity),
            json_escape(&c.file),
            c.line
        ));
    }
    out.push_str("\n  ],\n  \"sends\": [");
    first = true;
    for s in &t.sends {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"node\": \"{}\", \"channel\": \"{}\", \"method\": \"{}\", \"blocking\": {}, \"payload\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
            json_escape(&s.node),
            json_escape(&s.channel),
            s.method,
            s.blocking,
            json_escape(&s.payload),
            json_escape(&s.file),
            s.line
        ));
    }
    out.push_str("\n  ],\n  \"recvs\": [");
    first = true;
    for r in &t.recvs {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"node\": \"{}\", \"channel\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
            json_escape(&r.node),
            json_escape(&r.channel),
            json_escape(&r.file),
            r.line
        ));
    }
    out.push_str("\n  ],\n  \"locks\": [");
    first = true;
    for l in &t.locks {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"mutex\": \"{}\", \"function\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
            json_escape(&l.mutex),
            json_escape(&l.function),
            json_escape(&l.file),
            l.line
        ));
    }
    out.push_str("\n  ],\n  \"lock_edges\": [");
    first = true;
    for (a, b) in &t.lock_edges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    [\"{}\", \"{}\"]",
            json_escape(a),
            json_escape(b)
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"blocking_send_cycle\": {},\n",
        cycle_json(&report.blocking_cycle)
    ));
    out.push_str(&format!(
        "  \"lock_cycle\": {},\n",
        cycle_json(&report.lock_cycle)
    ));
    out.push_str(&format!("  \"clean\": {}\n}}\n", report.clean()));
    out
}

fn cycle_json(cycle: &Option<Vec<String>>) -> String {
    match cycle {
        None => "null".into(),
        Some(nodes) => format!(
            "[{}]",
            nodes
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}
