//! # swift-analysis
//!
//! A self-contained static-analysis pass over the SWIFT workspace: a
//! workspace lint plus a concurrency-topology checker that together enforce
//! in CI the runtime invariants PRs 3–6 only stated in prose ("lifecycle
//! messages are never shed", "no per-event `Instant::now()`", "data paths
//! are bounded", "barriers complete in order").
//!
//! The layers:
//!
//! 1. [`lexer`] — a token-level Rust lexer (comment/string/raw-string aware,
//!    line-mapped) shared by every rule;
//! 2. [`parser`] — an item/fn-granularity AST over the token stream (enums,
//!    atomic fields, fn bodies as statement/call trees, match arms) for the
//!    semantic checks;
//! 3. [`rules`] — the lint engine: repo-specific rules with rustc-style
//!    findings and `// swift-lint: allow(<rule>) -- <reason>` pragmas;
//! 4. [`topology`] — a concurrency-topology extractor that parses the
//!    runtime's channel construction into a thread/channel graph, emits DOT
//!    and JSON, and statically checks deadlock-freedom-shaped properties
//!    (no cycle of blocking sends, lock-order acyclicity);
//! 5. [`protocol`] — a message-protocol verifier that checks every
//!    `ShardMsg`/`ApplierMsg` send/recv site against the declared automaton
//!    in `crates/analysis/protocol/runtime.protocol` and emits it as
//!    `protocol.{dot,json}`;
//! 6. [`atomics`] — an atomic-ordering auditor that classifies every atomic
//!    op into a role (flag/watermark/gauge/counter/statistic) and enforces
//!    the ordering rule the role implies;
//! 7. [`sarif`] — SARIF 2.1.0 export so CI annotates findings inline.
//!
//! Run it with `cargo run -p swift-analysis --release -- check` (add
//! `--json`/`--sarif` for CI artifacts). No external dependencies: the
//! build environment is offline.

pub mod atomics;
pub mod lexer;
pub mod parser;
pub mod protocol;
pub mod rules;
pub mod sarif;
pub mod topology;

use lexer::{lex, matching_close, Comment, Lexed, Token, TokenKind};
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding, printed rustc-style as `path:line: rule: message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule key that fired (e.g. `unwrap`, `instant-now`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message naming the violated invariant.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed `// swift-lint: allow(<rule>) -- <reason>` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Line the pragma comment starts on. The pragma suppresses findings of
    /// `rule` on this line and the next (so it can trail the offending
    /// expression or sit on its own line above it).
    pub line: u32,
    /// The rule key the pragma allows.
    pub rule: String,
    /// The justification after `--` (empty string if missing — itself a
    /// finding, see [`rules::check_pragmas`]).
    pub reason: String,
}

/// The span of one `fn` item: its name and the lines/token range of its
/// body (innermost-wins for nested functions).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub start_tok: usize,
    /// Token index of the body's closing `}` (or the `;` of a bodiless
    /// signature).
    pub end_tok: usize,
    /// 1-based first line.
    pub start_line: u32,
    /// 1-based last line.
    pub end_line: u32,
}

/// One lexed + annotated source file, ready for the rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Every comment.
    pub comments: Vec<Comment>,
    /// Parsed `swift-lint` pragmas.
    pub pragmas: Vec<Pragma>,
    /// Closed line ranges covered by `#[cfg(test)]` / `#[test]` items —
    /// rules skip findings inside them.
    pub test_ranges: Vec<(u32, u32)>,
    /// Function spans, in source order.
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lexes and annotates `src` as workspace-relative file `rel`.
    pub fn parse(rel: impl Into<String>, src: &str) -> SourceFile {
        let Lexed { tokens, comments } = lex(src);
        let pragmas = parse_pragmas(&comments);
        let test_ranges = find_test_ranges(&tokens);
        let fns = find_fns(&tokens);
        SourceFile {
            rel: rel.into(),
            tokens,
            comments,
            pragmas,
            test_ranges,
            fns,
        }
    }

    /// `true` if `line` is inside a `#[cfg(test)]` module or `#[test]` fn.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// `true` if a pragma for `rule` covers `line` (same line or the line
    /// directly below the pragma).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.pragmas.iter().any(|p| {
            p.rule == rule && !p.reason.is_empty() && (p.line == line || p.line + 1 == line)
        })
    }

    /// The innermost function span containing `line`, if any.
    pub fn enclosing_fn(&self, line: u32) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }
}

/// Extracts `swift-lint:` pragmas from the comment stream. Only plain `//`
/// comments carry pragmas — doc comments (`///`, `//!`, whose text starts
/// with a `/` or `!` after the `//` delimiter) are documentation and may
/// *mention* the syntax without enacting it.
fn parse_pragmas(comments: &[Comment]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(at) = c.text.find("swift-lint:") else {
            continue;
        };
        let rest = c.text[at + "swift-lint:".len()..].trim();
        let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            // Malformed pragma: record with empty rule so check_pragmas can
            // flag it.
            out.push(Pragma {
                line: c.line,
                rule: String::new(),
                reason: String::new(),
            });
            continue;
        };
        let (rule, tail) = inner;
        let reason = tail
            .trim()
            .strip_prefix("--")
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(Pragma {
            line: c.line,
            rule: rule.trim().to_string(),
            reason,
        });
    }
    out
}

/// Finds the line ranges of `#[cfg(test)]` items and `#[test]` functions by
/// brace-matching the item that follows the attribute.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_cfg_test = lexer::match_seq(tokens, i, &["#", "[", "cfg", "(", "test", ")", "]"]);
        let is_test_attr = lexer::match_seq(tokens, i, &["#", "[", "test", "]"]);
        if !(is_cfg_test || is_test_attr) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + if is_cfg_test { 7 } else { 4 };
        // Skip any further attributes between this one and the item.
        while j < tokens.len()
            && tokens[j].text == "#"
            && tokens.get(j + 1).is_some_and(|t| t.text == "[")
        {
            j = matching_close(tokens, j + 1) + 1;
        }
        // The item ends at its matching `}`, or at `;` for bodiless items.
        let mut end = None;
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => {
                    end = Some(matching_close(tokens, k));
                    break;
                }
                ";" => {
                    end = Some(k);
                    break;
                }
                _ => k += 1,
            }
        }
        if let Some(end) = end.filter(|&e| e < tokens.len()) {
            out.push((start_line, tokens[end].line));
            i = end + 1;
        } else {
            i = j;
        }
    }
    out
}

/// Finds every `fn name … { … }` span (bodiless signatures span to their
/// `;`).
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].kind == TokenKind::Ident
            && tokens[i].text == "fn"
            && tokens[i + 1].kind == TokenKind::Ident
        {
            let name = tokens[i + 1].text.clone();
            // Find the body's `{` (or a `;` first, for trait signatures).
            let mut k = i + 2;
            let mut end = None;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "{" => {
                        end = Some(matching_close(tokens, k));
                        break;
                    }
                    ";" => {
                        end = Some(k);
                        break;
                    }
                    _ => k += 1,
                }
            }
            if let Some(end) = end.filter(|&e| e < tokens.len()) {
                out.push(FnSpan {
                    name,
                    start_tok: i,
                    end_tok: end,
                    start_line: tokens[i].line,
                    end_line: tokens[end].line,
                });
            }
        }
        i += 1;
    }
    out
}

/// The set of files the analysis runs over.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root (the directory holding the root `Cargo.toml`).
    pub root: PathBuf,
    /// Every scanned file.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads the workspace sources under `root`: `crates/*/src/**/*.rs`,
    /// `crates/bench/benches/*.rs` and the umbrella `src/**/*.rs`.
    /// `vendor/`, `target/` and integration-test directories are out of
    /// scope (fixtures with deliberate violations live under `tests/`).
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let crates = root.join("crates");
        if crates.is_dir() {
            for entry in std::fs::read_dir(&crates)? {
                let dir = entry?.path();
                for sub in ["src", "benches"] {
                    let d = dir.join(sub);
                    if d.is_dir() {
                        collect_rs(&d, &mut files)?;
                    }
                }
            }
        }
        let umbrella = root.join("src");
        if umbrella.is_dir() {
            collect_rs(&umbrella, &mut files)?;
        }
        files.sort();
        let mut sources = Vec::with_capacity(files.len());
        for path in files {
            let src = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push(SourceFile::parse(rel, &src));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files: sources,
        })
    }

    /// The file with workspace-relative path `rel`, if it was scanned.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Minimal JSON string escaping for the report emitters.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragmas_parse_rule_and_reason() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = 1; // swift-lint: allow(unwrap) -- invariant: seeded above\n",
        );
        assert_eq!(f.pragmas.len(), 1);
        assert_eq!(f.pragmas[0].rule, "unwrap");
        assert_eq!(f.pragmas[0].reason, "invariant: seeded above");
        assert!(f.allowed("unwrap", 1));
        assert!(f.allowed("unwrap", 2), "pragma covers the next line too");
        assert!(!f.allowed("unwrap", 3));
        assert!(!f.allowed("instant-now", 1));
    }

    #[test]
    fn pragma_without_reason_does_not_suppress() {
        let f = SourceFile::parse("x.rs", "// swift-lint: allow(unwrap)\nfoo.unwrap();\n");
        assert!(!f.allowed("unwrap", 2));
    }

    #[test]
    fn cfg_test_ranges_cover_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn a() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test(1));
        assert!(f.in_test(3));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn test_attr_fn_is_covered() {
        let src = "#[test]\nfn check() {\n  boom();\n}\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_test(3));
        assert!(!f.in_test(5));
    }

    #[test]
    fn fn_spans_nest_innermost_wins() {
        let src = "fn outer() {\n  fn inner() {\n    x();\n  }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.enclosing_fn(3).map(|s| s.name.as_str()), Some("inner"));
        assert_eq!(f.enclosing_fn(5).map(|s| s.name.as_str()), Some("outer"));
    }
}
