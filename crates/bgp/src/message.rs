//! BGP UPDATE messages and elementary per-prefix events.
//!
//! A real BGP UPDATE can announce several prefixes sharing one attribute set and
//! withdraw several others. SWIFT's inference algorithm, however, operates at
//! per-prefix granularity: every withdrawal and every implicit withdrawal
//! (re-announcement with a different path) individually updates the fit-score
//! counters. [`BgpMessage`] models the on-the-wire grouping; its
//! [`elementary_events`](BgpMessage::elementary_events) method flattens it into
//! the per-prefix [`ElementaryEvent`] stream that the algorithms consume.

use crate::attributes::RouteAttributes;
use crate::prefix::Prefix;
use crate::Timestamp;

/// The payload of a BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageKind {
    /// An UPDATE announcing `prefixes` with the shared `attrs`, and withdrawing
    /// `withdrawn`. Either list may be empty, but not both.
    Update {
        /// Prefixes announced with the shared attributes.
        prefixes: Vec<Prefix>,
        /// Attributes shared by all announced prefixes (ignored if none).
        attrs: RouteAttributes,
        /// Prefixes withdrawn by this message.
        withdrawn: Vec<Prefix>,
    },
    /// A KEEPALIVE (carried for realism of traces; ignored by the algorithms).
    Keepalive,
}

/// A timestamped BGP message received on one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpMessage {
    /// Reception time, in virtual microseconds.
    pub timestamp: Timestamp,
    /// The message payload.
    pub kind: MessageKind,
}

impl BgpMessage {
    /// Convenience constructor: an announcement of a single prefix.
    pub fn announce(timestamp: Timestamp, prefix: Prefix, attrs: RouteAttributes) -> Self {
        BgpMessage {
            timestamp,
            kind: MessageKind::Update {
                prefixes: vec![prefix],
                attrs,
                withdrawn: Vec::new(),
            },
        }
    }

    /// Convenience constructor: a withdrawal of a single prefix.
    pub fn withdraw(timestamp: Timestamp, prefix: Prefix) -> Self {
        BgpMessage {
            timestamp,
            kind: MessageKind::Update {
                prefixes: Vec::new(),
                attrs: RouteAttributes::default(),
                withdrawn: vec![prefix],
            },
        }
    }

    /// Convenience constructor: a packed announcement of several prefixes
    /// sharing one attribute set.
    pub fn announce_packed(
        timestamp: Timestamp,
        prefixes: Vec<Prefix>,
        attrs: RouteAttributes,
    ) -> Self {
        BgpMessage {
            timestamp,
            kind: MessageKind::Update {
                prefixes,
                attrs,
                withdrawn: Vec::new(),
            },
        }
    }

    /// Convenience constructor: a packed withdrawal of several prefixes.
    pub fn withdraw_packed(timestamp: Timestamp, withdrawn: Vec<Prefix>) -> Self {
        BgpMessage {
            timestamp,
            kind: MessageKind::Update {
                prefixes: Vec::new(),
                attrs: RouteAttributes::default(),
                withdrawn,
            },
        }
    }

    /// Convenience constructor: a keepalive.
    pub fn keepalive(timestamp: Timestamp) -> Self {
        BgpMessage {
            timestamp,
            kind: MessageKind::Keepalive,
        }
    }

    /// Returns `true` if the message withdraws at least one prefix.
    pub fn has_withdrawals(&self) -> bool {
        matches!(&self.kind, MessageKind::Update { withdrawn, .. } if !withdrawn.is_empty())
    }

    /// Returns `true` if the message announces at least one prefix.
    pub fn has_announcements(&self) -> bool {
        matches!(&self.kind, MessageKind::Update { prefixes, .. } if !prefixes.is_empty())
    }

    /// Number of prefixes withdrawn by this message.
    pub fn withdrawal_count(&self) -> usize {
        match &self.kind {
            MessageKind::Update { withdrawn, .. } => withdrawn.len(),
            MessageKind::Keepalive => 0,
        }
    }

    /// Number of prefixes announced by this message.
    pub fn announcement_count(&self) -> usize {
        match &self.kind {
            MessageKind::Update { prefixes, .. } => prefixes.len(),
            MessageKind::Keepalive => 0,
        }
    }

    /// Flattens the message into timestamped per-prefix events, withdrawals
    /// first (as routers process withdrawn-routes before NLRI).
    pub fn elementary_events(&self) -> Vec<ElementaryEvent> {
        match &self.kind {
            MessageKind::Keepalive => Vec::new(),
            MessageKind::Update {
                prefixes,
                attrs,
                withdrawn,
            } => {
                let mut out = Vec::with_capacity(prefixes.len() + withdrawn.len());
                for p in withdrawn {
                    out.push(ElementaryEvent::Withdraw {
                        timestamp: self.timestamp,
                        prefix: *p,
                    });
                }
                for p in prefixes {
                    out.push(ElementaryEvent::Announce {
                        timestamp: self.timestamp,
                        prefix: *p,
                        attrs: attrs.clone(),
                    });
                }
                out
            }
        }
    }
}

/// A per-prefix routing event, the unit the SWIFT algorithms consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElementaryEvent {
    /// `prefix` is now reachable via the path in `attrs` (possibly replacing a
    /// previous route — an implicit withdrawal).
    Announce {
        /// Reception time.
        timestamp: Timestamp,
        /// The announced prefix.
        prefix: Prefix,
        /// Attributes of the new route.
        attrs: RouteAttributes,
    },
    /// `prefix` is no longer reachable through this session.
    Withdraw {
        /// Reception time.
        timestamp: Timestamp,
        /// The withdrawn prefix.
        prefix: Prefix,
    },
}

impl ElementaryEvent {
    /// The event's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            ElementaryEvent::Announce { timestamp, .. }
            | ElementaryEvent::Withdraw { timestamp, .. } => *timestamp,
        }
    }

    /// The prefix the event concerns.
    pub fn prefix(&self) -> Prefix {
        match self {
            ElementaryEvent::Announce { prefix, .. } | ElementaryEvent::Withdraw { prefix, .. } => {
                *prefix
            }
        }
    }

    /// Returns `true` for withdrawal events.
    pub fn is_withdraw(&self) -> bool {
        matches!(self, ElementaryEvent::Withdraw { .. })
    }

    /// Returns `true` for announcement events.
    pub fn is_announce(&self) -> bool {
        matches!(self, ElementaryEvent::Announce { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_path::AsPath;

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    #[test]
    fn single_announce_and_withdraw() {
        let attrs = RouteAttributes::from_path(AsPath::new([2u32, 5, 6]));
        let a = BgpMessage::announce(10, p(1), attrs.clone());
        assert!(a.has_announcements());
        assert!(!a.has_withdrawals());
        assert_eq!(a.announcement_count(), 1);
        assert_eq!(a.withdrawal_count(), 0);

        let w = BgpMessage::withdraw(20, p(1));
        assert!(w.has_withdrawals());
        assert!(!w.has_announcements());
        assert_eq!(w.withdrawal_count(), 1);
    }

    #[test]
    fn packed_messages_flatten_in_order() {
        let attrs = RouteAttributes::from_path(AsPath::new([2u32, 5]));
        let m = BgpMessage {
            timestamp: 5,
            kind: MessageKind::Update {
                prefixes: vec![p(10), p(11)],
                attrs: attrs.clone(),
                withdrawn: vec![p(20)],
            },
        };
        let ev = m.elementary_events();
        assert_eq!(ev.len(), 3);
        assert!(ev[0].is_withdraw());
        assert_eq!(ev[0].prefix(), p(20));
        assert!(ev[1].is_announce());
        assert!(ev[2].is_announce());
        assert!(ev.iter().all(|e| e.timestamp() == 5));
    }

    #[test]
    fn keepalive_has_no_events() {
        let k = BgpMessage::keepalive(1);
        assert!(k.elementary_events().is_empty());
        assert_eq!(k.withdrawal_count(), 0);
        assert_eq!(k.announcement_count(), 0);
        assert!(!k.has_withdrawals());
        assert!(!k.has_announcements());
    }

    #[test]
    fn packed_withdraw_counts() {
        let m = BgpMessage::withdraw_packed(3, vec![p(1), p(2), p(3)]);
        assert_eq!(m.withdrawal_count(), 3);
        assert_eq!(m.elementary_events().len(), 3);
        assert!(m.elementary_events().iter().all(|e| e.is_withdraw()));
    }

    #[test]
    fn announce_packed_counts() {
        let attrs = RouteAttributes::from_path(AsPath::new([7u32]));
        let m = BgpMessage::announce_packed(3, vec![p(1), p(2)], attrs);
        assert_eq!(m.announcement_count(), 2);
        assert!(m.elementary_events().iter().all(|e| e.is_announce()));
    }
}
