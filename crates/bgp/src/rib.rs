//! Routing Information Bases.
//!
//! * [`AdjRibIn`] — the per-peer RIB: what one neighbour currently announces.
//! * [`LocRib`] — the router-wide RIB: all candidate routes per prefix plus the
//!   standard BGP decision process selecting the best one.
//!
//! SWIFT needs both views: the inference algorithm's `W(l,t)` / `P(l,t)`
//! counters are defined over the paths announced on *one* session (the per-peer
//! view), whereas backup next-hop computation (§5) needs the alternative routes
//! announced by *other* peers (the router-wide view, see
//! [`crate::table::RoutingTable`]).

use crate::as_path::{AsLink, AsPath};
use crate::attributes::RouteAttributes;
use crate::message::ElementaryEvent;
use crate::prefix::Prefix;
use crate::session::PeerId;
use crate::Timestamp;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

/// A route for one prefix learned from one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The peer the route was learned from.
    pub peer: PeerId,
    /// The route's path attributes.
    pub attrs: RouteAttributes,
    /// When the route was last announced.
    pub learned_at: Timestamp,
}

impl Route {
    /// Creates a route.
    pub fn new(peer: PeerId, attrs: RouteAttributes, learned_at: Timestamp) -> Self {
        Route {
            peer,
            attrs,
            learned_at,
        }
    }

    /// The route's AS path.
    pub fn as_path(&self) -> &AsPath {
        &self.attrs.as_path
    }

    /// Compares two routes with the standard BGP decision process:
    /// 1. highest LOCAL_PREF,
    /// 2. shortest AS path,
    /// 3. lowest ORIGIN rank,
    /// 4. lowest MED,
    /// 5. oldest route,
    /// 6. lowest peer identifier (stand-in for lowest router ID).
    ///
    /// Returns [`Ordering::Greater`] if `self` is preferred over `other`.
    pub fn compare_preference(&self, other: &Route) -> Ordering {
        self.attrs
            .effective_local_pref()
            .cmp(&other.attrs.effective_local_pref())
            .then_with(|| other.attrs.as_path.len().cmp(&self.attrs.as_path.len()))
            .then_with(|| other.attrs.origin.rank().cmp(&self.attrs.origin.rank()))
            .then_with(|| other.attrs.effective_med().cmp(&self.attrs.effective_med()))
            .then_with(|| other.learned_at.cmp(&self.learned_at))
            .then_with(|| other.peer.cmp(&self.peer))
    }
}

/// The Adjacency-RIB-In of one peering session: prefix → route announced by
/// that peer.
#[derive(Debug, Clone, Default)]
pub struct AdjRibIn {
    routes: BTreeMap<Prefix, Route>,
}

impl AdjRibIn {
    /// Creates an empty per-peer RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes currently announced by the peer.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Returns `true` if the peer announces nothing.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The route for `prefix`, if announced.
    pub fn get(&self, prefix: &Prefix) -> Option<&Route> {
        self.routes.get(prefix)
    }

    /// Installs or replaces the route for a prefix. Returns the previous route
    /// if the prefix was already announced (an implicit withdrawal).
    pub fn announce(&mut self, prefix: Prefix, route: Route) -> Option<Route> {
        self.routes.insert(prefix, route)
    }

    /// Removes the route for a prefix. Returns the removed route if present.
    pub fn withdraw(&mut self, prefix: &Prefix) -> Option<Route> {
        self.routes.remove(prefix)
    }

    /// Applies a per-prefix event coming from this peer.
    pub fn apply(&mut self, peer: PeerId, event: &ElementaryEvent) -> Option<Route> {
        match event {
            ElementaryEvent::Announce {
                timestamp,
                prefix,
                attrs,
            } => self.announce(*prefix, Route::new(peer, attrs.clone(), *timestamp)),
            ElementaryEvent::Withdraw { prefix, .. } => self.withdraw(prefix),
        }
    }

    /// Iterates over `(prefix, route)` pairs in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &Route)> {
        self.routes.iter()
    }

    /// Iterates over the announced prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = &Prefix> {
        self.routes.keys()
    }

    /// Number of announced prefixes whose AS path traverses `link` (directed).
    pub fn prefixes_via_link(&self, link: &AsLink) -> usize {
        self.routes
            .values()
            .filter(|r| r.as_path().crosses_link(link))
            .count()
    }

    /// Collects the prefixes whose AS path traverses `link` (directed).
    pub fn prefix_set_via_link(&self, link: &AsLink) -> Vec<Prefix> {
        self.routes
            .iter()
            .filter(|(_, r)| r.as_path().crosses_link(link))
            .map(|(p, _)| *p)
            .collect()
    }
}

/// The router-wide RIB: all candidate routes per prefix, from all peers, with
/// best-path selection.
#[derive(Debug, Clone, Default)]
pub struct LocRib {
    /// prefix → (peer → route)
    candidates: BTreeMap<Prefix, HashMap<PeerId, Route>>,
}

impl LocRib {
    /// Creates an empty Loc-RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes with at least one candidate route.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Returns `true` if no prefix has any route.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Installs or replaces the route announced by `route.peer` for `prefix`.
    pub fn announce(&mut self, prefix: Prefix, route: Route) {
        self.candidates
            .entry(prefix)
            .or_default()
            .insert(route.peer, route);
    }

    /// Removes the route announced by `peer` for `prefix`.
    pub fn withdraw(&mut self, prefix: &Prefix, peer: PeerId) -> Option<Route> {
        let removed = self.candidates.get_mut(prefix)?.remove(&peer);
        if self
            .candidates
            .get(prefix)
            .map(|m| m.is_empty())
            .unwrap_or(false)
        {
            self.candidates.remove(prefix);
        }
        removed
    }

    /// Applies a per-prefix event received from `peer`.
    pub fn apply(&mut self, peer: PeerId, event: &ElementaryEvent) {
        match event {
            ElementaryEvent::Announce {
                timestamp,
                prefix,
                attrs,
            } => self.announce(*prefix, Route::new(peer, attrs.clone(), *timestamp)),
            ElementaryEvent::Withdraw { prefix, .. } => {
                self.withdraw(prefix, peer);
            }
        }
    }

    /// All candidate routes for a prefix (unordered).
    pub fn candidates(&self, prefix: &Prefix) -> impl Iterator<Item = &Route> {
        self.candidates
            .get(prefix)
            .into_iter()
            .flat_map(|m| m.values())
    }

    /// The best route for a prefix under the BGP decision process.
    pub fn best(&self, prefix: &Prefix) -> Option<&Route> {
        self.candidates(prefix)
            .max_by(|a, b| a.compare_preference(b))
    }

    /// The best route excluding those learned from `excluded` peer.
    pub fn best_excluding(&self, prefix: &Prefix, excluded: PeerId) -> Option<&Route> {
        self.candidates(prefix)
            .filter(|r| r.peer != excluded)
            .max_by(|a, b| a.compare_preference(b))
    }

    /// Iterates over all prefixes known to the Loc-RIB.
    pub fn prefixes(&self) -> impl Iterator<Item = &Prefix> {
        self.candidates.keys()
    }

    /// Iterates over `(prefix, best route)` for every prefix that has a best.
    pub fn best_routes(&self) -> impl Iterator<Item = (&Prefix, &Route)> {
        self.candidates
            .keys()
            .filter_map(move |p| self.best(p).map(|r| (p, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_path::AsPath;

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    fn route(peer: u32, hops: &[u32], lp: Option<u32>, t: Timestamp) -> Route {
        let mut attrs = RouteAttributes::from_path(AsPath::new(hops.iter().copied()));
        attrs.local_pref = lp;
        Route::new(PeerId(peer), attrs, t)
    }

    #[test]
    fn adj_rib_announce_withdraw_roundtrip() {
        let mut rib = AdjRibIn::new();
        assert!(rib.is_empty());
        assert!(rib.announce(p(1), route(1, &[2, 5, 6], None, 0)).is_none());
        assert_eq!(rib.len(), 1);
        // Re-announcement returns the implicit withdrawal.
        let old = rib.announce(p(1), route(1, &[3, 6], None, 5));
        assert!(old.is_some());
        assert_eq!(old.unwrap().as_path(), &AsPath::new([2u32, 5, 6]));
        assert!(rib.withdraw(&p(1)).is_some());
        assert!(rib.withdraw(&p(1)).is_none());
        assert!(rib.is_empty());
    }

    #[test]
    fn adj_rib_link_queries() {
        let mut rib = AdjRibIn::new();
        rib.announce(p(1), route(1, &[2, 5, 6], None, 0));
        rib.announce(p(2), route(1, &[2, 5, 6, 8], None, 0));
        rib.announce(p(3), route(1, &[2, 5, 7], None, 0));
        assert_eq!(rib.prefixes_via_link(&AsLink::new(5, 6)), 2);
        assert_eq!(rib.prefixes_via_link(&AsLink::new(2, 5)), 3);
        assert_eq!(rib.prefixes_via_link(&AsLink::new(6, 8)), 1);
        assert_eq!(rib.prefixes_via_link(&AsLink::new(9, 9)), 0);
        let via = rib.prefix_set_via_link(&AsLink::new(5, 6));
        assert_eq!(via, vec![p(1), p(2)]);
    }

    #[test]
    fn decision_process_local_pref_dominates() {
        let short_low = route(1, &[2, 6], Some(50), 0);
        let long_high = route(2, &[3, 4, 5, 6], Some(200), 0);
        assert_eq!(long_high.compare_preference(&short_low), Ordering::Greater);
    }

    #[test]
    fn decision_process_path_length_then_origin_then_med() {
        let a = route(1, &[2, 6], None, 0);
        let b = route(2, &[3, 4, 6], None, 0);
        assert_eq!(a.compare_preference(&b), Ordering::Greater);

        let mut igp = route(1, &[2, 6], None, 0);
        igp.attrs.origin = crate::attributes::Origin::Igp;
        let mut incomplete = route(2, &[3, 6], None, 0);
        incomplete.attrs.origin = crate::attributes::Origin::Incomplete;
        assert_eq!(igp.compare_preference(&incomplete), Ordering::Greater);

        let low_med = route(1, &[2, 6], None, 0).attrs.with_med(5);
        let high_med = route(2, &[3, 6], None, 0).attrs.with_med(50);
        let low = Route::new(PeerId(1), low_med, 0);
        let high = Route::new(PeerId(2), high_med, 0);
        assert_eq!(low.compare_preference(&high), Ordering::Greater);
    }

    #[test]
    fn decision_process_tiebreaks_on_age_then_peer() {
        let older = route(2, &[2, 6], None, 10);
        let newer = route(1, &[3, 6], None, 20);
        assert_eq!(older.compare_preference(&newer), Ordering::Greater);

        let peer_low = route(1, &[2, 6], None, 10);
        let peer_high = route(2, &[3, 6], None, 10);
        assert_eq!(peer_low.compare_preference(&peer_high), Ordering::Greater);
    }

    #[test]
    fn loc_rib_best_and_best_excluding() {
        let mut rib = LocRib::new();
        rib.announce(p(1), route(1, &[2, 5, 6], None, 0));
        rib.announce(p(1), route(2, &[3, 6], None, 0));
        rib.announce(p(1), route(3, &[4, 5, 6], None, 0));
        // Peer 2 has the shortest path.
        assert_eq!(rib.best(&p(1)).unwrap().peer, PeerId(2));
        // Excluding peer 2, peers 1 and 3 tie on length; lowest peer id wins.
        assert_eq!(
            rib.best_excluding(&p(1), PeerId(2)).unwrap().peer,
            PeerId(1)
        );
        assert_eq!(rib.candidates(&p(1)).count(), 3);
    }

    #[test]
    fn loc_rib_withdraw_cleans_up() {
        let mut rib = LocRib::new();
        rib.announce(p(1), route(1, &[2, 6], None, 0));
        rib.announce(p(1), route(2, &[3, 6], None, 0));
        assert_eq!(rib.len(), 1);
        assert!(rib.withdraw(&p(1), PeerId(1)).is_some());
        assert!(rib.withdraw(&p(1), PeerId(1)).is_none());
        assert_eq!(rib.best(&p(1)).unwrap().peer, PeerId(2));
        rib.withdraw(&p(1), PeerId(2));
        assert!(rib.is_empty());
        assert!(rib.best(&p(1)).is_none());
    }

    #[test]
    fn loc_rib_apply_events() {
        let mut rib = LocRib::new();
        let attrs = RouteAttributes::from_path(AsPath::new([2u32, 6]));
        rib.apply(
            PeerId(1),
            &ElementaryEvent::Announce {
                timestamp: 1,
                prefix: p(1),
                attrs,
            },
        );
        assert_eq!(rib.len(), 1);
        rib.apply(
            PeerId(1),
            &ElementaryEvent::Withdraw {
                timestamp: 2,
                prefix: p(1),
            },
        );
        assert!(rib.is_empty());
    }

    #[test]
    fn best_routes_iterates_all() {
        let mut rib = LocRib::new();
        for i in 0..5 {
            rib.announce(p(i), route(1, &[2, 6], None, 0));
            rib.announce(p(i), route(2, &[3, 4, 6], None, 0));
        }
        let bests: Vec<_> = rib.best_routes().collect();
        assert_eq!(bests.len(), 5);
        assert!(bests.iter().all(|(_, r)| r.peer == PeerId(1)));
    }
}
