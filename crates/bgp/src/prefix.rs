//! IPv4 prefixes.
//!
//! SWIFT reasons about routing state at prefix granularity: withdrawals,
//! announcements, RIB entries and fit-score counters are all keyed by prefix.
//! The paper's evaluation uses IPv4 routing tables (up to the ~650k-prefix full
//! table), so a compact `(u32, u8)` representation is used throughout.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// Errors produced when parsing or constructing a [`Prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The prefix length was larger than 32.
    InvalidLength(u8),
    /// The textual form could not be parsed.
    Malformed(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::InvalidLength(l) => write!(f, "invalid prefix length {l} (must be <= 32)"),
            PrefixError::Malformed(s) => write!(f, "malformed prefix `{s}`"),
        }
    }
}

impl std::error::Error for PrefixError {}

/// An IPv4 prefix: a network address and a prefix length.
///
/// The network address is always stored in canonical form, i.e. host bits are
/// zeroed. Two prefixes compare equal iff their canonical address and length
/// are equal. Ordering is lexicographic on `(address, length)` which groups
/// covering prefixes next to their more-specifics — convenient for range scans
/// over a [`PrefixSet`].
///
/// ```
/// use swift_bgp::Prefix;
/// let p: Prefix = "10.0.0.0/8".parse().unwrap();
/// assert!(p.contains(&"10.1.2.0/24".parse().unwrap()));
/// assert_eq!(p.to_string(), "10.0.0.0/8");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: 0, len: 0 };

    /// Creates a prefix from a raw `u32` network address and prefix length.
    ///
    /// Host bits are masked off; an error is returned if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::InvalidLength(len));
        }
        Ok(Prefix {
            addr: addr & Self::mask(len),
            len,
        })
    }

    /// Creates a prefix from dotted-quad octets and a length.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8, len: u8) -> Result<Self, PrefixError> {
        Self::new(u32::from_be_bytes([a, b, c, d]), len)
    }

    /// The canonical (masked) network address.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length in bits.
    ///
    /// A `len` of 0 is the default route, not an "empty" prefix, so there is
    /// deliberately no `is_empty` counterpart.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Returns `true` if this is the default route (`/0`).
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask corresponding to a prefix length.
    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// The netmask of this prefix as a `u32`.
    pub fn netmask(&self) -> u32 {
        Self::mask(self.len)
    }

    /// Number of addresses covered by this prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }

    /// Returns `true` if `other` is equal to or more specific than `self`
    /// (i.e. every address in `other` is covered by `self`).
    pub fn contains(&self, other: &Prefix) -> bool {
        other.len >= self.len && (other.addr & self.netmask()) == self.addr
    }

    /// Returns `true` if `addr` falls within this prefix.
    pub fn contains_addr(&self, addr: u32) -> bool {
        (addr & self.netmask()) == self.addr
    }

    /// Returns `true` if the two prefixes share any address.
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Splits this prefix into its two immediate more-specifics.
    ///
    /// Returns `None` for a /32 (which cannot be split).
    pub fn split(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let child_len = self.len + 1;
        let bit = 1u32 << (32 - u32::from(child_len));
        let lo = Prefix {
            addr: self.addr,
            len: child_len,
        };
        let hi = Prefix {
            addr: self.addr | bit,
            len: child_len,
        };
        Some((lo, hi))
    }

    /// The immediately covering prefix (one bit shorter), or `None` for `/0`.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Prefix {
                addr: self.addr & Self::mask(len),
                len,
            })
        }
    }

    /// Deterministically enumerates `count` distinct /24 prefixes starting from
    /// an index, useful for building synthetic routing tables.
    ///
    /// Index `i` maps to the /24 whose network address is `i << 8` within the
    /// unicast space starting at `1.0.0.0`; the mapping is injective for
    /// `i < 2^24 - 2^16`.
    pub fn nth_slash24(i: u32) -> Prefix {
        // Start after 0.0.0.0/8 to avoid the "this network" block.
        let base: u32 = 0x0100_0000;
        Prefix {
            addr: base.wrapping_add(i << 8),
            len: 24,
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", b[0], b[1], b[2], b[3], self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let malformed = || PrefixError::Malformed(s.to_string());
        let (addr_s, len_s) = s.split_once('/').ok_or_else(malformed)?;
        let len: u8 = len_s.parse().map_err(|_| malformed())?;
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in addr_s.split('.') {
            if n >= 4 {
                return Err(malformed());
            }
            octets[n] = part.parse().map_err(|_| malformed())?;
            n += 1;
        }
        if n != 4 {
            return Err(malformed());
        }
        Prefix::new(u32::from_be_bytes(octets), len)
    }
}

/// An ordered set of prefixes with the set algebra SWIFT's evaluation metrics
/// need (intersection / difference cardinalities for TPR / FPR computation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixSet {
    inner: BTreeSet<Prefix>,
}

impl PrefixSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes in the set.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts a prefix; returns `true` if it was not already present.
    pub fn insert(&mut self, p: Prefix) -> bool {
        self.inner.insert(p)
    }

    /// Removes a prefix; returns `true` if it was present.
    pub fn remove(&mut self, p: &Prefix) -> bool {
        self.inner.remove(p)
    }

    /// Membership test.
    pub fn contains(&self, p: &Prefix) -> bool {
        self.inner.contains(p)
    }

    /// Iterates over the prefixes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &Prefix> {
        self.inner.iter()
    }

    /// Number of prefixes present in both sets.
    pub fn intersection_len(&self, other: &PrefixSet) -> usize {
        if self.len() <= other.len() {
            self.inner.iter().filter(|p| other.contains(p)).count()
        } else {
            other.inner.iter().filter(|p| self.contains(p)).count()
        }
    }

    /// Number of prefixes in `self` but not in `other`.
    pub fn difference_len(&self, other: &PrefixSet) -> usize {
        self.len() - self.intersection_len(other)
    }

    /// Union of the two sets.
    pub fn union(&self, other: &PrefixSet) -> PrefixSet {
        let mut out = self.clone();
        out.inner.extend(other.inner.iter().copied());
        out
    }
}

impl FromIterator<Prefix> for PrefixSet {
    fn from_iter<T: IntoIterator<Item = Prefix>>(iter: T) -> Self {
        PrefixSet {
            inner: iter.into_iter().collect(),
        }
    }
}

impl Extend<Prefix> for PrefixSet {
    fn extend<T: IntoIterator<Item = Prefix>>(&mut self, iter: T) {
        self.inner.extend(iter)
    }
}

impl<'a> IntoIterator for &'a PrefixSet {
    type Item = &'a Prefix;
    type IntoIter = std::collections::btree_set::Iter<'a, Prefix>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl IntoIterator for PrefixSet {
    type Item = Prefix;
    type IntoIter = std::collections::btree_set::IntoIter<Prefix>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// Total order helper used by tests: compares display forms.
pub fn display_cmp(a: &Prefix, b: &Prefix) -> Ordering {
    a.to_string().cmp(&b.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["10.0.0.0/8", "192.168.1.0/24", "0.0.0.0/0", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn canonicalises_host_bits() {
        let p: Prefix = "10.1.2.3/8".parse().unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
        assert_eq!(p, "10.0.0.0/8".parse().unwrap());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Prefix::new(0, 33).is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0.1/8".parse::<Prefix>().is_err());
        assert!("a.b.c.d/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0/40".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment_rules() {
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let p24: Prefix = "10.1.2.0/24".parse().unwrap();
        let other: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(p8.contains(&p24));
        assert!(!p24.contains(&p8));
        assert!(p8.contains(&p8));
        assert!(!p8.contains(&other));
        assert!(p8.overlaps(&p24));
        assert!(p24.overlaps(&p8));
        assert!(!p8.overlaps(&other));
    }

    #[test]
    fn default_route_contains_everything() {
        let d = Prefix::DEFAULT;
        assert!(d.is_default());
        for s in ["10.0.0.0/8", "255.255.255.255/32", "0.0.0.0/0"] {
            assert!(d.contains(&s.parse().unwrap()));
        }
        assert_eq!(d.size(), 1 << 32);
    }

    #[test]
    fn split_and_parent_are_inverse() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let (lo, hi) = p.split().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        assert_eq!(lo.parent(), Some(p));
        assert_eq!(hi.parent(), Some(p));
        assert!(Prefix::from_octets(1, 2, 3, 4, 32)
            .unwrap()
            .split()
            .is_none());
        assert!(Prefix::DEFAULT.parent().is_none());
    }

    #[test]
    fn contains_addr_matches_mask() {
        let p: Prefix = "192.168.0.0/16".parse().unwrap();
        assert!(p.contains_addr(u32::from_be_bytes([192, 168, 42, 7])));
        assert!(!p.contains_addr(u32::from_be_bytes([192, 169, 0, 1])));
    }

    #[test]
    fn nth_slash24_is_injective_over_a_large_range() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            assert!(seen.insert(Prefix::nth_slash24(i)), "duplicate at {i}");
        }
        assert_eq!(Prefix::nth_slash24(0).to_string(), "1.0.0.0/24");
        assert_eq!(Prefix::nth_slash24(1).to_string(), "1.0.1.0/24");
    }

    #[test]
    fn prefix_set_algebra() {
        let a: PrefixSet = (0..100).map(Prefix::nth_slash24).collect();
        let b: PrefixSet = (50..150).map(Prefix::nth_slash24).collect();
        assert_eq!(a.len(), 100);
        assert_eq!(a.intersection_len(&b), 50);
        assert_eq!(a.difference_len(&b), 50);
        assert_eq!(b.difference_len(&a), 50);
        assert_eq!(a.union(&b).len(), 150);
        assert!(a.contains(&Prefix::nth_slash24(10)));
        assert!(!a.contains(&Prefix::nth_slash24(120)));
    }

    #[test]
    fn prefix_set_insert_remove() {
        let mut s = PrefixSet::new();
        assert!(s.is_empty());
        let p = Prefix::nth_slash24(3);
        assert!(s.insert(p));
        assert!(!s.insert(p));
        assert_eq!(s.len(), 1);
        assert!(s.remove(&p));
        assert!(!s.remove(&p));
        assert!(s.is_empty());
    }

    #[test]
    fn ordering_is_consistent_with_eq() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.0.0.0/9".parse().unwrap();
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
