//! AS numbers, AS-level links and AS paths.
//!
//! The SWIFT inference algorithm localises failures to *AS links* extracted from
//! the AS paths carried in BGP messages, and the encoding scheme assigns tag bits
//! to `(link, position-in-path)` pairs. This module provides those types, with
//! the position conventions of the paper (§5): position *i* denotes the *i*-th
//! link of the AS path as seen from the SWIFTED router, where position 1 is the
//! link between the first and second ASes in the path (the link adjacent to the
//! router's next-hop AS is "depth 0" and is handled by ordinary local
//! fast-reroute, so SWIFT encodes positions starting at 1).

use std::fmt;

/// An Autonomous System number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl Asn {
    /// The raw 32-bit AS number.
    pub fn value(&self) -> u32 {
        self.0
    }
}

/// A directed AS-level link `(from, to)` as it appears along a forwarding path.
///
/// The paper writes links as ordered pairs following the direction of the AS
/// path from the vantage point, e.g. `(5, 6)` in Fig. 1. Two helpers are
/// provided: [`AsLink::reversed`] and [`AsLink::same_undirected`], since
/// inference treats a link and its reverse as the same physical adjacency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsLink {
    /// The AS closer to the vantage point along the path.
    pub from: Asn,
    /// The AS farther from the vantage point along the path.
    pub to: Asn,
}

impl AsLink {
    /// Creates a directed link.
    pub fn new(from: impl Into<Asn>, to: impl Into<Asn>) -> Self {
        AsLink {
            from: from.into(),
            to: to.into(),
        }
    }

    /// The same adjacency traversed in the opposite direction.
    pub fn reversed(&self) -> AsLink {
        AsLink {
            from: self.to,
            to: self.from,
        }
    }

    /// Returns `true` if `other` is the same physical adjacency, regardless of
    /// direction.
    pub fn same_undirected(&self, other: &AsLink) -> bool {
        self == other || *self == other.reversed()
    }

    /// Canonical undirected form: endpoints ordered by AS number.
    pub fn undirected(&self) -> AsLink {
        if self.from <= self.to {
            *self
        } else {
            self.reversed()
        }
    }

    /// Returns `true` if `asn` is one of the two endpoints.
    pub fn has_endpoint(&self, asn: Asn) -> bool {
        self.from == asn || self.to == asn
    }

    /// The endpoint shared with `other`, if any.
    pub fn common_endpoint(&self, other: &AsLink) -> Option<Asn> {
        [self.from, self.to]
            .into_iter()
            .find(|&a| other.has_endpoint(a))
    }
}

impl fmt::Display for AsLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.from.0, self.to.0)
    }
}

/// An AS path: the sequence of ASes a route traverses, nearest AS first.
///
/// `AsPath::new([2, 5, 6])` is the path through neighbour AS 2, then AS 5, then
/// origin AS 6 — matching the notation `(2 5 6)` in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AsPath {
    hops: Vec<Asn>,
}

impl AsPath {
    /// Builds a path from a sequence of AS numbers, nearest first.
    pub fn new<I, T>(hops: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Asn>,
    {
        AsPath {
            hops: hops.into_iter().map(Into::into).collect(),
        }
    }

    /// The empty path (used for locally-originated routes).
    pub fn empty() -> Self {
        AsPath { hops: Vec::new() }
    }

    /// Number of ASes in the path.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Returns `true` if the path has no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The ASes in order, nearest first.
    pub fn hops(&self) -> &[Asn] {
        &self.hops
    }

    /// The neighbouring AS (first hop), i.e. the BGP next-hop AS.
    pub fn first_hop(&self) -> Option<Asn> {
        self.hops.first().copied()
    }

    /// The origin AS (last hop).
    pub fn origin(&self) -> Option<Asn> {
        self.hops.last().copied()
    }

    /// Returns `true` if `asn` appears anywhere in the path.
    pub fn contains_as(&self, asn: Asn) -> bool {
        self.hops.contains(&asn)
    }

    /// Prepends an AS (standard BGP export behaviour).
    pub fn prepend(&self, asn: impl Into<Asn>) -> AsPath {
        let mut hops = Vec::with_capacity(self.hops.len() + 1);
        hops.push(asn.into());
        hops.extend_from_slice(&self.hops);
        AsPath { hops }
    }

    /// Returns `true` if prepending `asn` would create an AS loop.
    pub fn would_loop(&self, asn: Asn) -> bool {
        self.contains_as(asn)
    }

    /// Iterates over the directed links of the path, nearest first.
    ///
    /// The path `(2 5 6)` yields `(2,5)` then `(5,6)`.
    pub fn links(&self) -> impl Iterator<Item = AsLink> + '_ {
        self.hops.windows(2).map(|w| AsLink::new(w[0], w[1]))
    }

    /// The link at 1-based position `pos` (position 1 = first link), if any.
    ///
    /// This matches the paper's tag layout where the first encoded bit group
    /// represents the first link of the AS path.
    pub fn link_at_position(&self, pos: usize) -> Option<AsLink> {
        if pos == 0 || pos >= self.hops.len() {
            return None;
        }
        Some(AsLink::new(self.hops[pos - 1], self.hops[pos]))
    }

    /// The 1-based position of the first occurrence of `link` (directed), if
    /// the path traverses it.
    pub fn position_of_link(&self, link: &AsLink) -> Option<usize> {
        self.links().position(|l| l == *link).map(|i| i + 1)
    }

    /// Returns `true` if the path traverses `link` in the given direction.
    pub fn crosses_link(&self, link: &AsLink) -> bool {
        self.links().any(|l| l == *link)
    }

    /// Returns `true` if the path traverses the adjacency `link` in either
    /// direction.
    pub fn crosses_link_undirected(&self, link: &AsLink) -> bool {
        self.links().any(|l| l.same_undirected(link))
    }

    /// Returns `true` if any of the given links is traversed (directed match).
    pub fn crosses_any(&self, links: &[AsLink]) -> bool {
        self.links().any(|l| links.contains(&l))
    }

    /// Returns `true` if the path visits any endpoint of `link`.
    ///
    /// SWIFT's safety rule (§4.2) selects backup paths avoiding *both*
    /// endpoints of every inferred link, because the common endpoint of an
    /// aggregated link set is not known in advance.
    pub fn visits_endpoint_of(&self, link: &AsLink) -> bool {
        self.contains_as(link.from) || self.contains_as(link.to)
    }

    /// Returns `true` if the path contains a repeated AS (a routing loop).
    pub fn has_loop(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.hops.len());
        self.hops.iter().any(|h| !seen.insert(*h))
    }

    /// Number of links in the path (`len() - 1`, or 0 for empty paths).
    pub fn link_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", h.0)?;
        }
        write!(f, ")")
    }
}

impl<T: Into<Asn>> FromIterator<T> for AsPath {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        AsPath::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::new(hops.iter().copied())
    }

    #[test]
    fn link_extraction_matches_paper_example() {
        // Path (2 5 6 8): prefixes of AS 8 as seen by AS 1 in Fig. 1.
        let p = path(&[2, 5, 6, 8]);
        let links: Vec<_> = p.links().collect();
        assert_eq!(
            links,
            vec![AsLink::new(2, 5), AsLink::new(5, 6), AsLink::new(6, 8)]
        );
        assert_eq!(p.link_at_position(1), Some(AsLink::new(2, 5)));
        assert_eq!(p.link_at_position(2), Some(AsLink::new(5, 6)));
        assert_eq!(p.link_at_position(3), Some(AsLink::new(6, 8)));
        assert_eq!(p.link_at_position(4), None);
        assert_eq!(p.link_at_position(0), None);
        assert_eq!(p.position_of_link(&AsLink::new(5, 6)), Some(2));
        assert_eq!(p.position_of_link(&AsLink::new(6, 5)), None);
    }

    #[test]
    fn first_hop_and_origin() {
        let p = path(&[2, 5, 6, 8]);
        assert_eq!(p.first_hop(), Some(Asn(2)));
        assert_eq!(p.origin(), Some(Asn(8)));
        assert!(AsPath::empty().first_hop().is_none());
        assert!(AsPath::empty().origin().is_none());
    }

    #[test]
    fn prepend_and_loop_detection() {
        let p = path(&[5, 6]);
        let q = p.prepend(2u32);
        assert_eq!(q, path(&[2, 5, 6]));
        assert!(!q.has_loop());
        assert!(q.would_loop(Asn(5)));
        assert!(!q.would_loop(Asn(9)));
        let looped = path(&[2, 5, 2]);
        assert!(looped.has_loop());
    }

    #[test]
    fn crossing_checks() {
        let p = path(&[2, 5, 6, 8]);
        assert!(p.crosses_link(&AsLink::new(5, 6)));
        assert!(!p.crosses_link(&AsLink::new(6, 5)));
        assert!(p.crosses_link_undirected(&AsLink::new(6, 5)));
        assert!(p.crosses_any(&[AsLink::new(9, 9), AsLink::new(6, 8)]));
        assert!(!p.crosses_any(&[AsLink::new(9, 9)]));
        assert!(p.visits_endpoint_of(&AsLink::new(6, 99)));
        assert!(!p.visits_endpoint_of(&AsLink::new(98, 99)));
    }

    #[test]
    fn undirected_link_canonicalisation() {
        let a = AsLink::new(6, 5);
        assert_eq!(a.undirected(), AsLink::new(5, 6));
        assert_eq!(AsLink::new(5, 6).undirected(), AsLink::new(5, 6));
        assert!(a.same_undirected(&AsLink::new(5, 6)));
        assert!(!a.same_undirected(&AsLink::new(5, 7)));
    }

    #[test]
    fn common_endpoint() {
        let a = AsLink::new(5, 6);
        let b = AsLink::new(6, 8);
        let c = AsLink::new(1, 2);
        assert_eq!(a.common_endpoint(&b), Some(Asn(6)));
        assert_eq!(a.common_endpoint(&c), None);
        assert!(a.has_endpoint(Asn(5)));
        assert!(!a.has_endpoint(Asn(7)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Asn(65000).to_string(), "AS65000");
        assert_eq!(AsLink::new(5, 6).to_string(), "(5, 6)");
        assert_eq!(path(&[2, 5, 6]).to_string(), "(2 5 6)");
        assert_eq!(AsPath::empty().to_string(), "()");
    }

    #[test]
    fn link_count_and_len() {
        assert_eq!(path(&[2, 5, 6]).link_count(), 2);
        assert_eq!(path(&[2]).link_count(), 0);
        assert_eq!(AsPath::empty().link_count(), 0);
        assert_eq!(path(&[2, 5, 6]).len(), 3);
        assert!(!path(&[2]).is_empty());
        assert!(AsPath::empty().is_empty());
    }

    #[test]
    fn from_iterator() {
        let p: AsPath = [1u32, 2, 3].into_iter().collect();
        assert_eq!(p, path(&[1, 2, 3]));
    }
}
