//! AS-path interning: dense [`PathId`]s over shared path storage.
//!
//! Internet routing tables are heavily redundant at the AS-path level: a full
//! table of ~900k prefixes typically carries well under 100k *distinct* AS
//! paths, because every prefix originated by the same AS behind the same
//! provider chain shares one path. The SWIFT inference hot path (RIB seeding,
//! per-link counters, trace replay) used to clone a heap-allocated [`AsPath`]
//! per prefix and per event; interning replaces those clones with a `u32`
//! [`PathId`] into a [`PathInterner`], and cloning an interner (or an
//! [`InternedRib`]) only copies `Arc` pointers — the path allocations
//! themselves are shared.

use crate::as_path::AsPath;
use crate::prefix::Prefix;
use std::collections::HashMap;
use std::sync::Arc;

/// A dense identifier for an interned [`AsPath`].
///
/// Ids are assigned sequentially by the [`PathInterner`] that produced them
/// and are only meaningful relative to that interner (or a clone of it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(u32);

impl PathId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Deduplicating storage for [`AsPath`]s.
///
/// [`PathInterner::intern`] returns the same [`PathId`] for equal paths;
/// lookups by id are O(1). Cloning an interner shares the underlying path
/// allocations (`Arc`), so seeding several consumers from one interned RIB
/// does not duplicate path storage.
#[derive(Debug, Clone, Default)]
pub struct PathInterner {
    paths: Vec<Arc<AsPath>>,
    index: HashMap<Arc<AsPath>, PathId>,
}

impl PathInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `path`, cloning it only if it has not been seen before.
    pub fn intern(&mut self, path: &AsPath) -> PathId {
        if let Some(id) = self.index.get(path) {
            return *id;
        }
        self.insert_new(Arc::new(path.clone()))
    }

    /// Interns an owned path without cloning (the path is dropped if an equal
    /// one is already interned).
    pub fn intern_owned(&mut self, path: AsPath) -> PathId {
        if let Some(id) = self.index.get(&path) {
            return *id;
        }
        self.insert_new(Arc::new(path))
    }

    fn insert_new(&mut self, arc: Arc<AsPath>) -> PathId {
        let id = PathId(u32::try_from(self.paths.len()).expect("more than u32::MAX paths"));
        self.paths.push(Arc::clone(&arc));
        self.index.insert(arc, id);
        id
    }

    /// The path behind `id`. Panics if `id` came from a different interner.
    pub fn get(&self, id: PathId) -> &AsPath {
        &self.paths[id.index()]
    }

    /// The shared handle behind `id` (an `Arc` clone, no path copy).
    pub fn get_arc(&self, id: PathId) -> Arc<AsPath> {
        Arc::clone(&self.paths[id.index()])
    }

    /// The id of `path` if it is already interned.
    pub fn lookup(&self, path: &AsPath) -> Option<PathId> {
        self.index.get(path).copied()
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// An Adj-RIB-In snapshot with interned paths: `(Prefix, PathId)` entries over
/// a [`PathInterner`].
///
/// This is the zero-copy seeding format for the SWIFT inference pipeline: the
/// trace corpus materialises sessions into an `InternedRib`, and consumers
/// (per-session counters, engines) share its path storage instead of cloning
/// one `AsPath` per prefix.
#[derive(Debug, Clone, Default)]
pub struct InternedRib {
    interner: PathInterner,
    entries: Vec<(Prefix, PathId)>,
}

impl InternedRib {
    /// Creates an empty interned RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry, interning `path`.
    pub fn push(&mut self, prefix: Prefix, path: &AsPath) {
        let id = self.interner.intern(path);
        self.entries.push((prefix, id));
    }

    /// Appends an entry from an owned path (no clone for new paths).
    pub fn push_owned(&mut self, prefix: Prefix, path: AsPath) {
        let id = self.interner.intern_owned(path);
        self.entries.push((prefix, id));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the RIB has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at `idx` as `(prefix, path)`.
    pub fn get(&self, idx: usize) -> (Prefix, &AsPath) {
        let (prefix, id) = self.entries[idx];
        (prefix, self.interner.get(id))
    }

    /// Iterates over `(prefix, path)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &AsPath)> {
        self.entries
            .iter()
            .map(|(p, id)| (p, self.interner.get(*id)))
    }

    /// The raw `(prefix, id)` entries.
    pub fn entries(&self) -> &[(Prefix, PathId)] {
        &self.entries
    }

    /// The backing interner.
    pub fn interner(&self) -> &PathInterner {
        &self.interner
    }

    /// Number of distinct paths across all entries.
    pub fn distinct_paths(&self) -> usize {
        self.interner.len()
    }
}

impl PartialEq for InternedRib {
    /// Semantic equality: same `(prefix, path)` sequence, regardless of how
    /// ids were assigned.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl FromIterator<(Prefix, AsPath)> for InternedRib {
    fn from_iter<I: IntoIterator<Item = (Prefix, AsPath)>>(iter: I) -> Self {
        let mut rib = InternedRib::new();
        for (prefix, path) in iter {
            rib.push_owned(prefix, path);
        }
        rib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::new(hops.iter().copied())
    }

    #[test]
    fn interning_dedupes_equal_paths() {
        let mut i = PathInterner::new();
        let a = i.intern(&path(&[2, 5, 6]));
        let b = i.intern(&path(&[2, 5, 6]));
        let c = i.intern(&path(&[2, 5, 7]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get(a), &path(&[2, 5, 6]));
        assert_eq!(i.get(c), &path(&[2, 5, 7]));
        assert_eq!(i.lookup(&path(&[2, 5, 6])), Some(a));
        assert_eq!(i.lookup(&path(&[9, 9])), None);
    }

    #[test]
    fn intern_owned_matches_intern() {
        let mut i = PathInterner::new();
        let a = i.intern(&path(&[1, 2]));
        let b = i.intern_owned(path(&[1, 2]));
        let c = i.intern_owned(path(&[1, 3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn clones_share_path_storage() {
        let mut i = PathInterner::new();
        let id = i.intern(&path(&[2, 5, 6]));
        let clone = i.clone();
        assert!(Arc::ptr_eq(&i.get_arc(id), &clone.get_arc(id)));
        assert_eq!(clone.get(id), i.get(id));
    }

    #[test]
    fn interned_rib_roundtrip() {
        let mut rib = InternedRib::new();
        for k in 0..10u32 {
            rib.push(Prefix::nth_slash24(k), &path(&[2, 5, 6]));
        }
        rib.push_owned(Prefix::nth_slash24(10), path(&[2, 9]));
        assert_eq!(rib.len(), 11);
        assert!(!rib.is_empty());
        assert_eq!(rib.distinct_paths(), 2, "10 shared + 1 distinct");
        assert_eq!(rib.get(0), (Prefix::nth_slash24(0), &path(&[2, 5, 6])));
        assert_eq!(rib.iter().count(), 11);
        let (p, a) = rib.iter().last().unwrap();
        assert_eq!(*p, Prefix::nth_slash24(10));
        assert_eq!(a, &path(&[2, 9]));
    }

    #[test]
    fn interned_rib_semantic_equality() {
        let a: InternedRib = (0..5u32)
            .map(|k| (Prefix::nth_slash24(k), path(&[2, 5, k])))
            .collect();
        let b: InternedRib = (0..5u32)
            .map(|k| (Prefix::nth_slash24(k), path(&[2, 5, k])))
            .collect();
        assert_eq!(a, b);
        let c: InternedRib = (0..5u32)
            .map(|k| (Prefix::nth_slash24(k), path(&[2, 6, k])))
            .collect();
        assert_ne!(a, c);
        assert_ne!(a, InternedRib::new());
    }
}
