//! BGP peering sessions and timestamped message streams.
//!
//! The SWIFT inference algorithm runs *per BGP session* (§4.1): each session's
//! message stream is analysed independently, which also enables parallelism.
//! [`MessageStream`] is an always-time-ordered sequence of [`BgpMessage`]s and
//! offers the windowed withdrawal counting that burst detection builds on.

use crate::as_path::Asn;
use crate::message::{BgpMessage, ElementaryEvent};
use crate::Timestamp;
use std::fmt;

/// Identifier of a BGP peer (an eBGP or iBGP neighbour of the SWIFTED router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

impl From<u32> for PeerId {
    fn from(v: u32) -> Self {
        PeerId(v)
    }
}

/// Identifier of a BGP session. One peer maintains exactly one session in this
/// model, but the two identifiers are kept distinct for clarity at call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session{}", self.0)
    }
}

impl From<u32> for SessionId {
    fn from(v: u32) -> Self {
        SessionId(v)
    }
}

/// A time-ordered stream of BGP messages received on one session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageStream {
    messages: Vec<BgpMessage>,
}

impl MessageStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a stream from messages, sorting them by timestamp (stable, so
    /// messages with equal timestamps keep their relative order).
    pub fn from_messages(mut messages: Vec<BgpMessage>) -> Self {
        messages.sort_by_key(|m| m.timestamp);
        MessageStream { messages }
    }

    /// Appends a message, keeping the stream ordered. Appending in
    /// non-decreasing timestamp order is O(1); out-of-order pushes fall back to
    /// an insertion.
    pub fn push(&mut self, msg: BgpMessage) {
        match self.messages.last() {
            Some(last) if last.timestamp > msg.timestamp => {
                let idx = self
                    .messages
                    .partition_point(|m| m.timestamp <= msg.timestamp);
                self.messages.insert(idx, msg);
            }
            _ => self.messages.push(msg),
        }
    }

    /// Number of messages in the stream.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Returns `true` if the stream holds no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The messages, in timestamp order.
    pub fn messages(&self) -> &[BgpMessage] {
        &self.messages
    }

    /// Iterates over per-prefix elementary events in timestamp order.
    pub fn elementary_events(&self) -> impl Iterator<Item = ElementaryEvent> + '_ {
        self.messages.iter().flat_map(|m| m.elementary_events())
    }

    /// Total number of prefix withdrawals across the stream.
    pub fn total_withdrawals(&self) -> usize {
        self.messages.iter().map(|m| m.withdrawal_count()).sum()
    }

    /// Total number of prefix announcements across the stream.
    pub fn total_announcements(&self) -> usize {
        self.messages.iter().map(|m| m.announcement_count()).sum()
    }

    /// Timestamp of the first message, if any.
    pub fn start(&self) -> Option<Timestamp> {
        self.messages.first().map(|m| m.timestamp)
    }

    /// Timestamp of the last message, if any.
    pub fn end(&self) -> Option<Timestamp> {
        self.messages.last().map(|m| m.timestamp)
    }

    /// Duration between first and last message (0 for empty or singleton).
    pub fn duration(&self) -> Timestamp {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e - s,
            _ => 0,
        }
    }

    /// Number of prefix withdrawals received in the half-open window
    /// `[from, to)`.
    pub fn withdrawals_in_window(&self, from: Timestamp, to: Timestamp) -> usize {
        let lo = self.messages.partition_point(|m| m.timestamp < from);
        let hi = self.messages.partition_point(|m| m.timestamp < to);
        self.messages[lo..hi]
            .iter()
            .map(|m| m.withdrawal_count())
            .sum()
    }

    /// Merges two streams into a new ordered stream.
    pub fn merge(&self, other: &MessageStream) -> MessageStream {
        let mut all = Vec::with_capacity(self.len() + other.len());
        all.extend_from_slice(&self.messages);
        all.extend_from_slice(&other.messages);
        MessageStream::from_messages(all)
    }

    /// Returns the sub-stream of messages with timestamps in `[from, to)`.
    pub fn slice(&self, from: Timestamp, to: Timestamp) -> MessageStream {
        let lo = self.messages.partition_point(|m| m.timestamp < from);
        let hi = self.messages.partition_point(|m| m.timestamp < to);
        MessageStream {
            messages: self.messages[lo..hi].to_vec(),
        }
    }
}

impl FromIterator<BgpMessage> for MessageStream {
    fn from_iter<T: IntoIterator<Item = BgpMessage>>(iter: T) -> Self {
        MessageStream::from_messages(iter.into_iter().collect())
    }
}

/// A BGP session: the remote peer's identity plus the messages received on it.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// Session identifier.
    pub id: SessionId,
    /// The neighbouring peer.
    pub peer: PeerId,
    /// The AS number of the neighbouring peer.
    pub peer_asn: Asn,
    /// Messages received on this session, time-ordered.
    pub stream: MessageStream,
}

impl Session {
    /// Creates an empty session.
    pub fn new(id: SessionId, peer: PeerId, peer_asn: Asn) -> Self {
        Session {
            id,
            peer,
            peer_asn,
            stream: MessageStream::new(),
        }
    }

    /// Appends a received message.
    pub fn receive(&mut self, msg: BgpMessage) {
        self.stream.push(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::RouteAttributes;
    use crate::prefix::Prefix;
    use crate::SECOND;

    fn wd(t: Timestamp, i: u32) -> BgpMessage {
        BgpMessage::withdraw(t, Prefix::nth_slash24(i))
    }

    fn ann(t: Timestamp, i: u32) -> BgpMessage {
        BgpMessage::announce(t, Prefix::nth_slash24(i), RouteAttributes::default())
    }

    #[test]
    fn push_keeps_order_even_when_out_of_order() {
        let mut s = MessageStream::new();
        s.push(wd(10, 1));
        s.push(wd(5, 2));
        s.push(wd(20, 3));
        s.push(wd(15, 4));
        let ts: Vec<_> = s.messages().iter().map(|m| m.timestamp).collect();
        assert_eq!(ts, vec![5, 10, 15, 20]);
    }

    #[test]
    fn from_messages_sorts() {
        let s = MessageStream::from_messages(vec![wd(30, 1), wd(10, 2), wd(20, 3)]);
        assert_eq!(s.start(), Some(10));
        assert_eq!(s.end(), Some(30));
        assert_eq!(s.duration(), 20);
    }

    #[test]
    fn counting_and_windows() {
        let s: MessageStream = (0..10).map(|i| wd(i * SECOND, i as u32)).collect();
        assert_eq!(s.total_withdrawals(), 10);
        assert_eq!(s.total_announcements(), 0);
        assert_eq!(s.withdrawals_in_window(0, 5 * SECOND), 5);
        assert_eq!(s.withdrawals_in_window(5 * SECOND, 10 * SECOND), 5);
        assert_eq!(s.withdrawals_in_window(100 * SECOND, 200 * SECOND), 0);
    }

    #[test]
    fn merge_interleaves() {
        let a: MessageStream = vec![wd(1, 1), wd(3, 2)].into_iter().collect();
        let b: MessageStream = vec![ann(2, 3), ann(4, 4)].into_iter().collect();
        let m = a.merge(&b);
        let ts: Vec<_> = m.messages().iter().map(|m| m.timestamp).collect();
        assert_eq!(ts, vec![1, 2, 3, 4]);
        assert_eq!(m.total_withdrawals(), 2);
        assert_eq!(m.total_announcements(), 2);
    }

    #[test]
    fn slice_is_half_open() {
        let s: MessageStream = (0..10u64).map(|t| wd(t, t as u32)).collect();
        let sub = s.slice(2, 5);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.start(), Some(2));
        assert_eq!(sub.end(), Some(4));
    }

    #[test]
    fn elementary_event_iteration() {
        let s: MessageStream = vec![wd(1, 1), ann(2, 2)].into_iter().collect();
        let ev: Vec<_> = s.elementary_events().collect();
        assert_eq!(ev.len(), 2);
        assert!(ev[0].is_withdraw());
        assert!(ev[1].is_announce());
    }

    #[test]
    fn session_receive() {
        let mut sess = Session::new(SessionId(1), PeerId(7), Asn(65001));
        sess.receive(wd(5, 1));
        sess.receive(wd(3, 2));
        assert_eq!(sess.stream.len(), 2);
        assert_eq!(sess.stream.start(), Some(3));
        assert_eq!(sess.peer, PeerId(7));
        assert_eq!(sess.peer_asn, Asn(65001));
    }

    #[test]
    fn empty_stream_edge_cases() {
        let s = MessageStream::new();
        assert!(s.is_empty());
        assert_eq!(s.duration(), 0);
        assert_eq!(s.start(), None);
        assert_eq!(s.end(), None);
        assert_eq!(s.withdrawals_in_window(0, 100), 0);
    }

    #[test]
    fn display_ids() {
        assert_eq!(PeerId(3).to_string(), "peer3");
        assert_eq!(SessionId(9).to_string(), "session9");
    }
}
