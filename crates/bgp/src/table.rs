//! Router-wide routing table: the view a SWIFTED border router has of the
//! world.
//!
//! [`RoutingTable`] combines the per-peer Adj-RIB-Ins with best-path selection
//! and offers the queries the SWIFT algorithms are built on:
//!
//! * which prefixes are currently forwarded over a given AS link, and at which
//!   position of their AS path (used both by the inference counters and by the
//!   encoding scheme's bit allocation);
//! * which peers offer an alternate path for a prefix that avoids a given set
//!   of ASes (used by backup next-hop computation, §5).

use crate::as_path::{AsLink, Asn};
use crate::message::ElementaryEvent;
use crate::prefix::Prefix;
use crate::rib::{AdjRibIn, LocRib, Route};
use crate::session::PeerId;
use std::collections::{BTreeMap, HashMap};

/// The router-wide routing state: one [`AdjRibIn`] per peer plus a [`LocRib`].
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    peers: BTreeMap<PeerId, PeerState>,
    loc_rib: LocRib,
}

/// Per-peer state held by the routing table.
#[derive(Debug, Clone)]
struct PeerState {
    asn: Asn,
    rib: AdjRibIn,
}

impl RoutingTable {
    /// Creates an empty routing table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a peer. Re-registering an existing peer keeps its RIB but
    /// adopts the given AS number (a peer may renumber between sessions).
    /// Messages from unknown peers are rejected by [`RoutingTable::apply`].
    pub fn add_peer(&mut self, peer: PeerId, asn: Asn) {
        self.peers
            .entry(peer)
            .and_modify(|state| state.asn = asn)
            .or_insert(PeerState {
                asn,
                rib: AdjRibIn::new(),
            });
    }

    /// The AS number of a registered peer.
    pub fn peer_asn(&self, peer: PeerId) -> Option<Asn> {
        self.peers.get(&peer).map(|s| s.asn)
    }

    /// The registered peers, in id order.
    pub fn peers(&self) -> impl Iterator<Item = (PeerId, Asn)> + '_ {
        self.peers.iter().map(|(p, s)| (*p, s.asn))
    }

    /// Number of registered peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// The per-peer RIB of a registered peer.
    pub fn adj_rib_in(&self, peer: PeerId) -> Option<&AdjRibIn> {
        self.peers.get(&peer).map(|s| &s.rib)
    }

    /// The router-wide Loc-RIB.
    pub fn loc_rib(&self) -> &LocRib {
        &self.loc_rib
    }

    /// Applies a per-prefix event received from `peer`.
    ///
    /// Returns `false` (and changes nothing) if the peer is not registered.
    pub fn apply(&mut self, peer: PeerId, event: &ElementaryEvent) -> bool {
        let Some(state) = self.peers.get_mut(&peer) else {
            return false;
        };
        state.rib.apply(peer, event);
        self.loc_rib.apply(peer, event);
        true
    }

    /// Bulk-announces a prefix from a peer (convenience used by generators).
    pub fn announce(&mut self, peer: PeerId, prefix: Prefix, route: Route) -> bool {
        let Some(state) = self.peers.get_mut(&peer) else {
            return false;
        };
        state.rib.announce(prefix, route.clone());
        self.loc_rib.announce(prefix, route);
        true
    }

    /// Withdraws every route learned from `peer` — Adj-RIB-In and Loc-RIB —
    /// while keeping the peer registered: the state of a BGP session that
    /// just went down but may re-establish. Returns the prefixes whose route
    /// from `peer` was withdrawn (unregistered peers yield an empty list).
    pub fn clear_peer(&mut self, peer: PeerId) -> Vec<Prefix> {
        let Some(state) = self.peers.get_mut(&peer) else {
            return Vec::new();
        };
        let rib = std::mem::take(&mut state.rib);
        let prefixes: Vec<Prefix> = rib.prefixes().copied().collect();
        for prefix in &prefixes {
            self.loc_rib.withdraw(prefix, peer);
        }
        prefixes
    }

    /// Total number of prefixes with at least one route.
    pub fn prefix_count(&self) -> usize {
        self.loc_rib.len()
    }

    /// The best route for a prefix.
    pub fn best(&self, prefix: &Prefix) -> Option<&Route> {
        self.loc_rib.best(prefix)
    }

    /// The best route for a prefix among routes from peers other than `peer`.
    pub fn best_excluding(&self, prefix: &Prefix, peer: PeerId) -> Option<&Route> {
        self.loc_rib.best_excluding(prefix, peer)
    }

    /// All candidate routes for a prefix.
    pub fn candidates(&self, prefix: &Prefix) -> impl Iterator<Item = &Route> {
        self.loc_rib.candidates(prefix)
    }

    /// Iterates over `(prefix, best route)` pairs.
    pub fn best_routes(&self) -> impl Iterator<Item = (&Prefix, &Route)> {
        self.loc_rib.best_routes()
    }

    /// Counts, for every directed AS link appearing in the best paths learned
    /// from `peer`, how many of that peer's prefixes traverse it.
    ///
    /// This is the `W(l,t) + P(l,t)` denominator basis of the Path Share metric
    /// and the per-link prefix counts the encoding scheme prioritises on.
    pub fn link_prefix_counts(&self, peer: PeerId) -> HashMap<AsLink, usize> {
        let mut counts: HashMap<AsLink, usize> = HashMap::new();
        if let Some(state) = self.peers.get(&peer) {
            for (_, route) in state.rib.iter() {
                for link in route.as_path().links() {
                    *counts.entry(link).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// Counts, for every `(position, link)` pair appearing in the best paths
    /// learned from `peer`, how many prefixes use that link at that 1-based
    /// position. Used by the encoding scheme's per-position bit allocation.
    pub fn positional_link_counts(&self, peer: PeerId) -> HashMap<(usize, AsLink), usize> {
        let mut counts: HashMap<(usize, AsLink), usize> = HashMap::new();
        if let Some(state) = self.peers.get(&peer) {
            for (_, route) in state.rib.iter() {
                for (i, link) in route.as_path().links().enumerate() {
                    *counts.entry((i + 1, link)).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// The prefixes announced by `peer` whose path traverses any of `links`
    /// (directed match).
    pub fn prefixes_via_links(&self, peer: PeerId, links: &[AsLink]) -> Vec<Prefix> {
        match self.peers.get(&peer) {
            None => Vec::new(),
            Some(state) => state
                .rib
                .iter()
                .filter(|(_, r)| r.as_path().crosses_any(links))
                .map(|(p, _)| *p)
                .collect(),
        }
    }

    /// Finds, for `prefix`, the most preferred alternative route whose AS path
    /// avoids every AS in `avoid_ases`, excluding routes learned from
    /// `exclude_peer`. Returns `None` if no such route exists.
    ///
    /// This implements the path-eligibility core of SWIFT's backup next-hop
    /// selection: the chosen backup must not traverse either endpoint of any
    /// inferred link (§4.2 safety rule).
    pub fn alternative_avoiding(
        &self,
        prefix: &Prefix,
        exclude_peer: PeerId,
        avoid_ases: &[Asn],
    ) -> Option<&Route> {
        self.loc_rib
            .candidates(prefix)
            .filter(|r| r.peer != exclude_peer)
            .filter(|r| !avoid_ases.iter().any(|a| r.as_path().contains_as(*a)))
            .max_by(|a, b| a.compare_preference(b))
    }

    /// All prefixes known to the table.
    pub fn prefixes(&self) -> impl Iterator<Item = &Prefix> {
        self.loc_rib.prefixes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_path::AsPath;
    use crate::attributes::RouteAttributes;

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    fn route(peer: u32, hops: &[u32]) -> Route {
        Route::new(
            PeerId(peer),
            RouteAttributes::from_path(AsPath::new(hops.iter().copied())),
            0,
        )
    }

    /// Builds the Fig. 1 routing table of the paper as seen by the AS 1 router:
    /// peers AS 2 (peer 2), AS 3 (peer 3) and AS 4 (peer 4). AS 6/7/8 originate
    /// prefixes; the best paths go through AS 2.
    fn fig1_table() -> RoutingTable {
        let mut t = RoutingTable::new();
        t.add_peer(PeerId(2), Asn(2));
        t.add_peer(PeerId(3), Asn(3));
        t.add_peer(PeerId(4), Asn(4));

        // Prefixes of AS 6 (indices 0..10): best (2 5 6), alt (4 5 6), alt (3 6).
        for i in 0..10 {
            t.announce(PeerId(2), p(i), route(2, &[2, 5, 6]));
            t.announce(PeerId(4), p(i), route(4, &[4, 5, 6]));
            t.announce(PeerId(3), p(i), route(3, &[3, 6]));
        }
        // Prefixes of AS 7 (indices 10..20): best (2 5 6 7), alt (3 6 7).
        for i in 10..20 {
            t.announce(PeerId(2), p(i), route(2, &[2, 5, 6, 7]));
            t.announce(PeerId(3), p(i), route(3, &[3, 6, 7]));
        }
        // Prefixes of AS 8 (indices 20..30): best (2 5 6 8), alt (3 6 8).
        for i in 20..30 {
            t.announce(PeerId(2), p(i), route(2, &[2, 5, 6, 8]));
            t.announce(PeerId(3), p(i), route(3, &[3, 6, 8]));
        }
        t
    }

    #[test]
    fn apply_requires_registered_peer() {
        let mut t = RoutingTable::new();
        let ev = ElementaryEvent::Withdraw {
            timestamp: 0,
            prefix: p(0),
        };
        assert!(!t.apply(PeerId(9), &ev));
        t.add_peer(PeerId(9), Asn(9));
        assert!(t.apply(PeerId(9), &ev));
    }

    #[test]
    fn clear_peer_withdraws_routes_but_keeps_registration() {
        let mut t = fig1_table();
        // Peer 3 offers the shortest paths, so it is best everywhere.
        assert_eq!(t.best(&p(0)).unwrap().peer, PeerId(3));
        let cleared = t.clear_peer(PeerId(3));
        assert_eq!(cleared.len(), 30);
        assert_eq!(t.adj_rib_in(PeerId(3)).unwrap().len(), 0);
        assert_eq!(t.peer_asn(PeerId(3)), Some(Asn(3)), "peer stays registered");
        // Best paths fall back to the surviving peers; nothing dangles.
        assert_eq!(t.best(&p(0)).unwrap().peer, PeerId(2));
        assert_eq!(t.prefix_count(), 30, "every prefix kept an alternate");
        // The session can re-establish: announcements flow again.
        assert!(t.announce(PeerId(3), p(0), route(3, &[3, 6])));
        assert_eq!(t.adj_rib_in(PeerId(3)).unwrap().len(), 1);
        // Re-registering adopts a new AS number without touching the RIB.
        t.add_peer(PeerId(3), Asn(33));
        assert_eq!(t.peer_asn(PeerId(3)), Some(Asn(33)));
        assert_eq!(t.adj_rib_in(PeerId(3)).unwrap().len(), 1);
        // Clearing an unknown peer is a no-op.
        assert!(t.clear_peer(PeerId(99)).is_empty());
    }

    #[test]
    fn peer_registration_and_lookup() {
        let t = fig1_table();
        assert_eq!(t.peer_count(), 3);
        assert_eq!(t.peer_asn(PeerId(2)), Some(Asn(2)));
        assert_eq!(t.peer_asn(PeerId(99)), None);
        assert_eq!(t.prefix_count(), 30);
        assert_eq!(t.adj_rib_in(PeerId(2)).unwrap().len(), 30);
        assert_eq!(t.adj_rib_in(PeerId(3)).unwrap().len(), 30);
        assert_eq!(t.adj_rib_in(PeerId(4)).unwrap().len(), 10);
    }

    #[test]
    fn link_prefix_counts_match_fig1() {
        let t = fig1_table();
        let counts = t.link_prefix_counts(PeerId(2));
        assert_eq!(counts[&AsLink::new(2, 5)], 30);
        assert_eq!(counts[&AsLink::new(5, 6)], 30);
        assert_eq!(counts[&AsLink::new(6, 7)], 10);
        assert_eq!(counts[&AsLink::new(6, 8)], 10);
        assert!(!counts.contains_key(&AsLink::new(3, 6)));
    }

    #[test]
    fn positional_link_counts_match_fig1() {
        let t = fig1_table();
        let counts = t.positional_link_counts(PeerId(2));
        assert_eq!(counts[&(1, AsLink::new(2, 5))], 30);
        assert_eq!(counts[&(2, AsLink::new(5, 6))], 30);
        assert_eq!(counts[&(3, AsLink::new(6, 7))], 10);
        assert_eq!(counts[&(3, AsLink::new(6, 8))], 10);
        assert!(!counts.contains_key(&(1, AsLink::new(5, 6))));
    }

    #[test]
    fn prefixes_via_links_matches_affected_set() {
        let t = fig1_table();
        let affected = t.prefixes_via_links(PeerId(2), &[AsLink::new(5, 6)]);
        assert_eq!(affected.len(), 30);
        let only_as8 = t.prefixes_via_links(PeerId(2), &[AsLink::new(6, 8)]);
        assert_eq!(only_as8.len(), 10);
        assert!(t
            .prefixes_via_links(PeerId(2), &[AsLink::new(9, 9)])
            .is_empty());
    }

    #[test]
    fn alternative_avoiding_respects_avoid_list() {
        let t = fig1_table();
        // For an AS 6 prefix, avoiding ASes {5, 6} leaves nothing (all alternates
        // reach AS 6); avoiding only AS 5 leaves the (3 6) route.
        let pref = p(0);
        let alt = t
            .alternative_avoiding(&pref, PeerId(2), &[Asn(5)])
            .expect("should find (3 6)");
        assert_eq!(alt.peer, PeerId(3));
        assert!(t
            .alternative_avoiding(&pref, PeerId(2), &[Asn(5), Asn(6)])
            .is_none());
        // For an AS 7 prefix, avoiding both endpoints of (5,6) still leaves (3 6 7)?
        // No: that path visits AS 6. Avoiding only AS 5 works.
        let alt7 = t
            .alternative_avoiding(&p(10), PeerId(2), &[Asn(5)])
            .expect("should find (3 6 7)");
        assert_eq!(alt7.peer, PeerId(3));
    }

    #[test]
    fn best_route_prefers_shortest_path() {
        let t = fig1_table();
        // For AS 6 prefixes, (3 6) is shorter than (2 5 6).
        assert_eq!(t.best(&p(0)).unwrap().peer, PeerId(3));
        // Excluding peer 3, (2 5 6) and (4 5 6) tie; lowest peer id wins.
        assert_eq!(t.best_excluding(&p(0), PeerId(3)).unwrap().peer, PeerId(2));
        assert_eq!(t.candidates(&p(0)).count(), 3);
    }

    #[test]
    fn withdrawal_updates_both_ribs() {
        let mut t = fig1_table();
        let ev = ElementaryEvent::Withdraw {
            timestamp: 10,
            prefix: p(0),
        };
        assert!(t.apply(PeerId(2), &ev));
        assert_eq!(t.adj_rib_in(PeerId(2)).unwrap().len(), 29);
        // Loc-RIB still has routes from peers 3 and 4 for p(0).
        assert_eq!(t.candidates(&p(0)).count(), 2);
        assert_eq!(t.prefix_count(), 30);
    }
}
