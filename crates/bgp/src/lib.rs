//! # swift-bgp
//!
//! BGP substrate for the SWIFT reproduction (SIGCOMM 2017).
//!
//! This crate provides the inter-domain routing primitives every other crate in
//! the workspace builds on:
//!
//! * [`Prefix`] — IPv4 prefixes with parsing, containment and iteration helpers.
//! * [`Asn`] / [`AsLink`] / [`AsPath`] — AS numbers, directed AS-level links and
//!   AS paths (including link extraction by position, which the SWIFT encoding
//!   scheme relies on).
//! * [`RouteAttributes`] and [`BgpMessage`] — the subset of BGP path attributes
//!   and UPDATE/WITHDRAW semantics the paper's algorithms consume.
//! * [`AdjRibIn`], [`LocRib`] and [`RoutingTable`] — per-peer and router-wide
//!   routing state with standard best-path selection.
//! * [`MessageStream`] and [`Session`] — timestamped per-session message streams,
//!   the exact input shape of the SWIFT inference algorithm (§4 of the paper).
//! * [`PathInterner`] / [`InternedRib`] — deduplicating AS-path storage with
//!   dense [`PathId`]s, the zero-copy seeding format of the inference hot path.
//!
//! The crate is dependency-free and fully deterministic; all timestamps are
//! virtual microseconds ([`Timestamp`]).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod as_path;
pub mod attributes;
pub mod interner;
pub mod message;
pub mod prefix;
pub mod rib;
pub mod session;
pub mod table;

pub use as_path::{AsLink, AsPath, Asn};
pub use attributes::{Community, Origin, RouteAttributes};
pub use interner::{InternedRib, PathId, PathInterner};
pub use message::{BgpMessage, ElementaryEvent, MessageKind};
pub use prefix::{Prefix, PrefixError, PrefixSet};
pub use rib::{AdjRibIn, LocRib, Route};
pub use session::{MessageStream, PeerId, Session, SessionId};
pub use table::RoutingTable;

/// Virtual time in microseconds since the start of a trace or simulation.
///
/// The whole workspace uses virtual time rather than wall-clock time so that
/// experiments are deterministic and tests run instantly.
pub type Timestamp = u64;

/// One second expressed in [`Timestamp`] units (microseconds).
pub const SECOND: Timestamp = 1_000_000;

/// One millisecond expressed in [`Timestamp`] units (microseconds).
pub const MILLISECOND: Timestamp = 1_000;
