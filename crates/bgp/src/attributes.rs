//! BGP path attributes.
//!
//! SWIFT's algorithms mostly consume the AS path, but the surrounding machinery
//! (best-path selection, update packing, rerouting policy input) needs the
//! standard attribute set: ORIGIN, LOCAL_PREF, MED and communities. The paper
//! also notes (§2.1.1) that the widespread use of per-prefix communities defeats
//! BGP update packing, which our trace generator models — hence communities are
//! first-class here.

use crate::as_path::AsPath;
use std::fmt;

/// The BGP ORIGIN attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Origin {
    /// Learned from an interior gateway protocol.
    #[default]
    Igp,
    /// Learned from EGP (historical).
    Egp,
    /// Origin unknown / redistributed.
    Incomplete,
}

impl Origin {
    /// Preference rank used in best-path selection (lower is preferred).
    pub fn rank(&self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Origin::Igp => "IGP",
            Origin::Egp => "EGP",
            Origin::Incomplete => "INCOMPLETE",
        };
        f.write_str(s)
    }
}

/// A BGP community value, stored as the conventional `ASN:value` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Community {
    /// The AS half of the community.
    pub asn: u16,
    /// The value half of the community.
    pub value: u16,
}

impl Community {
    /// Creates a community from its two 16-bit halves.
    pub fn new(asn: u16, value: u16) -> Self {
        Community { asn, value }
    }

    /// The packed 32-bit representation (`asn << 16 | value`).
    pub fn as_u32(&self) -> u32 {
        (u32::from(self.asn) << 16) | u32::from(self.value)
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn, self.value)
    }
}

/// The set of path attributes attached to an announced route.
///
/// `local_pref` defaults to 100 as on most router platforms. Attribute equality
/// is what decides whether two prefixes can share a packed UPDATE message
/// (see [`crate::message::BgpMessage`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RouteAttributes {
    /// The AS path of the route, nearest AS first.
    pub as_path: AsPath,
    /// ORIGIN attribute.
    pub origin: Origin,
    /// LOCAL_PREF (higher is preferred). Defaults to 100 when unset.
    pub local_pref: Option<u32>,
    /// Multi-Exit Discriminator (lower is preferred).
    pub med: Option<u32>,
    /// Standard communities attached to the route.
    pub communities: Vec<Community>,
}

impl RouteAttributes {
    /// Creates attributes carrying just an AS path, all else default.
    pub fn from_path(as_path: AsPath) -> Self {
        RouteAttributes {
            as_path,
            ..Default::default()
        }
    }

    /// The effective LOCAL_PREF (default 100).
    pub fn effective_local_pref(&self) -> u32 {
        self.local_pref.unwrap_or(100)
    }

    /// The effective MED (default 0).
    pub fn effective_med(&self) -> u32 {
        self.med.unwrap_or(0)
    }

    /// Builder-style setter for LOCAL_PREF.
    pub fn with_local_pref(mut self, lp: u32) -> Self {
        self.local_pref = Some(lp);
        self
    }

    /// Builder-style setter for MED.
    pub fn with_med(mut self, med: u32) -> Self {
        self.med = Some(med);
        self
    }

    /// Builder-style appender for a community.
    pub fn with_community(mut self, c: Community) -> Self {
        self.communities.push(c);
        self
    }

    /// Returns `true` if the attributes (excluding the AS path itself) are
    /// identical — the condition under which BGP update packing can group
    /// prefixes into one UPDATE (§2.1.1).
    pub fn packable_with(&self, other: &RouteAttributes) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_path::AsPath;

    #[test]
    fn origin_ranking() {
        assert!(Origin::Igp.rank() < Origin::Egp.rank());
        assert!(Origin::Egp.rank() < Origin::Incomplete.rank());
        assert_eq!(Origin::default(), Origin::Igp);
    }

    #[test]
    fn community_packing() {
        let c = Community::new(65000, 42);
        assert_eq!(c.as_u32(), (65000u32 << 16) | 42);
        assert_eq!(c.to_string(), "65000:42");
    }

    #[test]
    fn attribute_defaults() {
        let a = RouteAttributes::from_path(AsPath::new([1u32, 2, 3]));
        assert_eq!(a.effective_local_pref(), 100);
        assert_eq!(a.effective_med(), 0);
        assert!(a.communities.is_empty());
    }

    #[test]
    fn builder_setters() {
        let a = RouteAttributes::from_path(AsPath::new([1u32]))
            .with_local_pref(200)
            .with_med(10)
            .with_community(Community::new(1, 2));
        assert_eq!(a.effective_local_pref(), 200);
        assert_eq!(a.effective_med(), 10);
        assert_eq!(a.communities.len(), 1);
    }

    #[test]
    fn packability_requires_identical_attributes() {
        let base = RouteAttributes::from_path(AsPath::new([1u32, 2]));
        let same = RouteAttributes::from_path(AsPath::new([1u32, 2]));
        let with_comm = base.clone().with_community(Community::new(1, 1));
        assert!(base.packable_with(&same));
        assert!(!base.packable_with(&with_comm));
    }

    #[test]
    fn display_origin() {
        assert_eq!(Origin::Igp.to_string(), "IGP");
        assert_eq!(Origin::Incomplete.to_string(), "INCOMPLETE");
    }
}
