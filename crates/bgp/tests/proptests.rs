//! Property-based tests for the BGP substrate.

use proptest::prelude::*;
use swift_bgp::{AsLink, AsPath, Asn, BgpMessage, MessageStream, Prefix, PrefixSet};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(addr, len).unwrap())
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    proptest::collection::vec(1u32..10_000, 0..12).prop_map(AsPath::new)
}

proptest! {
    /// Display → parse is the identity on canonical prefixes.
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let parsed: Prefix = s.parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    /// A prefix always contains itself, and containment implies overlap.
    #[test]
    fn prefix_contains_self_and_overlap(a in arb_prefix(), b in arb_prefix()) {
        prop_assert!(a.contains(&a));
        if a.contains(&b) {
            prop_assert!(a.overlaps(&b));
            prop_assert!(b.len() >= a.len());
        }
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    /// Splitting a prefix yields two children whose parent is the original and
    /// which together cover exactly the original address space.
    #[test]
    fn prefix_split_parent_inverse(p in (any::<u32>(), 0u8..32).prop_map(|(a, l)| Prefix::new(a, l).unwrap())) {
        let (lo, hi) = p.split().unwrap();
        prop_assert_eq!(lo.parent(), Some(p));
        prop_assert_eq!(hi.parent(), Some(p));
        prop_assert!(p.contains(&lo) && p.contains(&hi));
        prop_assert_eq!(lo.size() + hi.size(), p.size());
        prop_assert!(!lo.overlaps(&hi));
    }

    /// The links of a path have length len-1 and chain correctly.
    #[test]
    fn as_path_links_chain(path in arb_as_path()) {
        let links: Vec<AsLink> = path.links().collect();
        prop_assert_eq!(links.len(), path.link_count());
        for w in links.windows(2) {
            prop_assert_eq!(w[0].to, w[1].from);
        }
        for (i, l) in links.iter().enumerate() {
            prop_assert_eq!(path.link_at_position(i + 1), Some(*l));
            prop_assert!(path.crosses_link(l));
            prop_assert!(path.visits_endpoint_of(l));
        }
    }

    /// Prepending preserves the suffix and adds exactly one hop.
    #[test]
    fn as_path_prepend(path in arb_as_path(), asn in 1u32..10_000) {
        let q = path.prepend(asn);
        prop_assert_eq!(q.len(), path.len() + 1);
        prop_assert_eq!(q.first_hop(), Some(Asn(asn)));
        prop_assert_eq!(&q.hops()[1..], path.hops());
    }

    /// PrefixSet intersection/difference cardinalities are consistent.
    #[test]
    fn prefix_set_cardinalities(
        a in proptest::collection::btree_set(0u32..5_000, 0..200),
        b in proptest::collection::btree_set(0u32..5_000, 0..200),
    ) {
        let sa: PrefixSet = a.iter().map(|i| Prefix::nth_slash24(*i)).collect();
        let sb: PrefixSet = b.iter().map(|i| Prefix::nth_slash24(*i)).collect();
        let inter = sa.intersection_len(&sb);
        prop_assert_eq!(inter, sb.intersection_len(&sa));
        prop_assert_eq!(sa.difference_len(&sb) + inter, sa.len());
        prop_assert_eq!(sa.union(&sb).len(), sa.len() + sb.len() - inter);
    }

    /// A message stream built from arbitrarily-ordered messages is sorted and
    /// conserves the withdrawal count.
    #[test]
    fn stream_is_sorted_and_conserves_counts(
        times in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let msgs: Vec<BgpMessage> = times
            .iter()
            .enumerate()
            .map(|(i, t)| BgpMessage::withdraw(*t, Prefix::nth_slash24(i as u32)))
            .collect();
        let n = msgs.len();
        let stream = MessageStream::from_messages(msgs.clone());
        prop_assert_eq!(stream.total_withdrawals(), n);
        let ts: Vec<_> = stream.messages().iter().map(|m| m.timestamp).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        prop_assert_eq!(ts, sorted);

        // Pushing one-by-one gives the same multiset of timestamps.
        let mut incremental = MessageStream::new();
        for m in msgs {
            incremental.push(m);
        }
        prop_assert_eq!(incremental.total_withdrawals(), n);
        prop_assert_eq!(incremental.start(), stream.start());
        prop_assert_eq!(incremental.end(), stream.end());
    }

    /// Windowed withdrawal counts partition the total.
    #[test]
    fn window_counts_partition(
        times in proptest::collection::vec(0u64..10_000, 1..200),
        cut in 0u64..10_000,
    ) {
        let msgs: Vec<BgpMessage> = times
            .iter()
            .enumerate()
            .map(|(i, t)| BgpMessage::withdraw(*t, Prefix::nth_slash24(i as u32)))
            .collect();
        let stream = MessageStream::from_messages(msgs);
        let total = stream.total_withdrawals();
        let before = stream.withdrawals_in_window(0, cut);
        let after = stream.withdrawals_in_window(cut, 10_001);
        prop_assert_eq!(before + after, total);
    }
}
