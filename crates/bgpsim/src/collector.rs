//! Capturing BGP message streams on a monitored session, with ground truth.
//!
//! The paper's controlled evaluation (§6.1) records, for every simulated link
//! failure, the stream of BGP messages seen on each session together with the
//! identity of the failed link. [`GroundTruthBurst`] is that record: the
//! per-origin messages captured on the monitored (vantage ← neighbour) session,
//! expandable into the per-prefix [`MessageStream`] the SWIFT algorithms
//! consume, plus the ground-truth failed link and affected prefix set.

use std::collections::BTreeSet;
use swift_bgp::{
    AsLink, AsPath, Asn, BgpMessage, MessageStream, PrefixSet, RouteAttributes, Timestamp,
};
use swift_topology::Topology;

/// A message captured on the monitored session, still at origin-AS granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedMessage {
    /// The origin AS whose destinations this message concerns.
    pub origin: Asn,
    /// `Some(path)` for an announcement (implicit withdrawal of the previous
    /// path), `None` for an explicit withdrawal.
    pub path: Option<AsPath>,
}

impl CapturedMessage {
    /// Returns `true` if this is an explicit withdrawal.
    pub fn is_withdraw(&self) -> bool {
        self.path.is_none()
    }
}

/// The stream captured on a monitored session during one failure event,
/// together with the ground truth needed to score SWIFT's inferences.
#[derive(Debug, Clone)]
pub struct GroundTruthBurst {
    /// The AS hosting the SWIFTED router (the vantage point).
    pub vantage: Asn,
    /// The neighbour whose session was monitored.
    pub neighbor: Asn,
    /// The link whose failure triggered the burst (undirected canonical form).
    pub failed_link: AsLink,
    /// Captured messages in reception order (origin-AS granularity).
    pub captured: Vec<CapturedMessage>,
}

impl GroundTruthBurst {
    /// Origins explicitly withdrawn at least once during the burst.
    pub fn withdrawn_origins(&self) -> BTreeSet<Asn> {
        self.captured
            .iter()
            .filter(|c| c.is_withdraw())
            .map(|c| c.origin)
            .collect()
    }

    /// Origins re-announced (path update) at least once during the burst.
    pub fn updated_origins(&self) -> BTreeSet<Asn> {
        self.captured
            .iter()
            .filter(|c| !c.is_withdraw())
            .map(|c| c.origin)
            .collect()
    }

    /// Number of captured messages at origin granularity.
    pub fn len(&self) -> usize {
        self.captured.len()
    }

    /// Returns `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.captured.is_empty()
    }

    /// Expands the burst into a per-prefix [`MessageStream`].
    ///
    /// Each captured origin-level message becomes one message per prefix
    /// originated by that AS; messages are paced `gap` microseconds apart
    /// starting at `start`, mimicking the per-prefix arrival the paper observes
    /// (withdrawals inside a burst arrive over seconds, not at once).
    pub fn to_message_stream(
        &self,
        topology: &Topology,
        start: Timestamp,
        gap: Timestamp,
    ) -> MessageStream {
        let mut messages = Vec::new();
        let mut t = start;
        for cap in &self.captured {
            for prefix in topology.originated_prefixes(cap.origin) {
                let msg = match &cap.path {
                    None => BgpMessage::withdraw(t, *prefix),
                    Some(path) => {
                        BgpMessage::announce(t, *prefix, RouteAttributes::from_path(path.clone()))
                    }
                };
                messages.push(msg);
                t += gap;
            }
        }
        MessageStream::from_messages(messages)
    }

    /// The set of prefixes withdrawn during the burst (the paper's "positives"
    /// for the localisation accuracy metrics, §6.2.1).
    pub fn withdrawn_prefixes(&self, topology: &Topology) -> PrefixSet {
        self.withdrawn_origins()
            .into_iter()
            .flat_map(|o| topology.originated_prefixes(o).iter().copied())
            .collect()
    }

    /// The set of prefixes whose path was updated (not withdrawn).
    pub fn updated_prefixes(&self, topology: &Topology) -> PrefixSet {
        self.updated_origins()
            .into_iter()
            .flat_map(|o| topology.originated_prefixes(o).iter().copied())
            .collect()
    }

    /// Total number of per-prefix withdrawals the burst expands to.
    pub fn withdrawal_count(&self, topology: &Topology) -> usize {
        self.captured
            .iter()
            .filter(|c| c.is_withdraw())
            .map(|c| topology.originated_prefixes(c.origin).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst() -> (Topology, GroundTruthBurst) {
        let topo = Topology::figure1_with_counts(3, 4, 5);
        let b = GroundTruthBurst {
            vantage: Asn(1),
            neighbor: Asn(2),
            failed_link: AsLink::new(5, 6),
            captured: vec![
                CapturedMessage {
                    origin: Asn(6),
                    path: None,
                },
                CapturedMessage {
                    origin: Asn(7),
                    path: Some(AsPath::new([2u32, 5, 3, 6, 7])),
                },
                CapturedMessage {
                    origin: Asn(8),
                    path: None,
                },
            ],
        };
        (topo, b)
    }

    #[test]
    fn origin_classification() {
        let (_, b) = burst();
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(
            b.withdrawn_origins(),
            [Asn(6), Asn(8)].into_iter().collect()
        );
        assert_eq!(b.updated_origins(), [Asn(7)].into_iter().collect());
    }

    #[test]
    fn expansion_to_prefix_stream() {
        let (topo, b) = burst();
        let stream = b.to_message_stream(&topo, 1_000, 10);
        // 3 + 4 + 5 prefixes expanded.
        assert_eq!(stream.len(), 12);
        assert_eq!(stream.total_withdrawals(), 3 + 5);
        assert_eq!(stream.total_announcements(), 4);
        assert_eq!(stream.start(), Some(1_000));
        assert_eq!(stream.end(), Some(1_000 + 11 * 10));
        assert_eq!(b.withdrawal_count(&topo), 8);
    }

    #[test]
    fn prefix_sets_match_topology_origins() {
        let (topo, b) = burst();
        let withdrawn = b.withdrawn_prefixes(&topo);
        let updated = b.updated_prefixes(&topo);
        assert_eq!(withdrawn.len(), 8);
        assert_eq!(updated.len(), 4);
        assert_eq!(withdrawn.intersection_len(&updated), 0);
        for p in topo.originated_prefixes(Asn(6)) {
            assert!(withdrawn.contains(p));
        }
    }
}
