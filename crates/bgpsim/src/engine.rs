//! The BGP propagation engine (C-BGP stand-in).
//!
//! [`Engine`] computes policy-compliant routing for a [`Topology`], then
//! replays link failures and records the resulting message streams on a
//! monitored session. Processing is event-driven and deterministic: messages
//! are delivered in FIFO order, all per-speaker state uses ordered maps, and no
//! randomness is involved — the same topology and failure always produce the
//! same burst.
//!
//! Like C-BGP, the engine is a *convergence computer*: it determines which
//! messages cross each session and in which order, not their wall-clock
//! timing. Timing is added when bursts are expanded into per-prefix streams
//! (see [`crate::collector::GroundTruthBurst::to_message_stream`]).

use crate::collector::{CapturedMessage, GroundTruthBurst};
use crate::speaker::{ExportAction, OriginIdx, Speaker};
use std::collections::{BTreeMap, VecDeque};
use swift_bgp::{AsLink, AsPath, Asn, PeerId, Prefix, Route, RouteAttributes, RoutingTable};
use swift_topology::Topology;

/// A control-plane message in flight between two adjacent speakers.
#[derive(Debug, Clone)]
struct Msg {
    from: Asn,
    to: Asn,
    origin: OriginIdx,
    /// `Some(path)` announces, `None` withdraws.
    path: Option<AsPath>,
}

/// Statistics of a propagation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Messages delivered (including those dropped on failed adjacencies).
    pub messages_processed: u64,
    /// Messages captured on the monitored session, if any.
    pub messages_captured: u64,
}

/// The propagation engine.
#[derive(Debug, Clone)]
pub struct Engine {
    topology: Topology,
    speakers: BTreeMap<Asn, Speaker>,
    /// Dense origin index: origins[i] is the AS originating destination i.
    origin_ases: Vec<Asn>,
    origin_index: BTreeMap<Asn, OriginIdx>,
    queue: VecDeque<Msg>,
    monitor: Option<(Asn, Asn)>,
    captured: Vec<CapturedMessage>,
    converged: bool,
}

impl Engine {
    /// Builds an engine for `topology`. Call [`Engine::converge`] before
    /// failing links or reading routing state.
    pub fn new(topology: Topology) -> Self {
        let origin_ases: Vec<Asn> = topology.graph().nodes().collect();
        let origin_index: BTreeMap<Asn, OriginIdx> = origin_ases
            .iter()
            .enumerate()
            .map(|(i, a)| (*a, i))
            .collect();
        let speakers: BTreeMap<Asn, Speaker> = topology
            .graph()
            .nodes()
            .map(|asn| {
                let neighbors = topology
                    .graph()
                    .neighbors(asn)
                    .filter_map(|n| topology.tiers().relationship(asn, n).map(|r| (n, r)))
                    .collect();
                (asn, Speaker::new(asn, neighbors, origin_ases.len()))
            })
            .collect();
        Engine {
            topology,
            speakers,
            origin_ases,
            origin_index,
            queue: VecDeque::new(),
            monitor: None,
            captured: Vec::new(),
            converged: false,
        }
    }

    /// The topology the engine routes over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Originates every AS's destinations and processes messages to
    /// convergence. Returns the number of messages processed.
    pub fn converge(&mut self) -> RunStats {
        for (idx, asn) in self.origin_ases.clone().into_iter().enumerate() {
            let speaker = self.speakers.get_mut(&asn).expect("speaker exists");
            speaker.originate(idx);
            let actions = speaker.exports_for(idx);
            self.enqueue(asn, idx, actions);
        }
        let stats = self.drain_queue();
        self.converged = true;
        stats
    }

    /// Returns `true` once [`Engine::converge`] has completed.
    pub fn is_converged(&self) -> bool {
        self.converged
    }

    /// Starts capturing the messages that `vantage` receives from `neighbor`.
    pub fn monitor_session(&mut self, vantage: Asn, neighbor: Asn) {
        self.monitor = Some((vantage, neighbor));
        self.captured.clear();
    }

    /// Fails the (undirected) link between `a` and `b` and processes the
    /// resulting messages to convergence. Captured messages (if a session is
    /// monitored) are available through [`Engine::take_burst`].
    pub fn fail_link(&mut self, a: Asn, b: Asn) -> RunStats {
        for (x, y) in [(a, b), (b, a)] {
            if let Some(speaker) = self.speakers.get_mut(&x) {
                speaker.remove_neighbor(y);
                let affected = speaker.drop_neighbor_routes(y);
                let mut all_actions = Vec::new();
                for idx in affected {
                    let actions = speaker.reselect(idx);
                    all_actions.push((idx, actions));
                }
                for (idx, actions) in all_actions {
                    self.enqueue(x, idx, actions);
                }
            }
        }
        self.drain_queue()
    }

    /// Takes the burst captured since the last call to
    /// [`Engine::monitor_session`], labelled with the ground-truth failed link.
    pub fn take_burst(&mut self, failed_link: AsLink) -> GroundTruthBurst {
        let (vantage, neighbor) = self
            .monitor
            .expect("monitor_session must be called before take_burst");
        GroundTruthBurst {
            vantage,
            neighbor,
            failed_link: failed_link.undirected(),
            captured: std::mem::take(&mut self.captured),
        }
    }

    /// Queues the export actions produced by `from` for `origin`.
    fn enqueue(&mut self, from: Asn, origin: OriginIdx, actions: Vec<ExportAction>) {
        for action in actions {
            let msg = match action {
                ExportAction::Announce { to, path } => Msg {
                    from,
                    to,
                    origin,
                    path: Some(path),
                },
                ExportAction::Withdraw { to } => Msg {
                    from,
                    to,
                    origin,
                    path: None,
                },
            };
            self.queue.push_back(msg);
        }
    }

    /// Delivers queued messages until quiescence.
    fn drain_queue(&mut self) -> RunStats {
        let mut stats = RunStats::default();
        while let Some(msg) = self.queue.pop_front() {
            stats.messages_processed += 1;
            let Some(speaker) = self.speakers.get_mut(&msg.to) else {
                continue;
            };
            // Messages crossing an adjacency that no longer exists are lost.
            if speaker.relationship(msg.from).is_none() {
                continue;
            }
            if self.monitor == Some((msg.to, msg.from)) {
                stats.messages_captured += 1;
                self.captured.push(CapturedMessage {
                    origin: self.origin_ases[msg.origin],
                    path: msg.path.clone(),
                });
            }
            let actions = match msg.path {
                Some(path) => speaker.receive_announce(msg.origin, msg.from, path),
                None => speaker.receive_withdraw(msg.origin, msg.from),
            };
            self.enqueue(msg.to, msg.origin, actions);
        }
        stats
    }

    /// The best AS path from `at` towards the destinations originated by
    /// `origin`, if reachable.
    pub fn best_path(&self, at: Asn, origin: Asn) -> Option<AsPath> {
        let idx = *self.origin_index.get(&origin)?;
        self.speakers.get(&at)?.best_path(idx)
    }

    /// Returns `true` if `at` currently has a route towards `origin`.
    pub fn reachable(&self, at: Asn, origin: Asn) -> bool {
        self.best_path(at, origin).is_some()
    }

    /// Builds the vantage router's [`RoutingTable`]: one peer (and one
    /// Adj-RIB-In) per neighbour of `vantage`, with per-prefix routes expanded
    /// from the per-origin simulator state.
    ///
    /// Peer identifiers are the neighbour AS numbers (`PeerId(asn)`).
    pub fn vantage_routing_table(&self, vantage: Asn) -> RoutingTable {
        let mut table = RoutingTable::new();
        let Some(speaker) = self.speakers.get(&vantage) else {
            return table;
        };
        for &neighbor in speaker.neighbors.keys() {
            table.add_peer(PeerId(neighbor.value()), neighbor);
        }
        for (idx, state) in speaker.origins.iter().enumerate() {
            let origin = self.origin_ases[idx];
            for (&neighbor, path) in &state.rib_in {
                for prefix in self.topology.originated_prefixes(origin) {
                    let route = Route::new(
                        PeerId(neighbor.value()),
                        RouteAttributes::from_path(path.clone()),
                        0,
                    );
                    table.announce(PeerId(neighbor.value()), *prefix, route);
                }
            }
        }
        table
    }

    /// Convenience: the prefixes whose best path at `vantage` via `neighbor`
    /// crosses `link` before any failure (used as an "affected set" oracle).
    pub fn prefixes_via_link(&self, vantage: Asn, neighbor: Asn, link: &AsLink) -> Vec<Prefix> {
        let Some(speaker) = self.speakers.get(&vantage) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (idx, state) in speaker.origins.iter().enumerate() {
            if let Some(path) = state.rib_in.get(&neighbor) {
                let full = path.clone();
                if full.crosses_link_undirected(link) {
                    out.extend(
                        self.topology
                            .originated_prefixes(self.origin_ases[idx])
                            .iter()
                            .copied(),
                    );
                }
            }
        }
        out
    }

    /// All origin ASes, in dense-index order.
    pub fn origin_ases(&self) -> &[Asn] {
        &self.origin_ases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_engine() -> Engine {
        let mut e = Engine::new(Topology::figure1_with_counts(10, 20, 20));
        e.converge();
        e
    }

    #[test]
    fn initial_convergence_gives_full_reachability() {
        let e = fig1_engine();
        for at in 1..=8u32 {
            for origin in 1..=8u32 {
                assert!(
                    e.reachable(Asn(at), Asn(origin)),
                    "AS{at} cannot reach AS{origin}"
                );
            }
        }
    }

    #[test]
    fn fig1_paths_match_paper() {
        let e = fig1_engine();
        // AS 1 reaches AS 6's prefixes via AS 3 (shortest: 3 6) — the paper's
        // Fig. 1 shows the *forwarding* path via 2 because of its (unmodelled)
        // commercial preferences; what matters for SWIFT is that the (2 5 6)
        // path exists in the Adj-RIB-In, which the routing-table test checks.
        let p16 = e.best_path(Asn(1), Asn(6)).unwrap();
        assert_eq!(p16.origin(), Some(Asn(6)));
        // AS 5 reaches AS 8 via AS 6 only (customer route through 6).
        assert_eq!(e.best_path(Asn(5), Asn(8)).unwrap(), AsPath::new([6u32, 8]));
        // AS 2 reaches AS 8 via its provider 5 then 6.
        assert_eq!(
            e.best_path(Asn(2), Asn(8)).unwrap(),
            AsPath::new([5u32, 6, 8])
        );
    }

    #[test]
    fn vantage_routing_table_has_expected_sessions_and_routes() {
        let e = fig1_engine();
        let table = e.vantage_routing_table(Asn(1));
        assert_eq!(table.peer_count(), 3);
        // Peer 2's Adj-RIB-In carries routes to AS 6/7/8 prefixes via (2 5 6 ...).
        let rib2 = table.adj_rib_in(PeerId(2)).unwrap();
        let p6 = e.topology().originated_prefixes(Asn(6))[0];
        assert_eq!(rib2.get(&p6).unwrap().as_path(), &AsPath::new([2u32, 5, 6]));
        let p8 = e.topology().originated_prefixes(Asn(8))[0];
        assert_eq!(
            rib2.get(&p8).unwrap().as_path(),
            &AsPath::new([2u32, 5, 6, 8])
        );
        // Peer 3 offers the (3 6 ...) alternates.
        let rib3 = table.adj_rib_in(PeerId(3)).unwrap();
        assert_eq!(rib3.get(&p8).unwrap().as_path(), &AsPath::new([3u32, 6, 8]));
    }

    #[test]
    fn failing_5_6_withdraws_as6_and_as8_on_session_1_2() {
        let mut e = fig1_engine();
        e.monitor_session(Asn(1), Asn(2));
        let stats = e.fail_link(Asn(5), Asn(6));
        assert!(stats.messages_processed > 0);
        let burst = e.take_burst(AsLink::new(5, 6));
        // AS 2 loses its route to AS 6, 7 and 8 entirely (its only path was via
        // (5,6) and Gao-Rexford hides the (3,6) detour from it), so the session
        // sees withdrawals for 6, 7 and 8.
        let withdrawn = burst.withdrawn_origins();
        assert!(withdrawn.contains(&Asn(6)));
        assert!(withdrawn.contains(&Asn(8)));
        // AS 5 itself is still reachable via AS 2.
        assert!(!withdrawn.contains(&Asn(5)));
        assert!(!withdrawn.contains(&Asn(2)));
        // Ground truth metadata is carried through.
        assert_eq!(burst.failed_link, AsLink::new(5, 6));
        assert_eq!(burst.vantage, Asn(1));
        assert_eq!(burst.neighbor, Asn(2));
    }

    #[test]
    fn post_failure_reachability_uses_alternate_paths() {
        let mut e = fig1_engine();
        e.fail_link(Asn(5), Asn(6));
        // AS 1 still reaches everything (via AS 3).
        for origin in [6u32, 7, 8] {
            let path = e.best_path(Asn(1), Asn(origin)).unwrap();
            assert!(
                !path.crosses_link_undirected(&AsLink::new(5, 6)),
                "path {path} still crosses the failed link"
            );
        }
        // AS 2, however, has no path to AS 6/7/8 anymore: its only route went
        // through its provider 5, and 5's alternative through peer 6 is gone.
        assert!(!e.reachable(Asn(2), Asn(8)));
    }

    #[test]
    fn failing_an_edge_link_only_affects_its_destinations() {
        let mut e = fig1_engine();
        e.monitor_session(Asn(1), Asn(2));
        e.fail_link(Asn(6), Asn(8));
        let burst = e.take_burst(AsLink::new(6, 8));
        assert_eq!(burst.withdrawn_origins(), [Asn(8)].into_iter().collect());
        assert!(e.reachable(Asn(1), Asn(7)));
        assert!(!e.reachable(Asn(1), Asn(8)));
    }

    #[test]
    fn prefixes_via_link_matches_topology_counts() {
        let e = fig1_engine();
        let via = e.prefixes_via_link(Asn(1), Asn(2), &AsLink::new(5, 6));
        // AS 6 (10) + AS 7 (20) + AS 8 (20) prefixes cross (5,6) on session
        // (1,2), and so do AS 3's 10 prefixes: AS 2 only knows AS 3 through its
        // provider AS 5, i.e. via the path (2 5 6 3).
        assert_eq!(via.len(), 60);
        let via68 = e.prefixes_via_link(Asn(1), Asn(2), &AsLink::new(6, 8));
        assert_eq!(via68.len(), 20);
    }

    #[test]
    fn engine_is_cloneable_for_repeated_failures() {
        let base = fig1_engine();
        let mut a = base.clone();
        let mut b = base.clone();
        a.fail_link(Asn(5), Asn(6));
        b.fail_link(Asn(6), Asn(8));
        assert!(!a.reachable(Asn(2), Asn(8)));
        assert!(b.reachable(Asn(2), Asn(7)));
        // The pristine engine is untouched.
        assert!(base.reachable(Asn(2), Asn(8)));
    }

    #[test]
    fn generated_topology_converges_and_routes_are_valley_free() {
        let config = swift_topology::TopologyConfig {
            num_ases: 60,
            prefixes_per_as: 2,
            seed: 3,
            ..Default::default()
        };
        let topo = Topology::generate(&config);
        let mut e = Engine::new(topo);
        let stats = e.converge();
        assert!(stats.messages_processed > 0);
        // Every AS reaches every origin (the graph is connected and policies
        // always allow customer→provider propagation upwards then down).
        let nodes: Vec<Asn> = e.topology().graph().nodes().collect();
        let mut reachable_pairs = 0usize;
        for &at in &nodes {
            for &origin in &nodes {
                if e.reachable(at, origin) {
                    reachable_pairs += 1;
                }
            }
        }
        // Full reachability is not strictly guaranteed under Gao-Rexford for
        // arbitrary tiering, but the overwhelming majority of pairs must route.
        assert!(
            reachable_pairs as f64 >= 0.97 * (nodes.len() * nodes.len()) as f64,
            "only {reachable_pairs} of {} pairs reachable",
            nodes.len() * nodes.len()
        );
        // No best path contains a loop.
        for &at in &nodes {
            for &origin in &nodes {
                if let Some(path) = e.best_path(at, origin) {
                    assert!(!path.has_loop(), "loop in path {path}");
                }
            }
        }
    }
}
