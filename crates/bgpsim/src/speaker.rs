//! Per-AS BGP speaker state.
//!
//! The propagation engine keeps one [`Speaker`] per AS. Because every prefix
//! originated by the same AS is routed identically, the speaker tracks routing
//! state per *origin AS* (the engine expands origins back into prefixes only
//! when producing message streams for the SWIFT algorithms). This is the same
//! trick that makes C-BGP-scale simulations tractable.

use crate::policy::{can_export, local_pref, LOCAL_ORIGIN_PREF};
use std::collections::{BTreeMap, BTreeSet};
use swift_bgp::{AsPath, Asn};
use swift_topology::Relationship;

/// Index of an origin AS in the engine's dense origin table.
pub type OriginIdx = usize;

/// A candidate route towards one origin, as learned from one neighbour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateRoute {
    /// The neighbour the route was learned from.
    pub neighbor: Asn,
    /// The AS path as received (starting with `neighbor`).
    pub path: AsPath,
}

/// The chosen best route towards one origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BestRoute {
    /// The origin is this AS itself; the path is empty.
    SelfOriginated,
    /// Learned from a neighbour.
    Learned(CandidateRoute),
}

impl BestRoute {
    /// The AS path of the best route (empty for self-originated).
    pub fn path(&self) -> AsPath {
        match self {
            BestRoute::SelfOriginated => AsPath::empty(),
            BestRoute::Learned(c) => c.path.clone(),
        }
    }

    /// The neighbour the route was learned from, or `None` if self-originated.
    pub fn learned_from(&self) -> Option<Asn> {
        match self {
            BestRoute::SelfOriginated => None,
            BestRoute::Learned(c) => Some(c.neighbor),
        }
    }
}

/// Per-origin routing state of a speaker.
#[derive(Debug, Clone, Default)]
pub struct OriginState {
    /// Routes received from each neighbour (Adj-RIB-In), keyed by neighbour.
    pub rib_in: BTreeMap<Asn, AsPath>,
    /// The currently selected best route, if any.
    pub best: Option<BestRoute>,
    /// Neighbours the current best has been advertised to.
    pub advertised_to: BTreeSet<Asn>,
}

/// The routing process of one AS.
#[derive(Debug, Clone)]
pub struct Speaker {
    /// This speaker's AS number.
    pub asn: Asn,
    /// Adjacent ASes and the relationship of each neighbour relative to this AS.
    pub neighbors: BTreeMap<Asn, Relationship>,
    /// Per-origin routing state, indexed by [`OriginIdx`].
    pub origins: Vec<OriginState>,
}

/// An export action produced by a best-route change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportAction {
    /// Announce `path` (already prepended with this speaker's ASN) to `to`.
    Announce {
        /// Target neighbour.
        to: Asn,
        /// Path to announce.
        path: AsPath,
    },
    /// Withdraw the route previously advertised to `to`.
    Withdraw {
        /// Target neighbour.
        to: Asn,
    },
}

impl Speaker {
    /// Creates a speaker with the given neighbours and `origin_count` origins.
    pub fn new(asn: Asn, neighbors: BTreeMap<Asn, Relationship>, origin_count: usize) -> Self {
        Speaker {
            asn,
            neighbors,
            origins: vec![OriginState::default(); origin_count],
        }
    }

    /// The relationship of `neighbor` relative to this AS, if adjacent.
    pub fn relationship(&self, neighbor: Asn) -> Option<Relationship> {
        self.neighbors.get(&neighbor).copied()
    }

    /// Removes the adjacency with `neighbor` (link failure). Routing state for
    /// routes learned from that neighbour must be cleaned up by the engine via
    /// [`Speaker::drop_neighbor_routes`].
    pub fn remove_neighbor(&mut self, neighbor: Asn) -> bool {
        self.neighbors.remove(&neighbor).is_some()
    }

    /// Removes every Adj-RIB-In entry learned from `neighbor` and returns the
    /// affected origin indices.
    pub fn drop_neighbor_routes(&mut self, neighbor: Asn) -> Vec<OriginIdx> {
        let mut affected = Vec::new();
        for (idx, state) in self.origins.iter_mut().enumerate() {
            if state.rib_in.remove(&neighbor).is_some() {
                affected.push(idx);
            }
            // The neighbour is gone, so it can no longer be "advertised to".
            state.advertised_to.remove(&neighbor);
        }
        affected
    }

    /// Marks this speaker as the originator of `origin_idx`.
    pub fn originate(&mut self, origin_idx: OriginIdx) {
        self.origins[origin_idx].best = Some(BestRoute::SelfOriginated);
    }

    /// Processes an incoming announcement from `from` for `origin_idx`.
    /// Returns the export actions triggered by any best-route change.
    pub fn receive_announce(
        &mut self,
        origin_idx: OriginIdx,
        from: Asn,
        path: AsPath,
    ) -> Vec<ExportAction> {
        // Receiver-side loop prevention: discard paths containing ourselves.
        if path.contains_as(self.asn) {
            return self.receive_withdraw(origin_idx, from);
        }
        self.origins[origin_idx].rib_in.insert(from, path);
        self.reselect(origin_idx)
    }

    /// Processes an incoming withdrawal from `from` for `origin_idx`.
    pub fn receive_withdraw(&mut self, origin_idx: OriginIdx, from: Asn) -> Vec<ExportAction> {
        self.origins[origin_idx].rib_in.remove(&from);
        self.reselect(origin_idx)
    }

    /// Recomputes the best route for `origin_idx` and, if it changed, produces
    /// the corresponding export actions.
    pub fn reselect(&mut self, origin_idx: OriginIdx) -> Vec<ExportAction> {
        let new_best = self.compute_best(origin_idx);
        let state = &self.origins[origin_idx];
        if new_best == state.best {
            return Vec::new();
        }
        self.origins[origin_idx].best = new_best;
        self.exports_for(origin_idx)
    }

    /// Standard decision process restricted to the simulator's attribute set:
    /// self-originated > customer > peer > provider routes, then shortest AS
    /// path, then lowest neighbour ASN.
    fn compute_best(&self, origin_idx: OriginIdx) -> Option<BestRoute> {
        let state = &self.origins[origin_idx];
        // Self-origination is sticky: set once by `originate`.
        if matches!(state.best, Some(BestRoute::SelfOriginated)) {
            return Some(BestRoute::SelfOriginated);
        }
        state
            .rib_in
            .iter()
            .filter_map(|(nbr, path)| {
                self.relationship(*nbr)
                    .map(|rel| (local_pref(rel), *nbr, path))
            })
            .max_by(|a, b| {
                a.0.cmp(&b.0)
                    .then_with(|| b.2.len().cmp(&a.2.len()))
                    .then_with(|| b.1.cmp(&a.1))
            })
            .map(|(_, nbr, path)| {
                BestRoute::Learned(CandidateRoute {
                    neighbor: nbr,
                    path: path.clone(),
                })
            })
    }

    /// Computes the export actions implied by the current best route:
    /// announcements to neighbours the route may be exported to, withdrawals to
    /// neighbours that previously received a route but may no longer.
    pub fn exports_for(&mut self, origin_idx: OriginIdx) -> Vec<ExportAction> {
        let asn = self.asn;
        let neighbors: Vec<(Asn, Relationship)> =
            self.neighbors.iter().map(|(a, r)| (*a, *r)).collect();
        let state = &mut self.origins[origin_idx];
        let mut actions = Vec::new();

        match &state.best {
            None => {
                // Lost the route entirely: withdraw from everyone we told.
                for to in std::mem::take(&mut state.advertised_to) {
                    actions.push(ExportAction::Withdraw { to });
                }
            }
            Some(best) => {
                let learned_rel = best
                    .learned_from()
                    .and_then(|n| neighbors.iter().find(|(a, _)| *a == n).map(|(_, r)| *r));
                let export_path = best.path().prepend(asn);
                for (to, to_rel) in &neighbors {
                    let allowed = can_export(learned_rel, *to_rel)
                        // Never export back to the neighbour the route came from.
                        && best.learned_from() != Some(*to)
                        // Sender-side loop check: pointless to offer a path
                        // already containing the target.
                        && !export_path.hops()[1..].contains(to);
                    if allowed {
                        actions.push(ExportAction::Announce {
                            to: *to,
                            path: export_path.clone(),
                        });
                        state.advertised_to.insert(*to);
                    } else if state.advertised_to.remove(to) {
                        actions.push(ExportAction::Withdraw { to: *to });
                    }
                }
            }
        }
        actions
    }

    /// The best path towards `origin_idx`, if reachable.
    pub fn best_path(&self, origin_idx: OriginIdx) -> Option<AsPath> {
        self.origins[origin_idx].best.as_ref().map(BestRoute::path)
    }

    /// The local preference value of the best route towards `origin_idx`.
    pub fn best_pref(&self, origin_idx: OriginIdx) -> Option<u32> {
        let best = self.origins[origin_idx].best.as_ref()?;
        Some(match best.learned_from() {
            None => LOCAL_ORIGIN_PREF,
            Some(n) => local_pref(self.relationship(n)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speaker_with(neighbors: &[(u32, Relationship)]) -> Speaker {
        Speaker::new(
            Asn(10),
            neighbors.iter().map(|(a, r)| (Asn(*a), *r)).collect(),
            4,
        )
    }

    #[test]
    fn prefers_customer_over_peer_over_provider() {
        let mut s = speaker_with(&[
            (1, Relationship::Customer),
            (2, Relationship::Peer),
            (3, Relationship::Provider),
        ]);
        s.receive_announce(0, Asn(3), AsPath::new([3u32, 99]));
        assert_eq!(s.best_path(0), Some(AsPath::new([3u32, 99])));
        s.receive_announce(0, Asn(2), AsPath::new([2u32, 50, 99]));
        assert_eq!(
            s.best_path(0),
            Some(AsPath::new([2u32, 50, 99])),
            "peer route preferred over provider even if longer"
        );
        s.receive_announce(0, Asn(1), AsPath::new([1u32, 40, 41, 99]));
        assert_eq!(
            s.best_path(0),
            Some(AsPath::new([1u32, 40, 41, 99])),
            "customer route preferred over peer even if longer"
        );
    }

    #[test]
    fn shorter_path_wins_within_same_class() {
        let mut s = speaker_with(&[(1, Relationship::Peer), (2, Relationship::Peer)]);
        s.receive_announce(0, Asn(1), AsPath::new([1u32, 5, 99]));
        s.receive_announce(0, Asn(2), AsPath::new([2u32, 99]));
        assert_eq!(s.best_path(0), Some(AsPath::new([2u32, 99])));
    }

    #[test]
    fn loop_paths_are_rejected() {
        let mut s = speaker_with(&[(1, Relationship::Customer)]);
        let actions = s.receive_announce(0, Asn(1), AsPath::new([1u32, 10, 99]));
        assert!(s.best_path(0).is_none(), "path containing self rejected");
        assert!(actions.is_empty());
    }

    #[test]
    fn customer_routes_exported_to_all_but_source() {
        let mut s = speaker_with(&[
            (1, Relationship::Customer),
            (2, Relationship::Peer),
            (3, Relationship::Provider),
        ]);
        let actions = s.receive_announce(0, Asn(1), AsPath::new([1u32, 99]));
        let targets: BTreeSet<Asn> = actions
            .iter()
            .filter_map(|a| match a {
                ExportAction::Announce { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, [Asn(2), Asn(3)].into_iter().collect());
        // Exported path is prepended with our ASN.
        if let ExportAction::Announce { path, .. } = &actions[0] {
            assert_eq!(path.first_hop(), Some(Asn(10)));
        } else {
            panic!("expected announce");
        }
    }

    #[test]
    fn provider_routes_only_exported_to_customers() {
        let mut s = speaker_with(&[
            (1, Relationship::Customer),
            (2, Relationship::Peer),
            (3, Relationship::Provider),
        ]);
        let actions = s.receive_announce(0, Asn(3), AsPath::new([3u32, 99]));
        let targets: Vec<Asn> = actions
            .iter()
            .filter_map(|a| match a {
                ExportAction::Announce { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![Asn(1)]);
    }

    #[test]
    fn losing_best_route_sends_withdrawals() {
        let mut s = speaker_with(&[(1, Relationship::Customer), (2, Relationship::Peer)]);
        s.receive_announce(0, Asn(1), AsPath::new([1u32, 99]));
        let actions = s.receive_withdraw(0, Asn(1));
        assert!(s.best_path(0).is_none());
        assert!(actions.contains(&ExportAction::Withdraw { to: Asn(2) }));
    }

    #[test]
    fn best_change_to_unexportable_route_withdraws_from_peers() {
        let mut s = speaker_with(&[(1, Relationship::Customer), (2, Relationship::Peer)]);
        // Customer route: exported to peer 2.
        s.receive_announce(0, Asn(1), AsPath::new([1u32, 99]));
        // Customer withdraws; only a peer route (from 2) would remain... none here,
        // so add a provider-free scenario: new route learned from peer 2 itself.
        let actions = s.receive_withdraw(0, Asn(1));
        assert_eq!(actions, vec![ExportAction::Withdraw { to: Asn(2) }]);
    }

    #[test]
    fn self_origination_is_sticky_and_preferred() {
        let mut s = speaker_with(&[(1, Relationship::Customer)]);
        s.originate(1);
        let actions = s.exports_for(1);
        assert!(matches!(&actions[0], ExportAction::Announce { to, path }
            if *to == Asn(1) && path.hops() == [Asn(10)]));
        // A learned route never displaces self-origination.
        s.receive_announce(1, Asn(1), AsPath::new([1u32, 99]));
        assert_eq!(s.best_path(1), Some(AsPath::empty()));
        assert_eq!(s.best_pref(1), Some(LOCAL_ORIGIN_PREF));
    }

    #[test]
    fn drop_neighbor_routes_reports_affected_origins() {
        let mut s = speaker_with(&[(1, Relationship::Customer), (2, Relationship::Peer)]);
        s.receive_announce(0, Asn(1), AsPath::new([1u32, 99]));
        s.receive_announce(2, Asn(1), AsPath::new([1u32, 98]));
        s.receive_announce(3, Asn(2), AsPath::new([2u32, 97]));
        s.remove_neighbor(Asn(1));
        let affected = s.drop_neighbor_routes(Asn(1));
        assert_eq!(affected, vec![0, 2]);
        assert!(s.relationship(Asn(1)).is_none());
    }

    #[test]
    fn reselection_is_idempotent_without_changes() {
        let mut s = speaker_with(&[(1, Relationship::Customer)]);
        s.receive_announce(0, Asn(1), AsPath::new([1u32, 99]));
        assert!(s.reselect(0).is_empty(), "no change → no exports");
    }
}
