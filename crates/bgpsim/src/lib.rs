//! # swift-bgpsim
//!
//! A deterministic, policy-compliant BGP control-plane simulator — the
//! reproduction's stand-in for C-BGP (§6.1 of the SWIFT paper).
//!
//! The simulator computes Gao–Rexford-compliant routing over a
//! [`swift_topology::Topology`], then replays link failures and records the
//! message stream crossing a monitored session together with the ground-truth
//! failed link. Those [`GroundTruthBurst`]s drive the controlled validation of
//! the SWIFT inference algorithm (§6.2.2, §6.3.2).
//!
//! ```
//! use swift_bgpsim::Engine;
//! use swift_topology::Topology;
//! use swift_bgp::{AsLink, Asn};
//!
//! let mut engine = Engine::new(Topology::figure1_with_counts(10, 20, 20));
//! engine.converge();
//! engine.monitor_session(Asn(1), Asn(2));
//! engine.fail_link(Asn(5), Asn(6));
//! let burst = engine.take_burst(AsLink::new(5, 6));
//! assert!(burst.withdrawn_origins().contains(&Asn(8)));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod collector;
pub mod engine;
pub mod policy;
pub mod speaker;

pub use collector::{CapturedMessage, GroundTruthBurst};
pub use engine::{Engine, RunStats};
pub use policy::{can_export, local_pref, LOCAL_ORIGIN_PREF};
pub use speaker::{BestRoute, CandidateRoute, ExportAction, OriginIdx, Speaker};
