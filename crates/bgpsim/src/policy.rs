//! Gao–Rexford routing policies.
//!
//! The simulator applies the standard economic model of inter-domain routing:
//!
//! * **Preference**: routes learned from customers are preferred over routes
//!   learned from peers, which are preferred over routes learned from
//!   providers (valley-free economics: customers pay you, providers charge
//!   you).
//! * **Export**: a route learned from a customer (or originated locally) may be
//!   exported to everyone; a route learned from a peer or provider may only be
//!   exported to customers.
//!
//! Together these rules guarantee convergence of the propagation engine and
//! produce the "information hiding" the paper describes in §2.1.1: ASes such as
//! AS 5 in Fig. 1 do not learn (and therefore cannot immediately fall back to)
//! alternate paths for every destination.

use swift_topology::Relationship;

/// LOCAL_PREF assigned to a route according to the relationship with the
/// neighbour it was learned from. Locally-originated routes use
/// [`LOCAL_ORIGIN_PREF`].
pub fn local_pref(learned_from: Relationship) -> u32 {
    match learned_from {
        Relationship::Customer => 200,
        Relationship::Peer => 100,
        Relationship::Provider => 50,
    }
}

/// LOCAL_PREF of locally-originated routes (always wins).
pub const LOCAL_ORIGIN_PREF: u32 = 300;

/// Gao–Rexford export rule.
///
/// `learned_from` is the relationship with the neighbour the best route was
/// learned from (`None` for locally-originated routes); `to` is the
/// relationship with the neighbour the route would be exported to. Returns
/// `true` if the export is allowed.
pub fn can_export(learned_from: Option<Relationship>, to: Relationship) -> bool {
    match learned_from {
        // Own routes and customer routes go to everyone.
        None | Some(Relationship::Customer) => true,
        // Peer and provider routes only go to customers.
        Some(Relationship::Peer) | Some(Relationship::Provider) => to == Relationship::Customer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_topology::Relationship::*;

    #[test]
    fn preference_order_is_customer_peer_provider() {
        assert!(local_pref(Customer) > local_pref(Peer));
        assert!(local_pref(Peer) > local_pref(Provider));
        assert!(LOCAL_ORIGIN_PREF > local_pref(Customer));
    }

    #[test]
    fn own_and_customer_routes_export_everywhere() {
        for to in [Customer, Peer, Provider] {
            assert!(can_export(None, to));
            assert!(can_export(Some(Customer), to));
        }
    }

    #[test]
    fn peer_and_provider_routes_only_export_to_customers() {
        for learned in [Peer, Provider] {
            assert!(can_export(Some(learned), Customer));
            assert!(!can_export(Some(learned), Peer));
            assert!(!can_export(Some(learned), Provider));
        }
    }

    #[test]
    fn valley_free_property_holds() {
        // A path that goes down (to a customer) can never go back up: once a
        // route has been learned from a peer or provider it is only exported
        // downhill, so a provider→customer→provider "valley" is impossible.
        // Expressed with the export predicate: an AS that learned the route
        // from its provider cannot export it to another provider or peer.
        assert!(!can_export(Some(Provider), Provider));
        assert!(!can_export(Some(Provider), Peer));
        assert!(!can_export(Some(Peer), Provider));
    }
}
