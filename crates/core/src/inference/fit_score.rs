//! The Fit Score: the weighted geometric mean of Withdrawal Share and Path
//! Share (§4.1), for single links and for link sets (§4.2, concurrent
//! failures).
//!
//! Two ranking paths exist:
//!
//! * [`rank_links`] — the from-scratch reference: score every link with a
//!   withdrawal and sort. Used by forced end-of-burst inference and tests.
//! * [`LinkRanker`] — the incremental form used by the engine's hot path: the
//!   candidate set (links with `W(l) > 0`) is maintained from the counters'
//!   dirty-link feed between triggering attempts, so an attempt only scores
//!   the candidates instead of walking every link the session has ever seen.

use crate::config::InferenceConfig;
use crate::inference::counters::LinkCounters;
use std::collections::BTreeSet;
use swift_bgp::AsLink;

/// The WS / PS / FS values of one link or link set at one point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Withdrawal Share: fraction of all received withdrawals explained.
    pub ws: f64,
    /// Path Share: fraction of the prefixes crossing the link(s) withdrawn.
    pub ps: f64,
    /// Fit Score: weighted geometric mean of WS and PS.
    pub fs: f64,
}

/// Withdrawal Share of a single link: `W(l,t) / W(t)`.
pub fn withdrawal_share(counters: &LinkCounters, link: &AsLink) -> f64 {
    let total = counters.total_withdrawals();
    if total == 0 {
        return 0.0;
    }
    counters.w(link) as f64 / total as f64
}

/// Path Share of a single link: `W(l,t) / (W(l,t) + P(l,t))`.
pub fn path_share(counters: &LinkCounters, link: &AsLink) -> f64 {
    let w = counters.w(link);
    let p = counters.p(link);
    if w + p == 0 {
        return 0.0;
    }
    w as f64 / (w + p) as f64
}

/// Weighted geometric mean of WS and PS:
/// `FS = (WS^wWS * PS^wPS)^(1 / (wWS + wPS))`.
pub fn fit_score_value(ws: f64, ps: f64, config: &InferenceConfig) -> f64 {
    let (w_ws, w_ps) = config.normalized_weights();
    ws.powf(w_ws) * ps.powf(w_ps)
}

/// Scores a single link.
///
/// Reads `W(l)` and `P(l)` with one index probe ([`LinkCounters::wp`]); the
/// share-by-share form ([`withdrawal_share`] + [`path_share`]) pays three
/// probes for the same entry and survives only as the definitional reference.
pub fn score_link(counters: &LinkCounters, link: &AsLink, config: &InferenceConfig) -> Score {
    let (w, p) = counters.wp(link);
    score_from_counts(w, p, counters.total_withdrawals(), config)
}

/// Builds a [`Score`] from raw `(W(S), P(S), W(t))` counts.
pub(crate) fn score_from_counts(
    w: usize,
    p: usize,
    total: usize,
    config: &InferenceConfig,
) -> Score {
    let ws = if total == 0 {
        0.0
    } else {
        w as f64 / total as f64
    };
    let ps = if w + p == 0 {
        0.0
    } else {
        w as f64 / (w + p) as f64
    };
    Score {
        ws,
        ps,
        fs: fit_score_value(ws, ps, config),
    }
}

/// Scores a set of links using the aggregated definitions of §4.2, with the
/// per-prefix union semantics of [`LinkCounters::w_union`] /
/// [`LinkCounters::p_union`]: `WS(S) = W(S)/W(t)` and
/// `PS(S) = W(S) / (W(S) + P(S))`, where `W(S)`/`P(S)` count each prefix once
/// even if its path crosses several links of the set.
///
/// Both union counts come from one fused streaming pass over the inverted
/// prefix-bitset index ([`LinkCounters::union_counts`]): no materialised
/// union, no per-call heap allocation, empty id regions skipped via the
/// dense sets' chunk summaries.
pub fn score_link_set(
    counters: &LinkCounters,
    links: &[AsLink],
    config: &InferenceConfig,
) -> Score {
    let (w, p) = counters.union_counts(links);
    score_from_counts(w, p, counters.total_withdrawals(), config)
}

/// Reference implementation of [`score_link_set`] over the materialised-union
/// path ([`LinkCounters::union_counts_materialized`]) — the pre-kernel hot
/// path, kept for the equivalence property tests and as the baseline the
/// `bench_inference` kernel groups measure the fused pass against.
pub fn score_link_set_materialized(
    counters: &LinkCounters,
    links: &[AsLink],
    config: &InferenceConfig,
) -> Score {
    let (w, p) = counters.union_counts_materialized(links);
    score_from_counts(w, p, counters.total_withdrawals(), config)
}

/// Reference implementation of [`score_link_set`] using the full-RIB scans
/// ([`LinkCounters::w_union_scan`] / [`LinkCounters::p_union_scan`]); the
/// baseline the `exp_scale` experiment and the property tests compare the
/// index against.
pub fn score_link_set_scan(
    counters: &LinkCounters,
    links: &[AsLink],
    config: &InferenceConfig,
) -> Score {
    let w = counters.w_union_scan(links);
    let p = counters.p_union_scan(links);
    score_from_counts(w, p, counters.total_withdrawals(), config)
}

/// Sorts `(link, score)` pairs by decreasing fit score (ties broken by link
/// identity for determinism).
fn sort_ranking(scored: &mut [(AsLink, Score)]) {
    scored.sort_by(|a, b| {
        b.1.fs
            .partial_cmp(&a.1.fs)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
}

/// Scores every link with at least one withdrawal, returning `(link, score)`
/// pairs sorted by decreasing fit score (ties broken by link identity for
/// determinism).
pub fn rank_links(counters: &LinkCounters, config: &InferenceConfig) -> Vec<(AsLink, Score)> {
    let mut scored: Vec<(AsLink, Score)> = counters
        .links_with_withdrawals()
        .map(|(l, _)| (*l, score_link(counters, l, config)))
        .collect();
    sort_ranking(&mut scored);
    scored
}

/// Incrementally maintained link ranking for the engine's hot path.
///
/// Between two triggering attempts of a burst, only the links actually touched
/// by withdrawals change their candidacy; the ranker folds the counters'
/// dirty-link feed ([`LinkCounters::take_dirty`]) into a persistent candidate
/// set instead of re-discovering it by walking every link the counters know
/// (a full-table session tracks orders of magnitude more links than a burst
/// touches). Scores themselves are recomputed per attempt — they are O(1) per
/// candidate, and `W(t)` in the denominator changes with every withdrawal —
/// so [`LinkRanker::ranking`] returns exactly what [`rank_links`] would.
#[derive(Debug, Clone, Default)]
pub struct LinkRanker {
    /// Links with `W(l) > 0`, kept sorted for deterministic iteration.
    candidates: BTreeSet<AsLink>,
}

impl LinkRanker {
    /// Creates an empty ranker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets every candidate (call at burst boundaries, alongside
    /// [`LinkCounters::start_burst`]).
    pub fn reset(&mut self) {
        self.candidates.clear();
    }

    /// Folds a batch of dirty links into the candidate set.
    pub fn update<I>(&mut self, dirty: I, counters: &LinkCounters)
    where
        I: IntoIterator<Item = AsLink>,
    {
        for link in dirty {
            if counters.w(&link) > 0 {
                self.candidates.insert(link);
            } else {
                self.candidates.remove(&link);
            }
        }
    }

    /// Number of current candidate links.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// The current ranking — identical to [`rank_links`] on the same counters,
    /// but scoring only the maintained candidates.
    pub fn ranking(
        &self,
        counters: &LinkCounters,
        config: &InferenceConfig,
    ) -> Vec<(AsLink, Score)> {
        let mut scored: Vec<(AsLink, Score)> = self
            .candidates
            .iter()
            .map(|l| (*l, score_link(counters, l, config)))
            .collect();
        sort_ranking(&mut scored);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_bgp::{AsPath, Prefix};

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    /// The Fig. 4 scenario at 1:1000 scale, run to the end of the burst.
    fn fig4_end() -> LinkCounters {
        let mut rib: Vec<(Prefix, AsPath)> = vec![
            (p(0), AsPath::new([2u32])),
            (p(1), AsPath::new([2u32, 5])),
            (p(2), AsPath::new([2u32, 5, 6])),
        ];
        for i in 0..10 {
            rib.push((p(10 + i), AsPath::new([2u32, 5, 6, 7])));
        }
        for i in 0..10 {
            rib.push((p(30 + i), AsPath::new([2u32, 5, 6, 8])));
        }
        let mut c = LinkCounters::from_rib(rib.iter().map(|(a, b)| (a, b)));
        c.on_withdraw(p(2));
        for i in 0..10 {
            c.on_withdraw(p(30 + i));
        }
        for i in 0..10 {
            c.on_announce(p(10 + i), AsPath::new([2u32, 5, 3, 6, 7]));
        }
        c
    }

    #[test]
    fn fig4_shares_match_paper() {
        let c = fig4_end();
        let cfg = InferenceConfig::default();

        let s56 = score_link(&c, &AsLink::new(5, 6), &cfg);
        assert!((s56.ws - 1.0).abs() < 1e-12, "WS(5,6) = 11/11");
        assert!((s56.ps - 1.0).abs() < 1e-12, "PS(5,6) = 11/11");
        assert!((s56.fs - 1.0).abs() < 1e-12);

        let s25 = score_link(&c, &AsLink::new(2, 5), &cfg);
        assert!((s25.ws - 1.0).abs() < 1e-12, "WS(2,5) = 11/11");
        assert!((s25.ps - 11.0 / 22.0).abs() < 1e-12, "PS(2,5) = 11/22");
        assert!(s25.fs < s56.fs);

        let s68 = score_link(&c, &AsLink::new(6, 8), &cfg);
        assert!((s68.ws - 10.0 / 11.0).abs() < 1e-12, "WS(6,8) = 10/11");
        assert!((s68.ps - 1.0).abs() < 1e-12, "PS(6,8) = 10/10");
        assert!(s68.fs < s56.fs);

        let s67 = score_link(&c, &AsLink::new(6, 7), &cfg);
        assert_eq!(s67.ws, 0.0);
        assert_eq!(s67.fs, 0.0);
    }

    #[test]
    fn failed_link_ranks_first_at_end_of_burst() {
        let c = fig4_end();
        let cfg = InferenceConfig::default();
        let ranking = rank_links(&c, &cfg);
        assert_eq!(ranking[0].0, AsLink::new(5, 6));
        // Every ranked link has withdrawals.
        assert!(ranking.iter().all(|(_, s)| s.ws > 0.0));
    }

    #[test]
    fn ws_weight_dominance_early_in_burst() {
        // Early in a burst only 2 of the 20 prefixes crossing the failed link
        // have been withdrawn: PS is low, but WS is already 1.0. With the
        // paper's 3:1 weighting the failed link must still outrank a link with
        // a spuriously high PS but low WS.
        let mut rib: Vec<(Prefix, AsPath)> = Vec::new();
        for i in 0..20 {
            rib.push((p(i), AsPath::new([2u32, 5, 6])));
        }
        rib.push((p(100), AsPath::new([2u32, 9])));
        let mut c = LinkCounters::from_rib(rib.iter().map(|(a, b)| (a, b)));
        c.on_withdraw(p(0));
        c.on_withdraw(p(1));
        let cfg = InferenceConfig::default();
        let s56 = score_link(&c, &AsLink::new(5, 6), &cfg);
        assert!((s56.ws - 1.0).abs() < 1e-12);
        assert!((s56.ps - 0.1).abs() < 1e-12);
        assert!(s56.fs > 0.5, "WS-heavy weighting keeps FS high: {}", s56.fs);
        // With inverted weights the same link would score much lower.
        let inverted = InferenceConfig {
            ws_weight: 1.0,
            ps_weight: 3.0,
            ..Default::default()
        };
        let s_inv = score_link(&c, &AsLink::new(5, 6), &inverted);
        assert!(s_inv.fs < s56.fs);
    }

    #[test]
    fn set_scores_aggregate() {
        let c = fig4_end();
        let cfg = InferenceConfig::default();
        // The set {(5,6), (6,8)} shares endpoint 6; the union semantics count
        // the 11 withdrawn prefixes once each.
        let set = [AsLink::new(5, 6), AsLink::new(6, 8)];
        let s = score_link_set(&c, &set, &cfg);
        assert!((s.ws - 1.0).abs() < 1e-12, "11 of 11 withdrawals explained");
        assert!(
            (s.ps - 1.0).abs() < 1e-12,
            "nothing crossing the set survives"
        );
        // Adding a link whose prefixes survived (the re-announced AS 7 prefixes
        // still end with (6,7) hops via AS 3... but that path is (2 5 3 6 7), so
        // its (6,7) hop keeps P(6,7) > 0) dilutes PS and lowers the score.
        let set2 = [AsLink::new(5, 6), AsLink::new(6, 7)];
        let s2 = score_link_set(&c, &set2, &cfg);
        assert!(s2.ps < 1.0);
        assert!(s2.fs < s.fs);
        // Adding the upstream (2,5) link also dilutes PS (AS 5's own prefix and
        // the updated AS 7 prefixes still cross it).
        let set3 = [AsLink::new(2, 5), AsLink::new(5, 6)];
        let s3 = score_link_set(&c, &set3, &cfg);
        assert!(s3.fs < s.fs);
    }

    #[test]
    fn empty_counters_score_zero() {
        let c = LinkCounters::new();
        let cfg = InferenceConfig::default();
        let s = score_link(&c, &AsLink::new(1, 2), &cfg);
        assert_eq!(s.ws, 0.0);
        assert_eq!(s.ps, 0.0);
        assert_eq!(s.fs, 0.0);
        assert!(rank_links(&c, &cfg).is_empty());
        let set = score_link_set(&c, &[], &cfg);
        assert_eq!(set.fs, 0.0);
    }

    #[test]
    fn set_score_matches_scan_reference() {
        let c = fig4_end();
        let cfg = InferenceConfig::default();
        for set in [
            vec![AsLink::new(5, 6)],
            vec![AsLink::new(5, 6), AsLink::new(6, 8)],
            vec![AsLink::new(2, 5), AsLink::new(6, 7)],
            vec![],
        ] {
            let fast = score_link_set(&c, &set, &cfg);
            let slow = score_link_set_scan(&c, &set, &cfg);
            assert_eq!(fast, slow, "set {set:?}");
        }
    }

    #[test]
    fn incremental_ranker_matches_rank_links() {
        let mut rib: Vec<(Prefix, AsPath)> = Vec::new();
        for i in 0..30 {
            rib.push((p(i), AsPath::new([2u32, 5, 6])));
        }
        for i in 30..40 {
            rib.push((p(i), AsPath::new([2u32, 9, 10])));
        }
        let mut c = LinkCounters::from_rib(rib.iter().map(|(a, b)| (a, b)));
        let cfg = InferenceConfig::default();
        let mut ranker = LinkRanker::new();
        // Interleave withdrawals and announcements, folding dirt as the
        // engine would between attempts.
        for i in 0..20u32 {
            c.on_withdraw(p(i));
            if i % 5 == 0 {
                c.on_announce(p(30 + i / 5), AsPath::new([2u32, 5, 3]));
            }
            if i % 4 == 0 {
                ranker.update(c.take_dirty(), &c);
                assert_eq!(ranker.ranking(&c, &cfg), rank_links(&c, &cfg));
            }
        }
        ranker.update(c.take_dirty(), &c);
        assert_eq!(ranker.ranking(&c, &cfg), rank_links(&c, &cfg));
        assert_eq!(ranker.candidate_count(), 2, "(2,5) and (5,6)");
        // A burst boundary resets both sides.
        c.start_burst(std::iter::empty());
        ranker.reset();
        ranker.update(c.take_dirty(), &c);
        assert!(ranker.ranking(&c, &cfg).is_empty());
        assert!(rank_links(&c, &cfg).is_empty());
    }

    #[test]
    fn fit_score_is_weighted_geometric_mean() {
        let cfg = InferenceConfig::default();
        // ws=1, ps=0.5, weights 3:1 → (1^3 * 0.5)^(1/4) = 0.5^0.25.
        let v = fit_score_value(1.0, 0.5, &cfg);
        assert!((v - 0.5f64.powf(0.25)).abs() < 1e-12);
        // Zero PS forces a zero score regardless of WS.
        assert_eq!(fit_score_value(1.0, 0.0, &cfg), 0.0);
    }
}
