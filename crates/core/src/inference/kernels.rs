//! Allocation-free fused bitset kernels for the inference scorer.
//!
//! Scoring a candidate link set (§4.2) needs exactly two numbers: `W(S)` and
//! `P(S)` — the cardinalities of `(∪ crosses(l)) ∩ withdrawn` and
//! `(∪ crosses(l)) ∩ routed`. The pre-kernel implementation materialised the
//! union into a fresh [`IdBitSet`] per call and then ran two intersection
//! passes over it; at 1M-prefix scale that is a 128 KB allocation plus three
//! full sweeps of the id space for every greedy trial.
//!
//! [`fused_union_counts`] computes both counts in a single streaming pass with
//! no materialised union at all:
//!
//! * **dense / mixed dispatch** — the id space is walked in 512-bit blocks
//!   (one `[u64; BLOCK_WORDS]` stack buffer). A block is visited only if some
//!   dense source's chunk-summary bit marks it non-empty or a sparse source's
//!   cursor sits inside it; visited blocks OR the dense words and scatter the
//!   sparse ids into the buffer, then AND-popcount against each mask.
//! * **sparse dispatch** — when every source is a posting list, a k-way
//!   merge walks the sources in id order (deduplicating on the fly) and
//!   membership-tests each id against the masks; no block buffer is touched.
//!
//! The per-pass state (source partitions and merge cursors) lives in a
//! [`ScoreScratch`] owned by the engine's [`super::counters::LinkCounters`],
//! so steady-state scoring performs **zero heap allocation** — the
//! `hot-path-alloc` lint in `swift-analysis` enforces this for every kernel
//! body. The scratch also carries the reusable union buffers for the few
//! paths that genuinely need materialised ids (`crossing_prefixes`, the
//! incremental greedy aggregate) plus the [`KernelStats`] dispatch counters
//! exported through the telemetry registry.

use crate::inference::bitset::{IdBitSet, Parts, BLOCK_BITS, BLOCK_WORDS};

/// Which kernel shape a call dispatched to, plus scratch reuse accounting.
///
/// Drained per engine via `LinkCounters::take_kernel_stats` and summed into
/// the registry counters `inference.kernel.{dense,sparse,mixed}` and
/// `inference.scratch.{reuse,growth}` by the runtime's shard workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Fused passes where every source was word-packed.
    pub dense: u64,
    /// Fused passes that took the k-way merge path (all sources posting
    /// lists, collectively sparse relative to their extent).
    pub sparse: u64,
    /// Fused passes that took the block path with sparse sources involved:
    /// a sparse/dense mix, or all-sparse sources too dense for the merge.
    pub mixed: u64,
    /// Materialised-union paths that reused scratch capacity.
    pub scratch_reuse: u64,
    /// Materialised-union paths that had to grow the scratch buffer.
    pub scratch_growth: u64,
}

impl KernelStats {
    /// Returns `true` if every counter is zero (nothing to export).
    pub fn is_zero(&self) -> bool {
        *self == KernelStats::default()
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &KernelStats) {
        self.dense += other.dense;
        self.sparse += other.sparse;
        self.mixed += other.mixed;
        self.scratch_reuse += other.scratch_reuse;
        self.scratch_growth += other.scratch_growth;
    }
}

/// Per-pass state of the fused kernels (partition index vectors and merge
/// cursors): cleared, never shrunk, so repeated passes allocate nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct PassScratch {
    /// Indices (into the caller's source slice) of dense sources.
    dense: Vec<usize>,
    /// Indices of sparse sources.
    sparse: Vec<usize>,
    /// One merge cursor per sparse source.
    cursors: Vec<usize>,
}

/// Engine-owned scratch for the scoring hot path.
///
/// One instance lives inside each `LinkCounters` (one per BGP session engine);
/// it is never shared across threads. All capacity — pass state, the
/// materialised-union buffer and the incremental greedy aggregate — is reused
/// across calls, which is what makes the steady-state scoring path
/// allocation-free.
#[derive(Debug, Clone)]
pub struct ScoreScratch {
    pub(crate) pass: PassScratch,
    /// Reusable materialised union for the paths that need actual ids
    /// (`crossing_prefixes` behind `predict`). Kept dense so `clear_all`
    /// retains capacity.
    pub(crate) union_buf: IdBitSet,
    /// Running union of the greedy aggregation's current link set
    /// (`agg_seed` / `agg_trial` / `agg_accept` on `LinkCounters`).
    pub(crate) agg: IdBitSet,
    /// Dispatch and reuse counters since the last drain.
    pub(crate) stats: KernelStats,
}

impl Default for ScoreScratch {
    fn default() -> Self {
        ScoreScratch {
            pass: PassScratch::default(),
            // `with_capacity(0)` pins the dense representation from the start:
            // the buffers grow once to the session's id-space size and then
            // every later burst reuses the words in place.
            union_buf: IdBitSet::with_capacity(0),
            agg: IdBitSet::with_capacity(0),
            stats: KernelStats::default(),
        }
    }
}

impl ScoreScratch {
    /// A fresh scratch with empty (but dense-pinned) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the dispatch/reuse counters accumulated since the last call.
    pub fn take_stats(&mut self) -> KernelStats {
        std::mem::take(&mut self.stats)
    }
}

/// Highest summary block any part of `set` could populate, capped at the id
/// space the masks can ever match.
fn extent_blocks(set: &IdBitSet) -> usize {
    match set.parts() {
        Parts::Sparse(ids) => ids.last().map_or(0, |&m| m as usize / BLOCK_BITS + 1),
        Parts::Dense(d) => d.words.len().div_ceil(BLOCK_WORDS),
    }
}

/// Counts the bits of `buf` (block `b` of the union) that are also set in
/// `mask`. For a sparse mask, `cursor` advances monotonically across calls
/// with ascending `b` — ids falling in skipped blocks are passed over without
/// counting (the union holds no bit there).
#[inline]
fn mask_block_count(
    buf: &[u64; BLOCK_WORDS],
    mask: Parts<'_>,
    b: usize,
    cursor: &mut usize,
) -> usize {
    match mask {
        Parts::Dense(d) => {
            let start = (b * BLOCK_WORDS).min(d.words.len());
            let end = (b * BLOCK_WORDS + BLOCK_WORDS).min(d.words.len());
            d.words[start..end]
                .iter()
                .zip(buf.iter())
                .map(|(m, x)| (m & x).count_ones() as usize)
                .sum()
        }
        Parts::Sparse(ids) => {
            let base = (b * BLOCK_BITS) as u64;
            let end = base + BLOCK_BITS as u64;
            while *cursor < ids.len() && u64::from(ids[*cursor]) < base {
                *cursor += 1;
            }
            let mut n = 0;
            while *cursor < ids.len() && u64::from(ids[*cursor]) < end {
                let off = u64::from(ids[*cursor]) - base;
                n += (buf[(off / 64) as usize] >> (off % 64) & 1) as usize;
                *cursor += 1;
            }
            n
        }
    }
}

/// The `(W(S), P(S))` streaming kernel: counts `|(∪ sources) ∩ withdrawn|`
/// and `|(∪ sources) ∩ routed|` in one pass, without materialising the union.
///
/// Dispatches on the source representations (see the module docs) and records
/// the dispatch class in the scratch's [`KernelStats`]. Heap allocation: none
/// once the scratch's cursor vectors have warmed up to the largest source
/// count seen.
pub fn fused_union_counts(
    sources: &[&IdBitSet],
    withdrawn: &IdBitSet,
    routed: &IdBitSet,
    scratch: &mut ScoreScratch,
) -> (usize, usize) {
    fused_wp(
        sources,
        withdrawn,
        routed,
        &mut scratch.pass,
        &mut scratch.stats,
    )
}

/// Kernel body behind [`fused_union_counts`], split so callers holding the
/// union buffers of the same [`ScoreScratch`] borrowed as a source (the
/// incremental greedy aggregate) can still pass the cursor state mutably.
pub(crate) fn fused_wp(
    sources: &[&IdBitSet],
    withdrawn: &IdBitSet,
    routed: &IdBitSet,
    pass: &mut PassScratch,
    stats: &mut KernelStats,
) -> (usize, usize) {
    if sources.is_empty() {
        return (0, 0);
    }
    pass.dense.clear();
    pass.sparse.clear();
    for (i, s) in sources.iter().enumerate() {
        match s.parts() {
            Parts::Dense(_) => pass.dense.push(i),
            Parts::Sparse(_) => pass.sparse.push(i),
        }
    }
    if pass.dense.is_empty() {
        // All-sparse: the per-id k-way merge only wins while the union is
        // genuinely sparse relative to its extent. Collectively dense posting
        // lists (≥ 1 id per 16 bits) go through the word-blocked path, which
        // scatters each id once and popcounts — O(words + ids) instead of the
        // merge's O(k × ids).
        let total_ids: usize = pass
            .sparse
            .iter()
            .map(|&si| match sources[si].parts() {
                Parts::Sparse(ids) => ids.len(),
                Parts::Dense(_) => unreachable!("partitioned as sparse"),
            })
            .sum();
        let extent_bits = sources
            .iter()
            .map(|s| match s.parts() {
                Parts::Sparse(ids) => ids.last().map_or(0, |&m| m as usize + 1),
                Parts::Dense(_) => unreachable!("partitioned as sparse"),
            })
            .max()
            .unwrap_or(0);
        if total_ids * 16 < extent_bits {
            stats.sparse += 1;
            sparse_merge_wp(sources, &pass.sparse, withdrawn, routed, &mut pass.cursors)
        } else {
            stats.mixed += 1;
            block_wp(sources, pass, withdrawn, routed)
        }
    } else {
        if pass.sparse.is_empty() {
            stats.dense += 1;
        } else {
            stats.mixed += 1;
        }
        block_wp(sources, pass, withdrawn, routed)
    }
}

/// All-sparse dispatch: k-way merge of posting lists, deduplicating on the
/// fly, membership-testing each union id against both masks.
fn sparse_merge_wp(
    sources: &[&IdBitSet],
    sparse: &[usize],
    withdrawn: &IdBitSet,
    routed: &IdBitSet,
    cursors: &mut Vec<usize>,
) -> (usize, usize) {
    cursors.clear();
    cursors.resize(sparse.len(), 0);
    let (mut w, mut p) = (0, 0);
    loop {
        // Smallest unconsumed id across the posting lists. Source counts (k)
        // are the handful of links in a candidate set, so a linear min scan
        // beats heap maintenance.
        let mut min: Option<u32> = None;
        for (ci, &si) in sparse.iter().enumerate() {
            let Parts::Sparse(ids) = sources[si].parts() else {
                unreachable!("partitioned as sparse")
            };
            if let Some(&id) = ids.get(cursors[ci]) {
                min = Some(min.map_or(id, |m| m.min(id)));
            }
        }
        let Some(id) = min else {
            return (w, p);
        };
        w += usize::from(withdrawn.test(id));
        p += usize::from(routed.test(id));
        for (ci, &si) in sparse.iter().enumerate() {
            let Parts::Sparse(ids) = sources[si].parts() else {
                unreachable!("partitioned as sparse")
            };
            if ids.get(cursors[ci]) == Some(&id) {
                cursors[ci] += 1;
            }
        }
    }
}

/// Dense/mixed dispatch: 512-bit block loop over the id space, skipping
/// blocks no source populates (chunk summaries for dense sources, cursor
/// positions for sparse ones).
fn block_wp(
    sources: &[&IdBitSet],
    pass: &mut PassScratch,
    withdrawn: &IdBitSet,
    routed: &IdBitSet,
) -> (usize, usize) {
    // Ids beyond every mask contribute to neither count, so the walk is
    // bounded by min(source extent, mask extent).
    let src_blocks = sources.iter().map(|s| extent_blocks(s)).max().unwrap_or(0);
    let mask_blocks = extent_blocks(withdrawn).max(extent_blocks(routed));
    let n_blocks = src_blocks.min(mask_blocks);

    pass.cursors.clear();
    pass.cursors.resize(pass.sparse.len(), 0);
    let (wmask, rmask) = (withdrawn.parts(), routed.parts());
    let (mut wcur, mut pcur) = (0usize, 0usize);
    let (mut w, mut p) = (0usize, 0usize);

    for b in 0..n_blocks {
        // Occupancy: any dense source with the summary bit set, or any sparse
        // source whose next unconsumed id falls inside this block. (A sparse
        // id can never lag behind `b`: the block containing it was occupied,
        // hence visited, hence consumed it.)
        let mut occupied = pass
            .dense
            .iter()
            .any(|&si| matches!(sources[si].parts(), Parts::Dense(d) if d.block_marked(b)));
        if !occupied {
            let block_end = ((b + 1) * BLOCK_BITS) as u64;
            occupied = pass.sparse.iter().enumerate().any(|(ci, &si)| {
                let Parts::Sparse(ids) = sources[si].parts() else {
                    unreachable!("partitioned as sparse")
                };
                ids.get(pass.cursors[ci])
                    .is_some_and(|&id| u64::from(id) < block_end)
            });
        }
        if !occupied {
            continue;
        }

        let mut buf = [0u64; BLOCK_WORDS];
        let base_word = b * BLOCK_WORDS;
        for &si in &pass.dense {
            let Parts::Dense(d) = sources[si].parts() else {
                unreachable!("partitioned as dense")
            };
            if d.block_marked(b) {
                let start = base_word.min(d.words.len());
                let end = (base_word + BLOCK_WORDS).min(d.words.len());
                for (k, word) in d.words[start..end].iter().enumerate() {
                    buf[k] |= word;
                }
            }
        }
        let base_id = (b * BLOCK_BITS) as u64;
        let block_end = base_id + BLOCK_BITS as u64;
        for (ci, &si) in pass.sparse.iter().enumerate() {
            let Parts::Sparse(ids) = sources[si].parts() else {
                unreachable!("partitioned as sparse")
            };
            let cur = &mut pass.cursors[ci];
            while let Some(&id) = ids.get(*cur) {
                if u64::from(id) >= block_end {
                    break;
                }
                let off = u64::from(id) - base_id;
                buf[(off / 64) as usize] |= 1u64 << (off % 64);
                *cur += 1;
            }
        }

        w += mask_block_count(&buf, wmask, b, &mut wcur);
        p += mask_block_count(&buf, rmask, b, &mut pcur);
    }
    (w, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Model computation over plain id sets.
    fn model(sources: &[&IdBitSet], withdrawn: &IdBitSet, routed: &IdBitSet) -> (usize, usize) {
        let union: BTreeSet<u32> = sources.iter().flat_map(|s| s.ids()).collect();
        (
            union.iter().filter(|&&id| withdrawn.test(id)).count(),
            union.iter().filter(|&&id| routed.test(id)).count(),
        )
    }

    fn sparse_of(ids: &[u32]) -> IdBitSet {
        let mut s = IdBitSet::new();
        for &id in ids {
            s.set(id);
        }
        assert!(!s.is_dense() || ids.is_empty(), "intended to stay sparse");
        s
    }

    fn dense_of(cap: usize, ids: &[u32]) -> IdBitSet {
        let mut s = IdBitSet::with_capacity(cap);
        for &id in ids {
            s.set(id);
        }
        s
    }

    #[test]
    fn empty_inputs_count_zero() {
        let mut scratch = ScoreScratch::new();
        let w = dense_of(1024, &[1, 2, 3]);
        let r = dense_of(1024, &[4, 5]);
        assert_eq!(fused_union_counts(&[], &w, &r, &mut scratch), (0, 0));
        let empty = IdBitSet::new();
        assert_eq!(fused_union_counts(&[&empty], &w, &r, &mut scratch), (0, 0));
        assert!(
            scratch.take_stats().dense == 0,
            "empty source slice is not a pass"
        );
    }

    #[test]
    fn all_sparse_dispatch_merges_and_dedups() {
        let mut scratch = ScoreScratch::new();
        // Ids spread out enough that the posting list never crosses the
        // promotion threshold (promotion is one-way, checked per insert).
        let a = sparse_of(&[1, 500, 900, 100_000]);
        let b = sparse_of(&[500, 700, 100_000]);
        let withdrawn = sparse_of(&[1, 700, 100_000]);
        let routed = sparse_of(&[500, 900]);
        let srcs: [&IdBitSet; 2] = [&a, &b];
        let got = fused_union_counts(&srcs, &withdrawn, &routed, &mut scratch);
        assert_eq!(got, model(&srcs, &withdrawn, &routed));
        assert_eq!(got, (3, 2));
        let stats = scratch.take_stats();
        assert_eq!((stats.sparse, stats.dense, stats.mixed), (1, 0, 0));
    }

    #[test]
    fn dense_dispatch_skips_empty_blocks() {
        let mut scratch = ScoreScratch::new();
        // Bits only in blocks 0 and 90 of a 100-block space.
        let a = dense_of(100 * BLOCK_BITS, &[3, 90 * BLOCK_BITS as u32 + 17]);
        let b = dense_of(100 * BLOCK_BITS, &[4]);
        let withdrawn = dense_of(100 * BLOCK_BITS, &[3, 4]);
        let routed = dense_of(100 * BLOCK_BITS, &[90 * BLOCK_BITS as u32 + 17, 600]);
        let srcs: [&IdBitSet; 2] = [&a, &b];
        let got = fused_union_counts(&srcs, &withdrawn, &routed, &mut scratch);
        assert_eq!(got, model(&srcs, &withdrawn, &routed));
        assert_eq!(got, (2, 1));
        let stats = scratch.take_stats();
        assert_eq!((stats.sparse, stats.dense, stats.mixed), (0, 1, 0));
    }

    #[test]
    fn mixed_dispatch_handles_rep_mixes_and_sparse_masks() {
        let mut scratch = ScoreScratch::new();
        let dense = dense_of(20 * BLOCK_BITS, &[0, 512, 513, 5 * BLOCK_BITS as u32]);
        let sparse = sparse_of(&[512, 999, 19 * BLOCK_BITS as u32 + 3]);
        // One mask dense, one sparse — both sides of mask_block_count.
        let withdrawn = sparse_of(&[0, 999, 19 * BLOCK_BITS as u32 + 3]);
        let routed = dense_of(20 * BLOCK_BITS, &[512, 513, 5 * BLOCK_BITS as u32]);
        let srcs: [&IdBitSet; 2] = [&dense, &sparse];
        let got = fused_union_counts(&srcs, &withdrawn, &routed, &mut scratch);
        assert_eq!(got, model(&srcs, &withdrawn, &routed));
        assert_eq!(got, (3, 3));
        let stats = scratch.take_stats();
        assert_eq!((stats.sparse, stats.dense, stats.mixed), (0, 0, 1));
    }

    #[test]
    fn sources_wider_than_the_masks_are_clipped_not_miscounted() {
        let mut scratch = ScoreScratch::new();
        // Source bits far beyond both masks' extent must count for neither
        // side, and must not push the block walk past the mask words.
        let wide = dense_of(64 * BLOCK_BITS, &[10, 63 * BLOCK_BITS as u32]);
        let withdrawn = dense_of(512, &[10]);
        let routed = dense_of(512, &[11]);
        let srcs: [&IdBitSet; 1] = [&wide];
        assert_eq!(
            fused_union_counts(&srcs, &withdrawn, &routed, &mut scratch),
            (1, 0)
        );
    }

    #[test]
    fn repeated_passes_reuse_cursor_capacity() {
        let mut scratch = ScoreScratch::new();
        // Spread ids: collectively sparse relative to the extent, so every
        // pass dispatches to the k-way merge.
        let a = sparse_of(&[1, 2_000]);
        let b = sparse_of(&[2_000, 3_000]);
        let masks = dense_of(4_096, &[1, 2_000, 3_000]);
        let srcs: [&IdBitSet; 2] = [&a, &b];
        for _ in 0..3 {
            assert_eq!(
                fused_union_counts(&srcs, &masks, &masks, &mut scratch),
                (3, 3)
            );
        }
        assert_eq!(scratch.take_stats().sparse, 3);
        assert!(scratch.pass.cursors.capacity() >= 2, "cursors retained");
    }
}
