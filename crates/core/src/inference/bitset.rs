//! A growable fixed-width bitset over dense prefix ids.
//!
//! The inverted index in [`super::counters`] keys every AS link to the set of
//! prefixes whose path crosses it. With prefixes mapped to dense `u32` ids,
//! those sets are plain word-packed bitsets: set-union and
//! intersection-cardinality — the whole of the `W(S)`/`P(S)` computation —
//! become word-wise OR / AND + popcount, `O(ids / 64)` per link instead of a
//! scan over the entire session RIB.

/// A bitset over dense ids, growing on demand.
///
/// Unset ids beyond the allocated words are simply absent; all operations
/// treat the set as conceptually infinite and zero-padded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdBitSet {
    words: Vec<u64>,
}

impl IdBitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set pre-sized for ids `< capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        IdBitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Sets bit `id`.
    pub fn set(&mut self, id: u32) {
        let word = (id / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (id % 64);
    }

    /// Clears bit `id`.
    pub fn clear(&mut self, id: u32) {
        let word = (id / 64) as usize;
        if word < self.words.len() {
            self.words[word] &= !(1u64 << (id % 64));
        }
    }

    /// Returns `true` if bit `id` is set.
    pub fn test(&self, id: u32) -> bool {
        let word = (id / 64) as usize;
        word < self.words.len() && self.words[word] & (1u64 << (id % 64)) != 0
    }

    /// Clears every bit (keeps the allocation).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// The backing words (low id first).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// ORs `other` into `self`.
    pub fn union_with(&mut self, other: &IdBitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (dst, src) in self.words.iter_mut().zip(other.words.iter()) {
            *dst |= *src;
        }
    }

    /// `|self ∧ other|` without materialising the intersection.
    pub fn intersection_count(&self, other: &IdBitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the ids of set bits in `self ∧ other`, ascending.
    pub fn intersection_ids<'a>(&'a self, other: &'a IdBitSet) -> impl Iterator<Item = u32> + 'a {
        self.words
            .iter()
            .zip(other.words.iter())
            .enumerate()
            .flat_map(|(wi, (a, b))| {
                let mut bits = a & b;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let tz = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(wi as u32 * 64 + tz)
                })
            })
    }

    /// Iterates over all set ids, ascending.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut bits = *w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                Some(wi as u32 * 64 + tz)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_test_roundtrip() {
        let mut s = IdBitSet::new();
        assert!(s.is_empty());
        assert!(!s.test(5));
        s.set(5);
        s.set(64);
        s.set(1_000);
        assert!(s.test(5) && s.test(64) && s.test(1_000));
        assert!(!s.test(6) && !s.test(65) && !s.test(999));
        assert_eq!(s.count(), 3);
        s.clear(64);
        assert!(!s.test(64));
        assert_eq!(s.count(), 2);
        // Clearing an id beyond the allocation is a no-op.
        s.clear(1_000_000);
        assert_eq!(s.count(), 2);
        s.clear_all();
        assert!(s.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let mut a = IdBitSet::with_capacity(200);
        let mut b = IdBitSet::new();
        for id in [1u32, 63, 64, 128] {
            a.set(id);
        }
        for id in [63u32, 64, 300] {
            b.set(id);
        }
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(b.intersection_count(&a), 2);
        assert_eq!(a.intersection_ids(&b).collect::<Vec<_>>(), vec![63, 64]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 5);
        assert_eq!(u.ids().collect::<Vec<_>>(), vec![1, 63, 64, 128, 300]);
    }

    #[test]
    fn differently_sized_sets_are_zero_padded() {
        let mut small = IdBitSet::new();
        small.set(3);
        let mut big = IdBitSet::new();
        big.set(3);
        big.set(10_000);
        assert_eq!(small.intersection_count(&big), 1);
        assert_eq!(big.intersection_count(&small), 1);
        let mut u = small.clone();
        u.union_with(&big);
        assert_eq!(u.count(), 2);
        assert!(u.test(10_000));
    }
}
