//! A growable hybrid bitset over dense prefix ids.
//!
//! The inverted index in [`super::counters`] keys every AS link to the set of
//! prefixes whose path crosses it. With prefixes mapped to dense `u32` ids,
//! those sets support set-union and intersection-cardinality — the whole of
//! the `W(S)`/`P(S)` computation — in `O(ids / 64)` word operations instead of
//! a scan over the entire session RIB.
//!
//! # Hybrid representation
//!
//! A word-packed bitset costs `max_id / 8` bytes regardless of how many bits
//! are set. At Internet scale that is ruinous for the *per-link* sets: a
//! 1M-prefix RIB spreads its prefixes over tens of thousands of links, most of
//! which carry a few hundred prefixes — a dense bitset per link would cost
//! `125 KB × links` (gigabytes) to store kilobytes of information. [`IdBitSet`]
//! therefore stores small-relative-to-the-id-space sets as a sorted posting
//! list (`Vec<u32>`) and promotes to the word-packed form exactly when the
//! dense form becomes the smaller of the two (`32 × len > max_id + 1`, i.e.
//! 4 bytes per entry vs 1 bit per id). Promotion is one-way: sets that shrink
//! again (withdrawal purges) stay dense — re-demotion would thrash on
//! burst-boundary churn.
//!
//! # Chunk summary
//!
//! Dense sets additionally carry a two-level *chunk summary*: one summary bit
//! per [`BLOCK_WORDS`]-word (512-bit) block, set exactly when the block holds
//! at least one set bit. The fused scoring kernels in [`super::kernels`] test
//! the summary before touching a block, so a link whose prefixes cluster in a
//! corner of a 1M-wide id space skips the empty regions at 512 ids per summary
//! bit instead of streaming zero words. The invariant (`summary bit b set ⟺
//! block b non-zero`) is maintained by every mutation and checkable with
//! [`IdBitSet::check_summary_invariant`].
//!
//! All operations are representation-agnostic: unions, intersection counts and
//! id iteration accept any sparse/dense operand mix, and equality compares
//! *contents*, never representations.

/// Words per summary block: 8 × 64 = 512 bits per summary bit.
pub const BLOCK_WORDS: usize = 8;

/// Ids covered by one summary block.
pub const BLOCK_BITS: usize = BLOCK_WORDS * 64;

/// The word-packed form plus its chunk-summary bitmap.
///
/// `summary` holds one bit per `BLOCK_WORDS`-word block of `words`
/// (`summary[b / 64] >> (b % 64) & 1`), set exactly when the block contains a
/// non-zero word.
#[derive(Debug, Clone, Default)]
pub(crate) struct DenseBits {
    pub(crate) words: Vec<u64>,
    pub(crate) summary: Vec<u64>,
}

/// Summary words needed to cover `words` data words.
fn summary_len(words: usize) -> usize {
    words.div_ceil(BLOCK_WORDS).div_ceil(64)
}

impl DenseBits {
    /// An all-zero set pre-sized for ids `< capacity`.
    fn with_bit_capacity(capacity: usize) -> Self {
        let words = capacity.div_ceil(64);
        DenseBits {
            words: vec![0; words],
            summary: vec![0; summary_len(words)],
        }
    }

    /// Builds from a sorted posting list.
    fn from_ids(ids: &[u32]) -> Self {
        let cap = ids.last().map_or(0, |&m| m as usize + 1);
        let mut dense = DenseBits::with_bit_capacity(cap);
        for &id in ids {
            dense.words[(id / 64) as usize] |= 1u64 << (id % 64);
        }
        dense.rebuild_summary();
        dense
    }

    /// Recomputes the whole summary from the data words.
    fn rebuild_summary(&mut self) {
        self.summary.clear();
        self.summary.resize(summary_len(self.words.len()), 0);
        for (b, chunk) in self.words.chunks(BLOCK_WORDS).enumerate() {
            if chunk.iter().any(|w| *w != 0) {
                self.summary[b / 64] |= 1u64 << (b % 64);
            }
        }
    }

    /// Grows the word array (and the summary with it) to hold `words` words.
    fn grow(&mut self, words: usize) {
        if words > self.words.len() {
            self.words.resize(words, 0);
            self.summary.resize(summary_len(words), 0);
        }
    }

    fn set(&mut self, id: u32) {
        let word = (id / 64) as usize;
        self.grow(word + 1);
        self.words[word] |= 1u64 << (id % 64);
        let block = word / BLOCK_WORDS;
        self.summary[block / 64] |= 1u64 << (block % 64);
    }

    fn clear(&mut self, id: u32) {
        let word = (id / 64) as usize;
        if word >= self.words.len() {
            return;
        }
        self.words[word] &= !(1u64 << (id % 64));
        if self.words[word] == 0 {
            // The word went empty: the summary bit survives only if a sibling
            // word of the block still holds data.
            let block = word / BLOCK_WORDS;
            let start = block * BLOCK_WORDS;
            let end = (start + BLOCK_WORDS).min(self.words.len());
            if self.words[start..end].iter().all(|w| *w == 0) {
                self.summary[block / 64] &= !(1u64 << (block % 64));
            }
        }
    }

    /// Whether summary block `b` is marked non-empty.
    #[inline]
    pub(crate) fn block_marked(&self, b: usize) -> bool {
        self.summary
            .get(b / 64)
            .is_some_and(|s| s >> (b % 64) & 1 == 1)
    }
}

/// Sparse form: sorted, deduplicated posting list. Dense form: word-packed
/// bits plus chunk summary, low id first. Unset ids beyond the allocation are
/// absent in both forms; every operation treats a set as conceptually
/// infinite, zero-padded.
#[derive(Debug, Clone)]
enum Repr {
    /// Sorted posting list of set ids.
    Sparse(Vec<u32>),
    /// Word-packed bits (`id / 64` indexes the word, `id % 64` the bit) with
    /// the per-512-bit-block summary.
    Dense(DenseBits),
}

/// Borrowed view of either representation, for the fused kernels.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Parts<'a> {
    Sparse(&'a [u32]),
    Dense(&'a DenseBits),
}

/// A hybrid sparse/dense bitset over dense ids, growing on demand.
///
/// Starts as a posting list and promotes itself to the word-packed form when
/// that becomes the more compact representation (see the module docs).
#[derive(Debug, Clone)]
pub struct IdBitSet {
    repr: Repr,
}

impl Default for IdBitSet {
    fn default() -> Self {
        IdBitSet {
            repr: Repr::Sparse(Vec::new()),
        }
    }
}

/// A posting list of `len` ids costs `32 × len` bits; the dense form costs
/// `max_id + 1` bits rounded up to a whole 64-bit word. Promote at the
/// crossover.
fn dense_is_smaller(len: usize, max_id: u32) -> bool {
    (len as u64) * 32 > (u64::from(max_id) / 64 + 1) * 64
}

impl IdBitSet {
    /// Creates an empty set (sparse until promotion pays off).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty *dense* set pre-sized for ids `< capacity`.
    ///
    /// Use when the set is known to become dense (e.g. the global
    /// routed/withdrawn id sets): it skips the sparse phase entirely.
    pub fn with_capacity(capacity: usize) -> Self {
        IdBitSet {
            repr: Repr::Dense(DenseBits::with_bit_capacity(capacity)),
        }
    }

    /// Returns `true` if the set currently uses the word-packed form.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// Borrowed view of the underlying representation for the kernels.
    #[inline]
    pub(crate) fn parts(&self) -> Parts<'_> {
        match &self.repr {
            Repr::Sparse(v) => Parts::Sparse(v),
            Repr::Dense(d) => Parts::Dense(d),
        }
    }

    /// Bytes of heap memory behind the set (the quantity the hybrid
    /// representation exists to bound).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.capacity() * std::mem::size_of::<u32>(),
            Repr::Dense(d) => {
                (d.words.capacity() + d.summary.capacity()) * std::mem::size_of::<u64>()
            }
        }
    }

    fn promote(&mut self) {
        if let Repr::Sparse(v) = &self.repr {
            self.repr = Repr::Dense(DenseBits::from_ids(v));
        }
    }

    /// Sets bit `id`.
    pub fn set(&mut self, id: u32) {
        match &mut self.repr {
            Repr::Sparse(v) => {
                match v.last() {
                    // Ascending insertion (the common case: prefix ids are
                    // handed out in seeding order) is a plain push.
                    Some(&last) if id > last => v.push(id),
                    None => v.push(id),
                    Some(&last) if id == last => return,
                    _ => match v.binary_search(&id) {
                        Ok(_) => return,
                        Err(pos) => v.insert(pos, id),
                    },
                }
                let max = *v.last().expect("just pushed");
                if dense_is_smaller(v.len(), max) {
                    self.promote();
                }
            }
            Repr::Dense(d) => d.set(id),
        }
    }

    /// Clears bit `id`.
    pub fn clear(&mut self, id: u32) {
        match &mut self.repr {
            Repr::Sparse(v) => {
                if let Ok(pos) = v.binary_search(&id) {
                    v.remove(pos);
                }
            }
            Repr::Dense(d) => d.clear(id),
        }
    }

    /// Returns `true` if bit `id` is set.
    pub fn test(&self, id: u32) -> bool {
        match &self.repr {
            Repr::Sparse(v) => v.binary_search(&id).is_ok(),
            Repr::Dense(d) => {
                let word = (id / 64) as usize;
                word < d.words.len() && d.words[word] & (1u64 << (id % 64)) != 0
            }
        }
    }

    /// Clears every bit (keeps the allocation and the representation).
    pub fn clear_all(&mut self) {
        match &mut self.repr {
            Repr::Sparse(v) => v.clear(),
            Repr::Dense(d) => {
                d.words.fill(0);
                d.summary.fill(0);
            }
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.len(),
            Repr::Dense(d) => d.words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Sparse(v) => v.is_empty(),
            Repr::Dense(d) => d.summary.iter().all(|s| *s == 0),
        }
    }

    /// ORs `other` into `self`.
    pub fn union_with(&mut self, other: &IdBitSet) {
        match (&mut self.repr, &other.repr) {
            (Repr::Dense(dst), Repr::Dense(src)) => {
                dst.grow(src.words.len());
                for (d, s) in dst.words.iter_mut().zip(src.words.iter()) {
                    *d |= *s;
                }
                // OR only adds bits: every block non-empty in `src` is now
                // non-empty in `dst`, and no `dst` block went empty.
                for (d, s) in dst.summary.iter_mut().zip(src.summary.iter()) {
                    *d |= *s;
                }
            }
            (Repr::Dense(dst), Repr::Sparse(src)) => {
                if let Some(&max) = src.last() {
                    dst.grow((max / 64) as usize + 1);
                    for &id in src {
                        let word = (id / 64) as usize;
                        dst.words[word] |= 1u64 << (id % 64);
                        let block = word / BLOCK_WORDS;
                        dst.summary[block / 64] |= 1u64 << (block % 64);
                    }
                }
            }
            (Repr::Sparse(_), Repr::Dense(_)) => {
                // The union is at least as populated as the dense operand:
                // go dense first, then OR word-wise.
                self.promote();
                self.union_with(other);
            }
            (Repr::Sparse(dst), Repr::Sparse(src)) => {
                if src.is_empty() {
                    return;
                }
                let mut merged = Vec::with_capacity(dst.len() + src.len());
                let (mut i, mut j) = (0, 0);
                while i < dst.len() && j < src.len() {
                    match dst[i].cmp(&src[j]) {
                        std::cmp::Ordering::Less => {
                            merged.push(dst[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(src[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(dst[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&dst[i..]);
                merged.extend_from_slice(&src[j..]);
                let max = *merged.last().expect("src non-empty");
                let promote = dense_is_smaller(merged.len(), max);
                *dst = merged;
                if promote {
                    self.promote();
                }
            }
        }
    }

    /// `|self ∧ other|` without materialising the intersection.
    pub fn intersection_count(&self, other: &IdBitSet) -> usize {
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a
                .words
                .iter()
                .zip(b.words.iter())
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum(),
            (Repr::Sparse(ids), Repr::Dense(_)) => ids.iter().filter(|&&id| other.test(id)).count(),
            (Repr::Dense(_), Repr::Sparse(ids)) => ids.iter().filter(|&&id| self.test(id)).count(),
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                let (mut i, mut j, mut n) = (0, 0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            n += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                n
            }
        }
    }

    /// Iterates over the ids of set bits in `self ∧ other`, ascending.
    ///
    /// Walks whichever operand holds fewer bits and membership-tests the
    /// other, so the cost is `O(min-count × test)` for any representation mix.
    pub fn intersection_ids<'a>(&'a self, other: &'a IdBitSet) -> impl Iterator<Item = u32> + 'a {
        let (walk, probe) = if self.count() <= other.count() {
            (self, other)
        } else {
            (other, self)
        };
        walk.ids().filter(move |id| probe.test(*id))
    }

    /// Iterates over all set ids, ascending.
    pub fn ids(&self) -> IdIter<'_> {
        IdIter {
            inner: match &self.repr {
                Repr::Sparse(v) => IdIterInner::Sparse(v.iter()),
                Repr::Dense(d) => IdIterInner::Dense {
                    words: &d.words,
                    word_index: 0,
                    bits: d.words.first().copied().unwrap_or(0),
                },
            },
        }
    }

    /// Validates the internal invariants: sorted/deduplicated posting list for
    /// the sparse form, `summary bit b set ⟺ block b non-zero` (at the right
    /// summary length) for the dense form. A testing hook for the kernel
    /// property tests; release code never needs it.
    pub fn check_summary_invariant(&self) -> Result<(), String> {
        match &self.repr {
            Repr::Sparse(v) => {
                if v.windows(2).any(|w| w[0] >= w[1]) {
                    return Err("sparse posting list not strictly ascending".into());
                }
                Ok(())
            }
            Repr::Dense(d) => {
                if d.summary.len() != summary_len(d.words.len()) {
                    return Err(format!(
                        "summary length {} != expected {} for {} words",
                        d.summary.len(),
                        summary_len(d.words.len()),
                        d.words.len()
                    ));
                }
                for (b, chunk) in d.words.chunks(BLOCK_WORDS).enumerate() {
                    let nonzero = chunk.iter().any(|w| *w != 0);
                    if d.block_marked(b) != nonzero {
                        return Err(format!(
                            "summary bit {b} is {} but block is {}",
                            d.block_marked(b),
                            if nonzero { "non-zero" } else { "zero" }
                        ));
                    }
                }
                Ok(())
            }
        }
    }
}

/// Content equality, independent of representation.
impl PartialEq for IdBitSet {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => a == b,
            _ => self.count() == other.count() && self.ids().zip(other.ids()).all(|(a, b)| a == b),
        }
    }
}

impl Eq for IdBitSet {}

/// Iterator over the set ids of an [`IdBitSet`], ascending.
#[derive(Debug, Clone)]
pub struct IdIter<'a> {
    inner: IdIterInner<'a>,
}

#[derive(Debug, Clone)]
enum IdIterInner<'a> {
    Sparse(std::slice::Iter<'a, u32>),
    Dense {
        words: &'a [u64],
        word_index: usize,
        bits: u64,
    },
}

impl Iterator for IdIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match &mut self.inner {
            IdIterInner::Sparse(it) => it.next().copied(),
            IdIterInner::Dense {
                words,
                word_index,
                bits,
            } => loop {
                if *bits != 0 {
                    let tz = bits.trailing_zeros();
                    *bits &= *bits - 1;
                    return Some(*word_index as u32 * 64 + tz);
                }
                *word_index += 1;
                if *word_index >= words.len() {
                    return None;
                }
                *bits = words[*word_index];
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_test_roundtrip() {
        let mut s = IdBitSet::new();
        assert!(s.is_empty());
        assert!(!s.test(5));
        s.set(5);
        s.set(64);
        s.set(1_000);
        assert!(s.test(5) && s.test(64) && s.test(1_000));
        assert!(!s.test(6) && !s.test(65) && !s.test(999));
        assert_eq!(s.count(), 3);
        s.clear(64);
        assert!(!s.test(64));
        assert_eq!(s.count(), 2);
        // Clearing an id beyond the allocation is a no-op.
        s.clear(1_000_000);
        assert_eq!(s.count(), 2);
        s.clear_all();
        assert!(s.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let mut a = IdBitSet::with_capacity(200);
        let mut b = IdBitSet::new();
        for id in [1u32, 63, 64, 128] {
            a.set(id);
        }
        for id in [63u32, 64, 300] {
            b.set(id);
        }
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(b.intersection_count(&a), 2);
        assert_eq!(a.intersection_ids(&b).collect::<Vec<_>>(), vec![63, 64]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 5);
        assert_eq!(u.ids().collect::<Vec<_>>(), vec![1, 63, 64, 128, 300]);
    }

    #[test]
    fn differently_sized_sets_are_zero_padded() {
        let mut small = IdBitSet::new();
        small.set(3);
        let mut big = IdBitSet::new();
        big.set(3);
        big.set(10_000);
        assert_eq!(small.intersection_count(&big), 1);
        assert_eq!(big.intersection_count(&small), 1);
        let mut u = small.clone();
        u.union_with(&big);
        assert_eq!(u.count(), 2);
        assert!(u.test(10_000));
    }

    #[test]
    fn promotion_happens_at_the_memory_crossover() {
        // Widely spread ids: the posting list stays smaller than the dense
        // form and the set must remain sparse.
        let mut spread = IdBitSet::new();
        for i in 0..100u32 {
            spread.set(i * 10_000);
        }
        assert!(!spread.is_dense());
        assert_eq!(spread.count(), 100);

        // Tightly packed ids: once 32 × len exceeds max_id + 1 the dense form
        // is smaller, so the set promotes itself.
        let mut packed = IdBitSet::new();
        for i in 0..100u32 {
            packed.set(i);
        }
        assert!(packed.is_dense());
        assert_eq!(packed.count(), 100);
        assert_eq!(
            packed.ids().collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn equality_is_representation_independent() {
        let mut sparse = IdBitSet::new();
        let mut dense = IdBitSet::with_capacity(100_000);
        for id in [7u32, 80_000, 99_999] {
            sparse.set(id);
            dense.set(id);
        }
        assert!(!sparse.is_dense());
        assert!(dense.is_dense());
        assert_eq!(sparse, dense);
        assert_eq!(dense, sparse);
        dense.clear(7);
        assert_ne!(sparse, dense);
        // Empty sets are equal regardless of representation.
        assert_eq!(IdBitSet::new(), IdBitSet::with_capacity(1_000));
    }

    #[test]
    fn mixed_representation_unions_and_intersections() {
        let mut sparse = IdBitSet::new();
        for id in [5u32, 70, 100_000] {
            sparse.set(id);
        }
        let mut dense = IdBitSet::with_capacity(128);
        for id in [5u32, 64, 70] {
            dense.set(id);
        }
        assert_eq!(sparse.intersection_count(&dense), 2);
        assert_eq!(dense.intersection_count(&sparse), 2);
        assert_eq!(
            sparse.intersection_ids(&dense).collect::<Vec<_>>(),
            vec![5, 70]
        );

        // Sparse ∪ dense promotes, dense ∪ sparse stays dense.
        let mut u1 = sparse.clone();
        u1.union_with(&dense);
        assert!(u1.is_dense());
        assert_eq!(u1.ids().collect::<Vec<_>>(), vec![5, 64, 70, 100_000]);
        let mut u2 = dense.clone();
        u2.union_with(&sparse);
        assert_eq!(u1, u2);
    }

    #[test]
    fn sparse_sets_use_less_memory_than_dense_at_low_density() {
        // One prefix-per-link posting at 1M-id scale: a dense bitset would
        // burn 125 KB; the posting list stays at a few hundred bytes.
        let mut s = IdBitSet::new();
        for i in 0..50u32 {
            s.set(900_000 + i * 100);
        }
        assert!(!s.is_dense());
        assert!(s.heap_bytes() < 1_024, "got {} bytes", s.heap_bytes());
        let dense_cost = (950_000usize).div_ceil(64) * 8;
        assert!(s.heap_bytes() * 100 < dense_cost);
    }

    #[test]
    fn summary_tracks_every_mutation() {
        let mut s = IdBitSet::with_capacity(10 * BLOCK_BITS);
        s.check_summary_invariant().expect("fresh dense set");
        // One bit in block 0, one in block 3.
        s.set(7);
        s.set(3 * BLOCK_BITS as u32 + 100);
        s.check_summary_invariant().expect("after sets");
        let Parts::Dense(d) = s.parts() else {
            panic!("with_capacity must be dense")
        };
        assert!(d.block_marked(0));
        assert!(!d.block_marked(1));
        assert!(!d.block_marked(2));
        assert!(d.block_marked(3));
        // Clearing the only bit of a block clears its summary bit; clearing
        // one of two bits in the same block does not.
        s.set(8);
        s.clear(7);
        s.check_summary_invariant().expect("after partial clear");
        let Parts::Dense(d) = s.parts() else {
            unreachable!()
        };
        assert!(d.block_marked(0), "id 8 still holds block 0");
        s.clear(8);
        s.check_summary_invariant().expect("after full clear");
        let Parts::Dense(d) = s.parts() else {
            unreachable!()
        };
        assert!(!d.block_marked(0));
        assert!(d.block_marked(3));
        s.clear_all();
        s.check_summary_invariant().expect("after clear_all");
        assert!(s.is_empty());
    }

    #[test]
    fn summary_survives_promotion_and_unions() {
        // Promotion builds a correct summary from the posting list.
        let mut s = IdBitSet::new();
        for i in 0..200u32 {
            s.set(i * 3);
        }
        assert!(s.is_dense());
        s.check_summary_invariant().expect("after promotion");

        // Dense ∪ dense merges summaries; dense ∪ sparse marks new blocks.
        let mut far = IdBitSet::with_capacity(64 * BLOCK_BITS);
        far.set(50 * BLOCK_BITS as u32);
        s.union_with(&far);
        s.check_summary_invariant().expect("after dense union");
        let mut sparse = IdBitSet::new();
        sparse.set(70 * BLOCK_BITS as u32 + 1);
        s.union_with(&sparse);
        s.check_summary_invariant().expect("after sparse union");
        let Parts::Dense(d) = s.parts() else {
            unreachable!()
        };
        assert!(d.block_marked(50));
        assert!(d.block_marked(70));
        assert!(!d.block_marked(40));
    }

    #[test]
    fn is_empty_reads_the_summary() {
        let mut s = IdBitSet::with_capacity(100_000);
        assert!(s.is_empty());
        s.set(99_999);
        assert!(!s.is_empty());
        s.clear(99_999);
        assert!(s.is_empty(), "clear must unmark the summary block");
    }
}
