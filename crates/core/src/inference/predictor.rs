//! Translation of inferred links into predicted prefixes (§3.1, §4.2).
//!
//! SWIFT is deliberately conservative: because BGP messages cannot tell which
//! subset of the prefixes crossing a failed link actually lost connectivity,
//! *all* prefixes whose current path traverses an inferred link are rerouted.

use crate::inference::aggregate::InferredLinks;
use crate::inference::counters::LinkCounters;
use swift_bgp::{Prefix, PrefixSet};

/// The prefix-level view of an inference.
#[derive(Debug, Clone, Default)]
pub struct Prediction {
    /// Prefixes whose pre-burst path traversed an inferred link and that were
    /// already withdrawn when the inference was made.
    pub already_withdrawn: PrefixSet,
    /// Prefixes whose current path traverses an inferred link and that are
    /// still routed — these are the prefixes SWIFT reroutes (the "predicted
    /// future withdrawals" of §6.3).
    pub predicted: PrefixSet,
}

impl Prediction {
    /// Every prefix the inference marks as affected (withdrawn or predicted).
    pub fn affected(&self) -> PrefixSet {
        self.already_withdrawn.union(&self.predicted)
    }

    /// Number of prefixes that would be rerouted.
    pub fn rerouted_count(&self) -> usize {
        self.predicted.len()
    }

    /// Total number of prefixes the inference claims are affected — the value
    /// the history model compares against its plausibility cap.
    pub fn total_affected(&self) -> usize {
        self.already_withdrawn.len() + self.predicted.len()
    }
}

/// Computes the prediction for `links` from the current per-session counters.
///
/// Runs on the inverted prefix-bitset index: the affected prefixes are read
/// off the per-link bitsets instead of scanning every RIB entry's path.
pub fn predict(counters: &LinkCounters, links: &InferredLinks) -> Prediction {
    if links.is_empty() {
        return Prediction::default();
    }
    let (already_withdrawn, predicted) = counters.crossing_prefixes(&links.links);
    Prediction {
        already_withdrawn,
        predicted,
    }
}

/// Reference implementation of [`predict`] by full scan over the tracked
/// prefixes — kept for the property tests and the `exp_scale` baseline.
pub fn predict_scan(counters: &LinkCounters, links: &InferredLinks) -> Prediction {
    if links.is_empty() {
        return Prediction::default();
    }
    let already_withdrawn: PrefixSet = counters
        .withdrawn()
        .filter(|(_, path)| path.crosses_any(&links.links))
        .map(|(p, _)| *p)
        .collect();
    let predicted: PrefixSet = counters
        .routed()
        .filter(|(_, path)| path.crosses_any(&links.links))
        .map(|(p, _)| *p)
        .collect();
    Prediction {
        already_withdrawn,
        predicted,
    }
}

/// Convenience: the predicted prefixes as a vector (sorted).
pub fn predicted_prefixes(counters: &LinkCounters, links: &InferredLinks) -> Vec<Prefix> {
    predict(counters, links).predicted.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InferenceConfig;
    use crate::inference::aggregate::infer_links;
    use swift_bgp::AsPath;

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    fn counters() -> LinkCounters {
        let mut rib: Vec<(Prefix, AsPath)> = Vec::new();
        // 10 prefixes of AS 6, 10 of AS 7, 10 of AS 8 beyond link (5,6);
        // 5 prefixes of AS 5; 5 prefixes elsewhere.
        for i in 0..10 {
            rib.push((p(i), AsPath::new([2u32, 5, 6])));
        }
        for i in 10..20 {
            rib.push((p(i), AsPath::new([2u32, 5, 6, 7])));
        }
        for i in 20..30 {
            rib.push((p(i), AsPath::new([2u32, 5, 6, 8])));
        }
        for i in 30..35 {
            rib.push((p(i), AsPath::new([2u32, 5])));
        }
        for i in 35..40 {
            rib.push((p(i), AsPath::new([2u32, 9])));
        }
        LinkCounters::from_rib(rib.iter().map(|(a, b)| (a, b)))
    }

    #[test]
    fn prediction_splits_withdrawn_and_future() {
        let mut c = counters();
        // The burst has delivered withdrawals for the AS 6 prefixes only so far.
        for i in 0..10 {
            c.on_withdraw(p(i));
        }
        let inferred = infer_links(&c, &InferenceConfig::default());
        assert_eq!(inferred.links, vec![swift_bgp::AsLink::new(5, 6)]);
        let pred = predict(&c, &inferred);
        assert_eq!(pred.already_withdrawn.len(), 10);
        assert_eq!(pred.predicted.len(), 20, "AS 7 + AS 8 prefixes predicted");
        assert_eq!(pred.total_affected(), 30);
        assert_eq!(pred.rerouted_count(), 20);
        assert_eq!(pred.affected().len(), 30);
        // Unrelated prefixes are not predicted.
        assert!(!pred.predicted.contains(&p(36)));
        assert!(!pred.predicted.contains(&p(31)));
        // The prediction is exactly the still-routed prefixes crossing (5,6).
        let as_vec = predicted_prefixes(&c, &inferred);
        assert_eq!(as_vec.len(), 20);
        assert!(as_vec.iter().all(|q| (10..30).contains(&{
            // recover index from the deterministic /24 numbering
            (q.addr() - Prefix::nth_slash24(0).addr()) >> 8
        })));
    }

    #[test]
    fn empty_inference_predicts_nothing() {
        let c = counters();
        let inferred = infer_links(&c, &InferenceConfig::default());
        assert!(inferred.is_empty());
        let pred = predict(&c, &inferred);
        assert_eq!(pred.total_affected(), 0);
        assert!(pred.affected().is_empty());
    }

    #[test]
    fn indexed_prediction_matches_scan_reference() {
        let mut c = counters();
        for i in 0..10 {
            c.on_withdraw(p(i));
        }
        for i in 10..15 {
            c.on_announce(p(i), AsPath::new([2u32, 5, 3, 6, 7]));
        }
        let inferred = infer_links(&c, &InferenceConfig::default());
        let fast = predict(&c, &inferred);
        let slow = predict_scan(&c, &inferred);
        assert_eq!(fast.already_withdrawn, slow.already_withdrawn);
        assert_eq!(fast.predicted, slow.predicted);
    }

    #[test]
    fn prediction_tracks_reannouncements() {
        let mut c = counters();
        for i in 0..10 {
            c.on_withdraw(p(i));
        }
        // AS 7 prefixes are re-announced over a path avoiding (5,6): they must
        // no longer be predicted.
        for i in 10..20 {
            c.on_announce(p(i), AsPath::new([2u32, 5, 3, 6, 7]));
        }
        let inferred = infer_links(&c, &InferenceConfig::default());
        let pred = predict(&c, &inferred);
        assert_eq!(pred.predicted.len(), 10, "only the AS 8 prefixes remain");
    }
}
