//! Selection of the inferred link set (§4.2).
//!
//! Two mechanisms from the paper are implemented here:
//!
//! * **Maximum-FS tie handling** — when the failed link cannot be univocally
//!   determined, SWIFT returns *all* links with the maximum fit score.
//! * **Concurrent-failure aggregation** — to cover router failures that take
//!   down several adjacent links at once, links sharing a common endpoint are
//!   greedily aggregated (highest FS first) for as long as the fit score of the
//!   aggregate does not decrease.

use crate::config::InferenceConfig;
use crate::inference::counters::LinkCounters;
use crate::inference::fit_score::{
    rank_links, score_from_counts, score_link_set, score_link_set_materialized,
    score_link_set_scan, Score,
};
use swift_bgp::{AsLink, Asn};

/// The result of the link-selection step.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredLinks {
    /// The inferred links, highest fit score first.
    pub links: Vec<AsLink>,
    /// The score of the returned set (aggregated definition for multi-link
    /// results, single-link score otherwise).
    pub score: Score,
}

impl InferredLinks {
    /// Returns `true` if nothing could be inferred (no withdrawals yet).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The ASes appearing as an endpoint of any inferred link. Backup paths
    /// must avoid all of them (§4.2 safety rule).
    pub fn endpoint_ases(&self) -> Vec<Asn> {
        let mut ases: Vec<Asn> = self.links.iter().flat_map(|l| [l.from, l.to]).collect();
        ases.sort();
        ases.dedup();
        ases
    }

    /// The endpoint shared by every inferred link, if the set was produced by
    /// common-endpoint aggregation (single-link sets have no common endpoint
    /// requirement and return `None` unless trivially shared).
    pub fn common_endpoint(&self) -> Option<Asn> {
        let first = self.links.first()?;
        [first.from, first.to]
            .into_iter()
            .find(|&candidate| self.links.iter().all(|l| l.has_endpoint(candidate)))
    }
}

/// Selects the inferred link set from the current counters.
pub fn infer_links(counters: &LinkCounters, config: &InferenceConfig) -> InferredLinks {
    infer_links_ranked(counters, &rank_links(counters, config), config)
}

/// Selects the inferred link set from a precomputed ranking (as produced by
/// [`rank_links`] or the engine's incremental
/// [`crate::inference::fit_score::LinkRanker`]), scoring candidate sets
/// through the inverted prefix-bitset index.
pub fn infer_links_ranked(
    counters: &LinkCounters,
    ranking: &[(AsLink, Score)],
    config: &InferenceConfig,
) -> InferredLinks {
    infer_with_scorer(counters, ranking, config, &mut SetScorer::Fused)
}

/// Reference implementation of [`infer_links`] whose set scores come from the
/// full-RIB scan baseline ([`score_link_set_scan`]) — the pre-index behaviour,
/// kept for the property tests and the `exp_scale` speedup measurements.
pub fn infer_links_scan(counters: &LinkCounters, config: &InferenceConfig) -> InferredLinks {
    infer_with_scorer(
        counters,
        &rank_links(counters, config),
        config,
        &mut SetScorer::rescore(score_link_set_scan),
    )
}

/// Reference implementation of [`infer_links`] whose greedy chain re-unions
/// every trial set from scratch through the materialised-union path — the
/// pre-kernel O(k²) behaviour, kept for the equivalence property tests and
/// as the baseline of the `bench_inference` greedy-chain groups.
pub fn infer_links_materialized(
    counters: &LinkCounters,
    config: &InferenceConfig,
) -> InferredLinks {
    infer_with_scorer(
        counters,
        &rank_links(counters, config),
        config,
        &mut SetScorer::rescore(score_link_set_materialized),
    )
}

/// How [`infer_with_scorer`] scores the growing greedy aggregate.
///
/// The fused variant keeps a *running union* of the current aggregate in the
/// counters' kernel scratch: seeding costs one pass over the seed's crossing
/// set, each trial fuses `[running ∪ candidate]` in one pass, and accepting a
/// candidate ORs it into the running words — O(1) passes per candidate, so a
/// greedy chain over k candidates is O(k) passes instead of the O(k²) the
/// rescoring references pay by re-unioning the explicit set each trial.
enum SetScorer {
    /// Incremental scoring over the scratch-resident running union.
    Fused,
    /// From-scratch rescoring of the explicit trial set through `f` — the
    /// reference shape (scan or materialized union) for tests and benches.
    Rescore {
        f: fn(&LinkCounters, &[AsLink], &InferenceConfig) -> Score,
        set: Vec<AsLink>,
    },
}

impl SetScorer {
    fn rescore(f: fn(&LinkCounters, &[AsLink], &InferenceConfig) -> Score) -> SetScorer {
        SetScorer::Rescore { f, set: Vec::new() }
    }

    /// Resets the aggregate to `{seed}` and returns its score.
    fn seed(&mut self, c: &LinkCounters, cfg: &InferenceConfig, seed: AsLink) -> Score {
        match self {
            SetScorer::Fused => {
                let (w, p) = c.agg_seed(&seed);
                score_from_counts(w, p, c.total_withdrawals(), cfg)
            }
            SetScorer::Rescore { f, set } => {
                set.clear();
                set.push(seed);
                f(c, set, cfg)
            }
        }
    }

    /// Score of the current aggregate extended by `candidate`, uncommitted.
    fn trial(&mut self, c: &LinkCounters, cfg: &InferenceConfig, candidate: AsLink) -> Score {
        match self {
            SetScorer::Fused => {
                let (w, p) = c.agg_trial(&candidate);
                score_from_counts(w, p, c.total_withdrawals(), cfg)
            }
            SetScorer::Rescore { f, set } => {
                set.push(candidate);
                let s = f(c, set, cfg);
                set.pop();
                s
            }
        }
    }

    /// Commits the last trialled `candidate` into the aggregate.
    fn accept(&mut self, c: &LinkCounters, candidate: AsLink) {
        match self {
            SetScorer::Fused => c.agg_accept(&candidate),
            SetScorer::Rescore { set, .. } => set.push(candidate),
        }
    }

    /// Scores an arbitrary link set (the final max-set ∪ aggregate union).
    fn score_set(&mut self, c: &LinkCounters, cfg: &InferenceConfig, links: &[AsLink]) -> Score {
        match self {
            SetScorer::Fused => score_link_set(c, links, cfg),
            SetScorer::Rescore { f, .. } => f(c, links, cfg),
        }
    }
}

fn infer_with_scorer(
    counters: &LinkCounters,
    ranking: &[(AsLink, Score)],
    config: &InferenceConfig,
    scorer: &mut SetScorer,
) -> InferredLinks {
    let Some((top_link, top_score)) = ranking.first().copied() else {
        return InferredLinks {
            links: Vec::with_capacity(0),
            score: Score {
                ws: 0.0,
                ps: 0.0,
                fs: 0.0,
            },
        };
    };

    // Links within tolerance of the maximum fit score are a prefix of the
    // ranking (it is sorted by decreasing FS).
    let max_len = ranking
        .iter()
        .take_while(|(_, s)| s.fs >= top_score.fs - config.fs_tolerance)
        .count();

    // Greedy common-endpoint aggregation starting from the top link (covers
    // router failures that take down several adjacent links): links are tried
    // in decreasing fit-score order; a candidate is added only if (a) the whole
    // aggregate still shares one common endpoint, and (b) the fit score of the
    // aggregate strictly increases ("until the FS … does not increase anymore",
    // §4.2). Unaffected sibling links fail (b) because their still-routed
    // prefixes dilute the path share; siblings whose withdrawals are already
    // explained by the seed add nothing and are left to the max-FS tie rule.
    // The aggregate vector is part of the result; the per-trial scoring state
    // lives in the scorer (running union or reusable set buffer).
    let mut aggregate: Vec<AsLink> = Vec::with_capacity(4);
    aggregate.push(top_link);
    let mut aggregate_score = scorer.seed(counters, config, top_link);
    // An aggregate's shared endpoints are at most the two of its seed.
    let mut shared: (Option<Asn>, Option<Asn>) = (Some(top_link.from), Some(top_link.to));
    for (candidate, _) in ranking.iter().skip(1) {
        if aggregate.contains(candidate) {
            continue;
        }
        let still_a = shared.0.filter(|e| candidate.has_endpoint(*e));
        let still_b = shared.1.filter(|e| candidate.has_endpoint(*e));
        if still_a.is_none() && still_b.is_none() {
            continue;
        }
        let trial_score = scorer.trial(counters, config, *candidate);
        if trial_score.fs > aggregate_score.fs + config.fs_tolerance {
            scorer.accept(counters, *candidate);
            aggregate.push(*candidate);
            aggregate_score = trial_score;
            shared = (still_a, still_b);
        }
    }

    // The returned set is the union of the maximum-FS ties and the aggregation
    // result; deterministic order: aggregation seed first, then by FS rank.
    let links: Vec<AsLink> = ranking
        .iter()
        .enumerate()
        .filter(|(i, (l, _))| *i < max_len || aggregate.contains(l))
        .map(|(_, (l, _))| *l)
        .collect();

    let score = if links.len() == 1 {
        top_score
    } else {
        scorer.score_set(counters, config, &links)
    };
    InferredLinks { links, score }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_bgp::{AsPath, Prefix};

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    fn seed_rib(entries: &[(&[u32], usize)]) -> LinkCounters {
        let mut rib: Vec<(Prefix, AsPath)> = Vec::new();
        let mut idx = 0;
        for (hops, count) in entries {
            for _ in 0..*count {
                rib.push((p(idx), AsPath::new(hops.iter().copied())));
                idx += 1;
            }
        }
        LinkCounters::from_rib(rib.iter().map(|(a, b)| (a, b)))
    }

    #[test]
    fn single_clear_failure_is_inferred_alone() {
        // Session RIB: 20 prefixes beyond (5,6), plus prefixes originated by
        // AS 5 and AS 2 themselves (the Theorem 4.1 condition that every AS
        // injects a prefix on each adjacent link). Withdrawing the 20 prefixes
        // beyond (5,6) must single out (5,6): the upstream links (2,5) keep
        // AS 5's surviving prefixes, so their path share stays below 1.
        let mut c = seed_rib(&[(&[2, 5, 6], 20), (&[2, 5], 5), (&[2, 9], 20)]);
        for i in 0..20 {
            c.on_withdraw(p(i));
        }
        let inferred = infer_links(&c, &InferenceConfig::default());
        assert_eq!(inferred.links, vec![AsLink::new(5, 6)]);
        assert!((inferred.score.fs - 1.0).abs() < 1e-9);
        assert_eq!(inferred.endpoint_ases(), vec![Asn(5), Asn(6)]);
    }

    #[test]
    fn ambiguous_failure_returns_all_max_fs_links() {
        // Every withdrawn prefix crosses both (5,6) and (6,8) and nothing else
        // distinguishes them: both are returned (§4.2 conservative strategy).
        let mut c = seed_rib(&[(&[5, 6, 8], 10), (&[5, 7], 5)]);
        for i in 0..10 {
            c.on_withdraw(p(i));
        }
        let inferred = infer_links(&c, &InferenceConfig::default());
        assert!(inferred.links.contains(&AsLink::new(5, 6)));
        assert!(inferred.links.contains(&AsLink::new(6, 8)));
        assert_eq!(inferred.common_endpoint(), Some(Asn(6)));
    }

    #[test]
    fn router_failure_aggregates_links_with_common_endpoint() {
        // AS 6 fails entirely. The vantage reaches AS 7 through (2 5 6 7) and
        // AS 8 through (4 6 8), so no single link explains all withdrawals:
        // the greedy aggregation must combine links sharing endpoint 6.
        // AS 5 and AS 4 keep their own prefixes alive, so the upstream links
        // (2,5) and (4,9) never join the inferred set.
        let mut c = seed_rib(&[
            (&[2, 5, 6, 7], 10),
            (&[4, 6, 8], 10),
            (&[2, 5], 5),
            (&[4, 9], 5),
        ]);
        for i in 0..20 {
            c.on_withdraw(p(i));
        }
        let inferred = infer_links(&c, &InferenceConfig::default());
        assert!(inferred.links.contains(&AsLink::new(5, 6)));
        assert!(inferred.links.contains(&AsLink::new(6, 7)));
        assert!(inferred.links.contains(&AsLink::new(6, 8)));
        assert!(inferred.links.contains(&AsLink::new(4, 6)));
        assert_eq!(inferred.common_endpoint(), Some(Asn(6)));
        // Healthy links are never included.
        assert!(!inferred.links.contains(&AsLink::new(2, 5)));
        assert!(!inferred.links.contains(&AsLink::new(4, 9)));
        // The aggregate score reflects the union: every withdrawal explained.
        assert!((inferred.score.ws - 1.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_strictly_improves_over_the_seed() {
        // Same router-failure scenario reduced to two disjoint downstream
        // paths: the seed alone explains half the withdrawals, the aggregate
        // explains all of them.
        let mut c = seed_rib(&[
            (&[2, 5, 6, 7], 10),
            (&[4, 6, 8], 10),
            (&[2, 5], 5),
            (&[4, 9], 5),
        ]);
        for i in 0..20 {
            c.on_withdraw(p(i));
        }
        let cfg = InferenceConfig::default();
        let inferred = infer_links(&c, &cfg);
        let seed_only = crate::inference::fit_score::score_link_set(&c, &[AsLink::new(4, 6)], &cfg);
        assert!(inferred.score.fs > seed_only.fs);
    }

    #[test]
    fn aggregation_does_not_swallow_unaffected_siblings() {
        // Only (6,8) fails; (6,7) keeps all its prefixes. Aggregating (6,7)
        // would lower the fit score, so it must not be included.
        let mut c = seed_rib(&[
            (&[2, 5, 6, 7], 10),
            (&[2, 5, 6, 8], 10),
            (&[2, 5], 5),
            (&[2, 5, 6], 5),
        ]);
        for i in 10..20 {
            c.on_withdraw(p(i));
        }
        let inferred = infer_links(&c, &InferenceConfig::default());
        assert!(inferred.links.contains(&AsLink::new(6, 8)));
        assert!(!inferred.links.contains(&AsLink::new(6, 7)));
        assert!(!inferred.links.contains(&AsLink::new(2, 5)));
    }

    #[test]
    fn indexed_and_scan_inference_agree() {
        // Router-failure scenario with noise: the indexed scorer and the scan
        // baseline must select identical link sets with identical scores.
        let mut c = seed_rib(&[
            (&[2, 5, 6, 7], 10),
            (&[4, 6, 8], 10),
            (&[2, 5], 5),
            (&[4, 9], 5),
        ]);
        for i in 0..20 {
            c.on_withdraw(p(i));
        }
        c.on_withdraw(p(21)); // one (2,5) prefix: noise
        let cfg = InferenceConfig::default();
        let fast = infer_links(&c, &cfg);
        let slow = infer_links_scan(&c, &cfg);
        assert_eq!(fast, slow);
        // And the ranked entry point matches too.
        let ranking = crate::inference::fit_score::rank_links(&c, &cfg);
        assert_eq!(infer_links_ranked(&c, &ranking, &cfg), fast);
    }

    #[test]
    fn empty_counters_infer_nothing() {
        let c = LinkCounters::new();
        let inferred = infer_links(&c, &InferenceConfig::default());
        assert!(inferred.is_empty());
        assert!(inferred.endpoint_ases().is_empty());
        assert_eq!(inferred.common_endpoint(), None);
    }

    #[test]
    fn noise_does_not_displace_the_failed_link() {
        // The real failure withdraws 50 prefixes over (5,6); 3 noise
        // withdrawals hit prefixes routed over (2,9).
        let mut c = seed_rib(&[(&[2, 5, 6], 50), (&[2, 5], 5), (&[2, 9], 30)]);
        for i in 0..50 {
            c.on_withdraw(p(i));
        }
        // Noise: withdrawals of prefixes routed over the unrelated (2,9) link
        // (indices 55.. are the (2,9) group).
        for i in 60..63 {
            c.on_withdraw(p(i));
        }
        let inferred = infer_links(&c, &InferenceConfig::default());
        assert_eq!(inferred.links[0], AsLink::new(5, 6));
        assert!(!inferred.links.contains(&AsLink::new(2, 9)));
        assert!(!inferred.links.contains(&AsLink::new(2, 5)));
    }
}
