//! The per-session SWIFT inference engine (§4).
//!
//! One [`InferenceEngine`] consumes the elementary per-prefix events of one BGP
//! session. It keeps the session's routing state, detects bursts, and — every
//! [`triggering threshold`](crate::config::InferenceConfig::triggering_threshold)
//! withdrawals — runs the fit-score inference. With the history model enabled,
//! an inference is only *accepted* (returned to the caller, who then installs
//! reroute rules) if the predicted burst size is plausible for the amount of
//! information received so far; otherwise the engine waits for the next
//! trigger, and always accepts once the force threshold is reached.
//!
//! # Burst lifecycle
//!
//! Counters are re-seeded at every burst start (§4.1): when the detector
//! reports [`BurstEvent::Started`], the engine resets `W` via
//! [`LinkCounters::start_burst`] and replays the withdrawals of the detection
//! window (mirrored with their prefixes in [`InferenceEngine::recent`]) so
//! the new burst starts from exactly the per-burst state the paper assumes —
//! burst N+1's withdrawal shares are never polluted by burst N's history.
//! Bursts also close on withdrawal-only streams: the detector checks the stop
//! threshold on withdrawals too ([`BurstEvent::Ended`]), so a later burst with
//! no interleaved announcements still gets its own inference.
//!
//! # Hot path
//!
//! An inference attempt ranks candidates through the incrementally maintained
//! [`LinkRanker`] (fed by the counters' dirty-link feed) and scores link sets
//! through the inverted prefix-bitset index — no full-RIB scans.

use crate::config::InferenceConfig;
use crate::inference::aggregate::{infer_links, infer_links_ranked, InferredLinks};
use crate::inference::burst_detect::{BurstDetector, BurstEvent};
use crate::inference::counters::LinkCounters;
use crate::inference::fit_score::{LinkRanker, Score};
use crate::inference::predictor::{predict, Prediction};
use std::collections::VecDeque;
use swift_bgp::{AsPath, ElementaryEvent, InternedRib, Prefix, Timestamp};

/// An accepted inference: the output SWIFT acts upon.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Time at which the inference was made (timestamp of the triggering
    /// event).
    pub time: Timestamp,
    /// Withdrawals received in the burst up to this point.
    pub withdrawals_seen: usize,
    /// The inferred failed links and their aggregate score.
    pub links: InferredLinks,
    /// The prefix-level prediction.
    pub prediction: Prediction,
}

impl InferenceResult {
    /// The fit score of the inferred link set.
    pub fn score(&self) -> Score {
        self.links.score
    }
}

/// Why the engine did or did not return an inference for an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStatus {
    /// No burst is ongoing.
    Idle,
    /// A burst is ongoing but the next trigger has not been reached.
    WaitingForTrigger,
    /// An inference was attempted but rejected by the history model.
    RejectedByHistory,
    /// This event's inference was accepted (see the accompanying result).
    Accepted,
    /// An inference was already accepted earlier in this burst: the router has
    /// rerouted and is waiting for BGP to converge, so further withdrawals of
    /// the same burst change nothing. Distinct from [`EngineStatus::Accepted`]
    /// so callers can tell the accepting event apart from its aftermath.
    AlreadyAccepted,
}

/// Per-session inference engine.
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    config: InferenceConfig,
    counters: LinkCounters,
    detector: BurstDetector,
    /// Incrementally maintained candidate ranking for the current burst.
    ranker: LinkRanker,
    /// Mirror of the detector's sliding window with prefixes attached, so a
    /// burst start can replay the window into the freshly seeded counters.
    recent: VecDeque<(Timestamp, Prefix)>,
    /// Withdrawals seen in the current burst at the time of the last attempt.
    last_attempt_withdrawals: usize,
    /// Set once an inference has been accepted for the current burst.
    accepted: Option<InferenceResult>,
    /// Number of inference attempts made in the current burst.
    attempts: usize,
}

impl InferenceEngine {
    /// Creates an engine seeded with the session's current Adj-RIB-In.
    pub fn new<'a, I>(config: InferenceConfig, rib: I) -> Self
    where
        I: IntoIterator<Item = (&'a Prefix, &'a AsPath)>,
    {
        let counters = LinkCounters::from_rib(rib);
        Self::with_counters(config, counters)
    }

    /// Creates an engine seeded from an interned RIB, sharing its path
    /// storage (no per-prefix path clones).
    pub fn from_interned(config: InferenceConfig, rib: &InternedRib) -> Self {
        let counters = LinkCounters::from_interned(rib);
        Self::with_counters(config, counters)
    }

    fn with_counters(config: InferenceConfig, counters: LinkCounters) -> Self {
        let detector = BurstDetector::new(&config);
        InferenceEngine {
            config,
            counters,
            detector,
            ranker: LinkRanker::new(),
            recent: VecDeque::new(),
            last_attempt_withdrawals: 0,
            accepted: None,
            attempts: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &InferenceConfig {
        &self.config
    }

    /// The current counters (exposed for metrics and debugging).
    pub fn counters(&self) -> &LinkCounters {
        &self.counters
    }

    /// Drains the kernel dispatch/scratch statistics accumulated since the
    /// last call (see [`crate::inference::KernelStats`]). The runtime drains
    /// these per event into the telemetry registry.
    pub fn take_kernel_stats(&self) -> crate::inference::KernelStats {
        self.counters.take_kernel_stats()
    }

    /// The burst detector state.
    pub fn in_burst(&self) -> bool {
        self.detector.in_burst()
    }

    /// Withdrawals received since the current burst started.
    pub fn withdrawals_in_burst(&self) -> usize {
        self.detector.withdrawals_in_burst()
    }

    /// The inference accepted for the current burst, if any.
    pub fn accepted(&self) -> Option<&InferenceResult> {
        self.accepted.as_ref()
    }

    /// Number of inference attempts made during the current burst.
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Processes one per-prefix event. Returns the accepted inference if this
    /// event triggered one.
    pub fn process(&mut self, event: &ElementaryEvent) -> (EngineStatus, Option<InferenceResult>) {
        match event {
            ElementaryEvent::Announce {
                timestamp,
                prefix,
                attrs,
            } => {
                self.counters.on_announce_path(*prefix, &attrs.as_path);
                if self.detector.on_tick(*timestamp) {
                    self.reset_burst_state();
                }
                (self.idle_status(), None)
            }
            ElementaryEvent::Withdraw { timestamp, prefix } => {
                self.buffer_withdrawal(*timestamp, *prefix);
                self.counters.on_withdraw(*prefix);
                match self.detector.on_withdrawal(*timestamp) {
                    BurstEvent::None => (EngineStatus::Idle, None),
                    BurstEvent::Ended => {
                        // The previous burst drained before this withdrawal
                        // arrived (withdrawal-only stream): close it so the
                        // next burst starts clean.
                        self.reset_burst_state();
                        (EngineStatus::Idle, None)
                    }
                    BurstEvent::Started(_) => {
                        self.reset_burst_state();
                        // §4.1: seed the per-burst counters at burst start,
                        // then replay the detection window — those
                        // withdrawals belong to the new burst.
                        let window: Vec<Prefix> = self.recent.iter().map(|(_, p)| *p).collect();
                        self.counters.start_burst(window);
                        self.maybe_infer(*timestamp)
                    }
                    BurstEvent::Ongoing => self.maybe_infer(*timestamp),
                }
            }
        }
    }

    /// Processes a whole stream of events, returning every accepted inference
    /// (at most one per burst) in order.
    pub fn process_all<'a, I>(&mut self, events: I) -> Vec<InferenceResult>
    where
        I: IntoIterator<Item = &'a ElementaryEvent>,
    {
        let mut results = Vec::new();
        for ev in events {
            if let (_, Some(res)) = self.process(ev) {
                results.push(res);
            }
        }
        results
    }

    /// Forces an inference with the current counters, bypassing burst
    /// detection and the history model (used to evaluate "end of burst"
    /// accuracy, Theorem 4.1).
    ///
    /// Inside a burst the candidate ranking comes from the incrementally
    /// maintained [`LinkRanker`] — the same hot path the triggering attempts
    /// use, so a forced attempt costs `O(burst candidates)` instead of a walk
    /// over every link the session has ever seen. Outside a burst (where the
    /// ranker is reset and the counters may still carry a closed burst's
    /// state) it falls back to the from-scratch
    /// [`rank_links`](crate::inference::fit_score::rank_links) reference
    /// baseline; both paths return identical results.
    pub fn force_infer(&mut self, time: Timestamp) -> InferenceResult {
        let links = if self.detector.in_burst() {
            let dirty = self.counters.take_dirty();
            self.ranker.update(dirty, &self.counters);
            let ranking = self.ranker.ranking(&self.counters, &self.config);
            infer_links_ranked(&self.counters, &ranking, &self.config)
        } else {
            infer_links(&self.counters, &self.config)
        };
        let prediction = predict(&self.counters, &links);
        InferenceResult {
            time,
            withdrawals_seen: self.counters.total_withdrawals(),
            links,
            prediction,
        }
    }

    /// Keeps `recent` an exact mirror of the detector's sliding window
    /// (same push order, same eviction cutoff), with prefixes attached.
    fn buffer_withdrawal(&mut self, t: Timestamp, prefix: Prefix) {
        self.recent.push_back((t, prefix));
        let cutoff = t.saturating_sub(self.config.burst_window);
        while let Some((front, _)) = self.recent.front() {
            if *front < cutoff {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    fn idle_status(&self) -> EngineStatus {
        if self.detector.in_burst() {
            EngineStatus::WaitingForTrigger
        } else {
            EngineStatus::Idle
        }
    }

    fn reset_burst_state(&mut self) {
        self.last_attempt_withdrawals = 0;
        self.accepted = None;
        self.attempts = 0;
        self.ranker.reset();
    }

    fn maybe_infer(&mut self, now: Timestamp) -> (EngineStatus, Option<InferenceResult>) {
        // Only one accepted inference per burst: afterwards the SWIFTED router
        // has already rerouted and simply waits for BGP to converge.
        if self.accepted.is_some() {
            return (EngineStatus::AlreadyAccepted, None);
        }
        let seen = self.detector.withdrawals_in_burst();
        if seen < self.last_attempt_withdrawals + self.config.triggering_threshold {
            return (EngineStatus::WaitingForTrigger, None);
        }
        self.last_attempt_withdrawals = seen;
        self.attempts += 1;

        let dirty = self.counters.take_dirty();
        self.ranker.update(dirty, &self.counters);
        let ranking = self.ranker.ranking(&self.counters, &self.config);
        let links = infer_links_ranked(&self.counters, &ranking, &self.config);
        let prediction = predict(&self.counters, &links);
        let result = InferenceResult {
            time: now,
            withdrawals_seen: seen,
            links,
            prediction,
        };

        if self.config.use_history {
            if let Some(cap) = self.config.plausibility_cap(seen) {
                if result.prediction.total_affected() > cap {
                    return (EngineStatus::RejectedByHistory, None);
                }
            }
        }
        self.accepted = Some(result.clone());
        (EngineStatus::Accepted, Some(result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_bgp::{AsLink, RouteAttributes, SECOND};

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    /// A session RIB with `n` prefixes beyond link (5,6) (half via AS 7, half
    /// via AS 8), plus a few local prefixes.
    fn rib(n: u32) -> Vec<(Prefix, AsPath)> {
        let mut v = Vec::new();
        for i in 0..n {
            let path = if i % 2 == 0 {
                AsPath::new([2u32, 5, 6, 7])
            } else {
                AsPath::new([2u32, 5, 6, 8])
            };
            v.push((p(i), path));
        }
        for i in n..n + 50 {
            v.push((p(i), AsPath::new([2u32, 5])));
        }
        v
    }

    fn small_config() -> InferenceConfig {
        InferenceConfig {
            burst_start_threshold: 100,
            burst_stop_threshold: 2,
            triggering_threshold: 200,
            // Scale the plausibility caps down with the thresholds.
            plausibility_table: vec![(200, 800), (400, 1_600)],
            force_threshold: 1_000,
            ..Default::default()
        }
    }

    fn withdraw_events(count: u32, gap: Timestamp) -> Vec<ElementaryEvent> {
        (0..count)
            .map(|i| ElementaryEvent::Withdraw {
                timestamp: u64::from(i) * gap,
                prefix: p(i),
            })
            .collect()
    }

    #[test]
    fn no_inference_without_a_burst() {
        let table = rib(1_000);
        let mut engine = InferenceEngine::new(small_config(), table.iter().map(|(a, b)| (a, b)));
        // 50 withdrawals spread over 50 minutes: never a burst.
        for i in 0..50u64 {
            let ev = ElementaryEvent::Withdraw {
                timestamp: i * 60 * SECOND,
                prefix: p(i as u32),
            };
            let (status, res) = engine.process(&ev);
            assert!(res.is_none());
            assert_eq!(status, EngineStatus::Idle);
        }
        assert!(!engine.in_burst());
    }

    #[test]
    fn burst_triggers_inference_at_threshold() {
        let table = rib(700);
        let mut engine = InferenceEngine::new(small_config(), table.iter().map(|(a, b)| (a, b)));
        let events = withdraw_events(400, 10_000); // 10 ms apart → clearly a burst
        let results = engine.process_all(events.iter());
        assert_eq!(results.len(), 1, "exactly one accepted inference per burst");
        let res = &results[0];
        assert_eq!(res.withdrawals_seen, 200, "accepted at the first trigger");
        assert!(res.links.links.contains(&AsLink::new(5, 6)));
        // The prediction covers every prefix beyond the failed link.
        assert_eq!(res.prediction.total_affected(), 700);
        assert!(engine.accepted().is_some());
        assert_eq!(engine.attempts(), 1);
    }

    #[test]
    fn history_model_delays_implausibly_large_predictions() {
        // 2,000 prefixes beyond the failed link but a cap of 800 at the first
        // trigger: the engine must reject the first attempt and accept later
        // (at 400 received, cap 1,600 — still too small — then at the force
        // threshold of 1,000 withdrawals).
        let table = rib(2_000);
        let mut engine = InferenceEngine::new(small_config(), table.iter().map(|(a, b)| (a, b)));
        let events = withdraw_events(1_200, 10_000);
        let mut statuses = Vec::new();
        let mut results = Vec::new();
        for ev in &events {
            let (status, res) = engine.process(ev);
            statuses.push(status);
            if let Some(r) = res {
                results.push(r);
            }
        }
        assert_eq!(results.len(), 1);
        assert!(
            results[0].withdrawals_seen >= 1_000,
            "accepted only once the force threshold disabled the cap (seen {})",
            results[0].withdrawals_seen
        );
        assert!(statuses.contains(&EngineStatus::RejectedByHistory));
    }

    #[test]
    fn without_history_first_trigger_is_accepted() {
        let table = rib(2_000);
        let config = InferenceConfig {
            use_history: false,
            ..small_config()
        };
        let mut engine = InferenceEngine::new(config, table.iter().map(|(a, b)| (a, b)));
        let events = withdraw_events(400, 10_000);
        let results = engine.process_all(events.iter());
        assert_eq!(results.len(), 1);
        assert!(results[0].withdrawals_seen <= 250);
    }

    #[test]
    fn force_infer_at_end_of_burst_is_exact() {
        let table = rib(500);
        let mut engine = InferenceEngine::new(
            InferenceConfig::default(),
            table.iter().map(|(a, b)| (a, b)),
        );
        // Deliver the whole burst (all 500 prefixes beyond (5,6) withdrawn).
        for i in 0..500u32 {
            engine.process(&ElementaryEvent::Withdraw {
                timestamp: u64::from(i) * 1_000,
                prefix: p(i),
            });
        }
        let res = engine.force_infer(600_000);
        assert_eq!(res.links.links, vec![AsLink::new(5, 6)]);
        assert!((res.links.score.fs - 1.0).abs() < 1e-9);
        assert_eq!(res.prediction.already_withdrawn.len(), 500);
        assert_eq!(res.prediction.predicted.len(), 0);
    }

    /// `force_infer` must return exactly what the from-scratch reference
    /// (`infer_links` + `predict`) would, whether the ranker hot path (inside
    /// a burst) or the fallback (outside) serves the ranking — checked at
    /// several points of the burst lifecycle.
    #[test]
    fn force_infer_matches_reference_across_burst_lifecycle() {
        use crate::inference::aggregate::infer_links;
        use crate::inference::predictor::predict;
        let table = rib(700);
        let mut engine = InferenceEngine::new(small_config(), table.iter().map(|(a, b)| (a, b)));
        let check = |engine: &mut InferenceEngine, label: &str| {
            let reference_links = infer_links(engine.counters(), engine.config());
            let reference = predict(engine.counters(), &reference_links);
            let forced = engine.force_infer(42);
            assert_eq!(forced.links, reference_links, "{label}: links");
            assert_eq!(
                forced.prediction.predicted, reference.predicted,
                "{label}: predicted"
            );
            assert_eq!(
                forced.prediction.already_withdrawn, reference.already_withdrawn,
                "{label}: withdrawn"
            );
        };
        check(&mut engine, "fresh engine");
        // A few pre-burst withdrawals (idle state: fallback path).
        for i in 0..10u32 {
            engine.process(&ElementaryEvent::Withdraw {
                timestamp: u64::from(i) * 60 * SECOND,
                prefix: p(i),
            });
        }
        assert!(!engine.in_burst());
        check(&mut engine, "idle with stale withdrawals");
        // Mid-burst (ranker hot path), probed between triggering attempts.
        let burst_start = 3_600 * SECOND;
        for i in 0..350u32 {
            engine.process(&ElementaryEvent::Withdraw {
                timestamp: burst_start + u64::from(i) * 10_000,
                prefix: p(i),
            });
            if i % 90 == 0 {
                check(&mut engine, "mid-burst");
            }
        }
        assert!(engine.in_burst());
        check(&mut engine, "end of stream");
    }

    #[test]
    fn announcements_do_not_trigger_inference() {
        let table = rib(1_000);
        let mut engine = InferenceEngine::new(small_config(), table.iter().map(|(a, b)| (a, b)));
        for i in 0..500u32 {
            let ev = ElementaryEvent::Announce {
                timestamp: u64::from(i) * 1_000,
                prefix: p(i),
                attrs: RouteAttributes::from_path(AsPath::new([3u32, 6, 7])),
            };
            let (status, res) = engine.process(&ev);
            assert!(res.is_none());
            assert_eq!(status, EngineStatus::Idle);
        }
    }

    #[test]
    fn one_inference_per_burst_even_with_more_triggers() {
        let table = rib(700);
        let mut engine = InferenceEngine::new(small_config(), table.iter().map(|(a, b)| (a, b)));
        let events = withdraw_events(700, 10_000);
        let results = engine.process_all(events.iter());
        assert_eq!(results.len(), 1);
        assert_eq!(engine.attempts(), 1);
    }

    #[test]
    fn already_accepted_is_distinct_from_the_accepting_event() {
        let table = rib(700);
        let mut engine = InferenceEngine::new(small_config(), table.iter().map(|(a, b)| (a, b)));
        let events = withdraw_events(400, 10_000);
        let mut accepted_at = None;
        for (i, ev) in events.iter().enumerate() {
            let (status, res) = engine.process(ev);
            match status {
                EngineStatus::Accepted => {
                    assert!(res.is_some(), "Accepted must carry the result");
                    assert!(accepted_at.is_none(), "only one accepting event");
                    accepted_at = Some(i);
                }
                EngineStatus::AlreadyAccepted => {
                    assert!(res.is_none());
                    assert!(
                        accepted_at.is_some_and(|at| i > at),
                        "AlreadyAccepted only after the accepting event"
                    );
                }
                _ => assert!(res.is_none()),
            }
        }
        let at = accepted_at.expect("an inference was accepted");
        assert_eq!(at, 199, "accepted exactly at the 200-withdrawal trigger");
    }

    /// Regression test for the withdrawal-only burst lifecycle: a second,
    /// separate burst of pure withdrawals must close the first burst, re-seed
    /// the counters and produce its own accepted inference.
    #[test]
    fn two_withdrawal_only_bursts_both_produce_inferences() {
        let table = rib(700);
        let mut engine = InferenceEngine::new(small_config(), table.iter().map(|(a, b)| (a, b)));
        let mut events: Vec<ElementaryEvent> = Vec::new();
        // Burst 1: prefixes 0..300, 10 ms apart.
        for i in 0..300u32 {
            events.push(ElementaryEvent::Withdraw {
                timestamp: u64::from(i) * 10_000,
                prefix: p(i),
            });
        }
        // Two minutes of silence, then burst 2: prefixes 300..600. Not a
        // single announcement in the whole stream.
        let burst2_start = 120 * SECOND;
        for i in 0..300u32 {
            events.push(ElementaryEvent::Withdraw {
                timestamp: burst2_start + u64::from(i) * 10_000,
                prefix: p(300 + i),
            });
        }
        let mut results = Vec::new();
        let mut statuses = Vec::new();
        for ev in &events {
            let (status, res) = engine.process(ev);
            statuses.push(status);
            if let Some(r) = res {
                results.push(r);
            }
        }
        assert_eq!(results.len(), 2, "each burst yields its own inference");
        for res in &results {
            assert_eq!(res.withdrawals_seen, 200, "accepted at the first trigger");
            assert!(res.links.links.contains(&AsLink::new(5, 6)));
        }
        // The gap withdrawal closed the first burst...
        assert_eq!(statuses[300], EngineStatus::Idle, "burst 1 closed by gap");
        // ...and burst 2's counters were re-seeded: its WS comes out of its
        // own 200 withdrawals, not 500 accumulated ones.
        assert!((results[1].links.score.ws - 1.0).abs() < 1e-9);
        assert_eq!(engine.attempts(), 1, "attempt counter reset per burst");
    }

    /// Regression test for per-burst counter seeding: burst 2 hits a disjoint
    /// part of the topology and its inference must not drag in burst 1's
    /// links.
    #[test]
    fn second_burst_is_not_polluted_by_first_burst_counters() {
        let mut table: Vec<(Prefix, AsPath)> = Vec::new();
        for i in 0..300u32 {
            table.push((p(i), AsPath::new([2u32, 5, 6])));
        }
        for i in 300..600u32 {
            table.push((p(i), AsPath::new([2u32, 9, 10])));
        }
        let config = InferenceConfig {
            use_history: false,
            ..small_config()
        };
        let mut engine = InferenceEngine::new(config, table.iter().map(|(a, b)| (a, b)));
        let mut events: Vec<ElementaryEvent> = Vec::new();
        for i in 0..300u32 {
            events.push(ElementaryEvent::Withdraw {
                timestamp: u64::from(i) * 10_000,
                prefix: p(i),
            });
        }
        for i in 0..300u32 {
            events.push(ElementaryEvent::Withdraw {
                timestamp: 300 * SECOND + u64::from(i) * 10_000,
                prefix: p(300 + i),
            });
        }
        let results = engine.process_all(events.iter());
        assert_eq!(results.len(), 2);
        assert!(results[0].links.links.contains(&AsLink::new(5, 6)));
        let second = &results[1];
        assert!(second.links.links.contains(&AsLink::new(9, 10)));
        assert!(
            second
                .links
                .links
                .iter()
                .all(|l| !l.has_endpoint(swift_bgp::Asn(5)) && !l.has_endpoint(swift_bgp::Asn(6))),
            "burst 1's links leaked into burst 2: {:?}",
            second.links.links
        );
        // W(t) was re-seeded: burst 2's share denominators are its own.
        assert!((second.links.score.ws - 1.0).abs() < 1e-9);
        assert_eq!(second.prediction.total_affected(), 300);
    }

    #[test]
    fn interned_seeding_behaves_identically() {
        let table = rib(700);
        let interned: InternedRib = table.iter().cloned().collect();
        assert_eq!(interned.distinct_paths(), 3);
        let mut a = InferenceEngine::new(small_config(), table.iter().map(|(x, y)| (x, y)));
        let mut b = InferenceEngine::from_interned(small_config(), &interned);
        let events = withdraw_events(400, 10_000);
        let ra = a.process_all(events.iter());
        let rb = b.process_all(events.iter());
        assert_eq!(ra.len(), rb.len());
        assert_eq!(ra[0].links.links, rb[0].links.links);
        assert_eq!(ra[0].withdrawals_seen, rb[0].withdrawals_seen);
        assert_eq!(
            ra[0].prediction.predicted.len(),
            rb[0].prediction.predicted.len()
        );
    }
}
