//! Per-link withdrawal/path counters: the `W(l,t)` and `P(l,t)` quantities of
//! §4.1.
//!
//! The tracker is seeded with the session's Adj-RIB-In at burst start (each
//! prefix's current AS path) and updated with every subsequent per-prefix
//! event:
//!
//! * a **withdrawal** of prefix `p` increments `W(l)` and decrements `P(l)` for
//!   every link `l` on `p`'s current path, and increments the global
//!   withdrawal count `W(t)`;
//! * a **re-announcement** of `p` with a new path moves `P` from the links of
//!   the old path to the links of the new one (an implicit withdrawal does not
//!   count towards `W`, exactly as in the paper's Fig. 4 where the 10k updated
//!   prefixes of AS 7 lower the path share of `(1,2)`/`(2,5)` without raising
//!   any withdrawal share).

use std::collections::{BTreeMap, HashMap};
use swift_bgp::{AsLink, AsPath, Prefix};

/// The per-link counters for one session.
#[derive(Debug, Clone, Default)]
pub struct LinkCounters {
    /// Current path of each still-routed prefix.
    paths: HashMap<Prefix, AsPath>,
    /// Prefixes withdrawn since tracking started (with the path they had).
    withdrawn: HashMap<Prefix, AsPath>,
    /// W(l): withdrawn prefixes whose path included l.
    w: BTreeMap<AsLink, usize>,
    /// P(l): prefixes whose current path still includes l.
    p: BTreeMap<AsLink, usize>,
    /// W(t): total withdrawals received (including unknown/noise prefixes).
    total_withdrawals: usize,
}

impl LinkCounters {
    /// Creates counters seeded with the session's current routes.
    pub fn from_rib<'a, I>(rib: I) -> Self
    where
        I: IntoIterator<Item = (&'a Prefix, &'a AsPath)>,
    {
        let mut c = LinkCounters::default();
        for (prefix, path) in rib {
            c.paths.insert(*prefix, path.clone());
            for link in path.links() {
                *c.p.entry(link).or_insert(0) += 1;
            }
        }
        c
    }

    /// Creates empty counters (no seeded routes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a withdrawal of `prefix`.
    pub fn on_withdraw(&mut self, prefix: Prefix) {
        self.total_withdrawals += 1;
        if let Some(path) = self.paths.remove(&prefix) {
            for link in path.links() {
                *self.w.entry(link).or_insert(0) += 1;
                if let Some(p) = self.p.get_mut(&link) {
                    *p = p.saturating_sub(1);
                }
            }
            self.withdrawn.insert(prefix, path);
        }
        // Withdrawals for prefixes we never had a route for (BGP noise) still
        // count towards W(t) but touch no link counter.
    }

    /// Registers a re-announcement of `prefix` with `new_path`.
    pub fn on_announce(&mut self, prefix: Prefix, new_path: AsPath) {
        // If the prefix had been withdrawn during this burst it becomes routed
        // again; its withdrawal contribution to W is kept (the withdrawal did
        // happen) but the new path now counts towards P.
        if let Some(old) = self.paths.remove(&prefix) {
            for link in old.links() {
                if let Some(p) = self.p.get_mut(&link) {
                    *p = p.saturating_sub(1);
                }
            }
        }
        for link in new_path.links() {
            *self.p.entry(link).or_insert(0) += 1;
        }
        self.paths.insert(prefix, new_path);
        self.withdrawn.remove(&prefix);
    }

    /// `W(l,t)`: withdrawn prefixes whose path included `l`.
    pub fn w(&self, link: &AsLink) -> usize {
        self.w.get(link).copied().unwrap_or(0)
    }

    /// `P(l,t)`: prefixes whose current path still includes `l`.
    pub fn p(&self, link: &AsLink) -> usize {
        self.p.get(link).copied().unwrap_or(0)
    }

    /// `W(t)`: total withdrawals received.
    pub fn total_withdrawals(&self) -> usize {
        self.total_withdrawals
    }

    /// Every link with a non-zero `W` counter (the candidate failed links).
    pub fn links_with_withdrawals(&self) -> impl Iterator<Item = (&AsLink, usize)> {
        self.w.iter().filter(|(_, w)| **w > 0).map(|(l, w)| (l, *w))
    }

    /// Every link currently known to the counters (withdrawn or still routed).
    pub fn all_links(&self) -> impl Iterator<Item = &AsLink> {
        self.w
            .keys()
            .chain(self.p.keys().filter(move |l| !self.w.contains_key(*l)))
    }

    /// The current path of `prefix`, if still routed.
    pub fn current_path(&self, prefix: &Prefix) -> Option<&AsPath> {
        self.paths.get(prefix)
    }

    /// Returns `true` if `prefix` has been withdrawn (and not re-announced).
    pub fn is_withdrawn(&self, prefix: &Prefix) -> bool {
        self.withdrawn.contains_key(prefix)
    }

    /// Number of prefixes withdrawn (with a known pre-withdrawal path).
    pub fn withdrawn_count(&self) -> usize {
        self.withdrawn.len()
    }

    /// Number of prefixes still routed.
    pub fn routed_count(&self) -> usize {
        self.paths.len()
    }

    /// Iterates over the still-routed prefixes and their current paths.
    pub fn routed(&self) -> impl Iterator<Item = (&Prefix, &AsPath)> {
        self.paths.iter()
    }

    /// Iterates over the withdrawn prefixes and the path they had.
    pub fn withdrawn(&self) -> impl Iterator<Item = (&Prefix, &AsPath)> {
        self.withdrawn.iter()
    }

    /// `W(S,t)` for a link set: withdrawn prefixes whose path crossed *any*
    /// link of `links` (each prefix counted once).
    ///
    /// The paper's §4.2 formula writes the set scores as per-link sums; we use
    /// the per-prefix union instead so that a prefix crossing two links of the
    /// set (which always happens when the set shares an endpoint) is not
    /// double-counted. The union form keeps `WS ≤ 1` and makes the greedy
    /// aggregation reject upstream links whose extra still-routed prefixes
    /// would dilute the score — matching the behaviour the paper reports
    /// (aggregation covers router failures without swallowing healthy links).
    pub fn w_union(&self, links: &[AsLink]) -> usize {
        self.withdrawn
            .values()
            .filter(|path| path.crosses_any(links))
            .count()
    }

    /// `P(S,t)` for a link set: still-routed prefixes whose current path
    /// crosses *any* link of `links` (each prefix counted once).
    pub fn p_union(&self, links: &[AsLink]) -> usize {
        self.paths
            .values()
            .filter(|path| path.crosses_any(links))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    /// Builds the Fig. 1 / Fig. 4 scenario at small scale: on the session with
    /// AS 2, prefixes of AS 2 (1), AS 5 (1), AS 6 (1), AS 7 (10) and AS 8 (10)
    /// are routed via (2), (2 5), (2 5 6), (2 5 6 7) and (2 5 6 8).
    fn fig4_counters() -> LinkCounters {
        let mut rib: Vec<(Prefix, AsPath)> = Vec::new();
        rib.push((p(0), AsPath::new([2u32])));
        rib.push((p(1), AsPath::new([2u32, 5])));
        rib.push((p(2), AsPath::new([2u32, 5, 6])));
        for i in 0..10 {
            rib.push((p(10 + i), AsPath::new([2u32, 5, 6, 7])));
        }
        for i in 0..10 {
            rib.push((p(30 + i), AsPath::new([2u32, 5, 6, 8])));
        }
        LinkCounters::from_rib(rib.iter().map(|(a, b)| (a, b)))
    }

    #[test]
    fn seeding_counts_paths_per_link() {
        let c = fig4_counters();
        assert_eq!(c.p(&AsLink::new(2, 5)), 22);
        assert_eq!(c.p(&AsLink::new(5, 6)), 21);
        assert_eq!(c.p(&AsLink::new(6, 7)), 10);
        assert_eq!(c.p(&AsLink::new(6, 8)), 10);
        assert_eq!(c.w(&AsLink::new(5, 6)), 0);
        assert_eq!(c.total_withdrawals(), 0);
        assert_eq!(c.routed_count(), 23);
    }

    #[test]
    fn fig4_end_of_burst_counters() {
        // Failure of (5,6): AS 6 and AS 8 prefixes withdrawn (11 messages),
        // AS 7 prefixes re-announced over a path avoiding (5,6).
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        for i in 0..10 {
            c.on_withdraw(p(30 + i));
        }
        for i in 0..10 {
            c.on_announce(p(10 + i), AsPath::new([2u32, 5, 3, 6, 7]));
        }
        assert_eq!(c.total_withdrawals(), 11);
        // W/P per link, as in Fig. 4 (scaled down 1000×).
        assert_eq!(c.w(&AsLink::new(5, 6)), 11);
        assert_eq!(c.p(&AsLink::new(5, 6)), 0);
        assert_eq!(c.w(&AsLink::new(2, 5)), 11);
        assert_eq!(
            c.p(&AsLink::new(2, 5)),
            11,
            "AS5 prefix + 10 updated AS7 prefixes"
        );
        assert_eq!(c.w(&AsLink::new(6, 8)), 10);
        assert_eq!(c.p(&AsLink::new(6, 8)), 0);
        assert_eq!(c.w(&AsLink::new(6, 7)), 0);
        assert_eq!(
            c.p(&AsLink::new(6, 7)),
            10,
            "re-announced paths still end at (6,7)... via 3"
        );
        assert_eq!(c.withdrawn_count(), 11);
        assert_eq!(c.routed_count(), 12);
    }

    #[test]
    fn noise_withdrawals_count_globally_only() {
        let mut c = fig4_counters();
        c.on_withdraw(p(9_999));
        assert_eq!(c.total_withdrawals(), 1);
        assert_eq!(c.withdrawn_count(), 0);
        assert_eq!(c.w(&AsLink::new(2, 5)), 0);
    }

    #[test]
    fn reannouncement_after_withdrawal_restores_p_but_keeps_w() {
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        assert_eq!(c.w(&AsLink::new(5, 6)), 1);
        assert_eq!(c.p(&AsLink::new(5, 6)), 20);
        assert!(c.is_withdrawn(&p(2)));
        c.on_announce(p(2), AsPath::new([2u32, 5, 6]));
        assert_eq!(c.w(&AsLink::new(5, 6)), 1, "the withdrawal still happened");
        assert_eq!(c.p(&AsLink::new(5, 6)), 21);
        assert!(!c.is_withdrawn(&p(2)));
        assert_eq!(c.current_path(&p(2)), Some(&AsPath::new([2u32, 5, 6])));
    }

    #[test]
    fn double_withdrawal_is_counted_once_per_message() {
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        c.on_withdraw(p(2));
        // Second withdrawal of an already-withdrawn prefix counts towards W(t)
        // (it is a received message) but cannot touch link counters again.
        assert_eq!(c.total_withdrawals(), 2);
        assert_eq!(c.w(&AsLink::new(5, 6)), 1);
    }

    #[test]
    fn links_with_withdrawals_iterates_only_positive_w() {
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        let links: Vec<AsLink> = c.links_with_withdrawals().map(|(l, _)| *l).collect();
        assert!(links.contains(&AsLink::new(2, 5)));
        assert!(links.contains(&AsLink::new(5, 6)));
        assert!(!links.contains(&AsLink::new(6, 7)));
        assert!(!links.contains(&AsLink::new(6, 8)));
    }

    #[test]
    fn union_counters_count_each_prefix_once() {
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        for i in 0..10 {
            c.on_withdraw(p(30 + i));
        }
        let set = [AsLink::new(5, 6), AsLink::new(6, 8)];
        // The 11 withdrawn prefixes all cross (5,6); the 10 AS 8 prefixes also
        // cross (6,8) but are not double-counted.
        assert_eq!(c.w_union(&set), 11);
        // Still routed across the set: the 10 AS 7 prefixes (via (5,6)).
        assert_eq!(c.p_union(&set), 10);
        // Adding an upstream link brings in its extra still-routed prefixes.
        let with_upstream = [AsLink::new(2, 5), AsLink::new(5, 6)];
        assert_eq!(c.w_union(&with_upstream), 11);
        assert_eq!(
            c.p_union(&with_upstream),
            11,
            "AS 5 prefix + 10 AS 7 prefixes"
        );
        assert_eq!(c.w_union(&[]), 0);
        assert_eq!(c.p_union(&[]), 0);
    }

    #[test]
    fn announce_of_new_prefix_adds_paths() {
        let mut c = LinkCounters::new();
        c.on_announce(p(1), AsPath::new([9u32, 8]));
        assert_eq!(c.p(&AsLink::new(9, 8)), 1);
        assert_eq!(c.routed_count(), 1);
        assert_eq!(c.withdrawn_count(), 0);
    }
}
