//! Per-link withdrawal/path counters: the `W(l,t)` and `P(l,t)` quantities of
//! §4.1, backed by an interned-path inverted index.
//!
//! The tracker is seeded with the session's Adj-RIB-In at burst start (each
//! prefix's current AS path) and updated with every subsequent per-prefix
//! event:
//!
//! * a **withdrawal** of prefix `p` increments `W(l)` and decrements `P(l)` for
//!   every link `l` on `p`'s current path, and increments the global
//!   withdrawal count `W(t)`;
//! * a **re-announcement** of `p` with a new path moves `P` from the links of
//!   the old path to the links of the new one (an implicit withdrawal does not
//!   count towards `W`, exactly as in the paper's Fig. 4 where the 10k updated
//!   prefixes of AS 7 lower the path share of `(1,2)`/`(2,5)` without raising
//!   any withdrawal share).
//!
//! # Data layout
//!
//! Internet-scale RIBs (~900k prefixes) with bursts of 10^5 withdrawals make
//! the naive representation — one cloned [`AsPath`] per prefix, and a full-RIB
//! scan for every `W(S)`/`P(S)` link-set query — the dominant cost of an
//! inference attempt. Three structures remove it:
//!
//! * **Path interning** ([`PathInterner`]): every distinct AS path is stored
//!   once; prefixes refer to it by dense [`PathId`]. Seeding from an
//!   [`InternedRib`] shares the storage outright (`Arc` clones only).
//! * **Dense prefix ids**: each tracked prefix gets a `u32` id, so per-prefix
//!   membership is a bit, not a map entry.
//! * **Inverted index**: for every [`AsLink`] the set of prefixes whose
//!   tracked path crosses it is an [`IdBitSet`]; two global bitsets split the
//!   id space into *routed* and *withdrawn*. [`LinkCounters::w_union`] /
//!   [`LinkCounters::p_union`] are then `O(candidate links × words)` bitset
//!   unions instead of `O(RIB × path length)` scans. The scan implementations
//!   survive as [`LinkCounters::w_union_scan`] / [`LinkCounters::p_union_scan`]
//!   — reference baselines for the property tests and the `exp_scale`
//!   speedup measurements.
//!
//! Per-burst seeding (§4.1, "seeded at burst start") is provided by
//! [`LinkCounters::start_burst`]: it zeroes `W(l)`/`W(t)`, forgets withdrawals
//! from previous bursts, and replays the withdrawals of the detection window
//! so the new burst starts from exactly the state the paper's algorithm
//! assumes.

use crate::inference::bitset::IdBitSet;
use crate::inference::kernels::{fused_wp, KernelStats, ScoreScratch};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use swift_bgp::{AsLink, AsPath, InternedRib, PathId, PathInterner, Prefix, PrefixSet};

/// Largest candidate-set size scored through the stack-resident source array
/// of the fused kernel; bigger sets (which never occur in practice — greedy
/// aggregates hold a handful of links) fall back to the scratch-buffered
/// materialised union, still without a per-call allocation in steady state.
const MAX_FUSED_SOURCES: usize = 32;

/// What the counters currently know about a tracked prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Routed: the path behind the id is the prefix's current path.
    Routed(PathId),
    /// Withdrawn during the current burst; the path it had is kept for `W`.
    Withdrawn(PathId),
    /// Withdrawn in a previous burst and purged at burst start: the prefix is
    /// not in the RIB and contributes to no counter.
    Gone,
}

/// Per-link slice of the inverted index.
#[derive(Debug, Clone, Default)]
struct LinkEntry {
    /// Prefixes (by dense id) whose tracked path crosses this link — routed
    /// and withdrawn-this-burst alike.
    crosses: IdBitSet,
    /// W(l): withdrawals of prefixes whose path included l.
    w: usize,
    /// P(l): prefixes whose current path still includes l.
    p: usize,
}

/// The per-link counters for one session.
#[derive(Debug, Clone, Default)]
pub struct LinkCounters {
    /// Shared storage for every distinct AS path seen.
    interner: PathInterner,
    /// Prefix → dense id.
    ids: HashMap<Prefix, u32>,
    /// Dense id → prefix.
    prefixes: Vec<Prefix>,
    /// Dense id → tracking state.
    state: Vec<SlotState>,
    /// Ids of still-routed prefixes.
    routed_bits: IdBitSet,
    /// Ids of prefixes withdrawn during the current burst.
    withdrawn_bits: IdBitSet,
    /// The inverted index plus the maintained W(l)/P(l) counts.
    links: BTreeMap<AsLink, LinkEntry>,
    /// W(t): total withdrawals received (including unknown/noise prefixes).
    total_withdrawals: usize,
    /// Number of still-routed prefixes.
    routed_count: usize,
    /// Number of withdrawn (not re-announced) prefixes.
    withdrawn_count: usize,
    /// Links whose `W(l)` changed since the last [`LinkCounters::take_dirty`].
    dirty: BTreeSet<AsLink>,
    /// Reusable kernel scratch (pass cursors, union buffers, dispatch stats).
    ///
    /// Interior mutability keeps the read-only scoring API (`union_counts`
    /// and friends take `&self`) while the scratch warms its capacity across
    /// calls. A `LinkCounters` lives inside exactly one session engine and is
    /// only ever *moved* between threads, never shared — `RefCell` (Send, not
    /// Sync) encodes precisely that.
    scratch: RefCell<ScoreScratch>,
}

/// Iterates the distinct links of `path` (a looped path repeating a link
/// yields it once, keeping counter increments and bitset updates symmetric).
fn unique_links(path: &AsPath) -> impl Iterator<Item = AsLink> + '_ {
    path.links()
        .enumerate()
        .filter_map(move |(i, l)| (!path.links().take(i).any(|prev| prev == l)).then_some(l))
}

impl LinkCounters {
    /// Creates counters seeded with the session's current routes.
    pub fn from_rib<'a, I>(rib: I) -> Self
    where
        I: IntoIterator<Item = (&'a Prefix, &'a AsPath)>,
    {
        let mut c = LinkCounters::default();
        for (prefix, path) in rib {
            let pid = c.interner.intern(path);
            c.announce_interned(*prefix, pid);
        }
        c
    }

    /// Creates counters seeded from an interned RIB, sharing its path storage
    /// (no per-prefix path clones).
    pub fn from_interned(rib: &InternedRib) -> Self {
        let mut c = LinkCounters {
            interner: rib.interner().clone(),
            ..LinkCounters::default()
        };
        for (prefix, pid) in rib.entries() {
            c.announce_interned(*prefix, *pid);
        }
        c
    }

    /// Creates empty counters (no seeded routes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a withdrawal of `prefix`.
    pub fn on_withdraw(&mut self, prefix: Prefix) {
        self.total_withdrawals += 1;
        // Withdrawals for prefixes we never had a route for (BGP noise) still
        // count towards W(t) but touch no link counter.
        let Some(&id) = self.ids.get(&prefix) else {
            return;
        };
        let SlotState::Routed(pid) = self.state[id as usize] else {
            return;
        };
        self.state[id as usize] = SlotState::Withdrawn(pid);
        self.routed_bits.clear(id);
        self.withdrawn_bits.set(id);
        self.routed_count -= 1;
        self.withdrawn_count += 1;
        let path = self.interner.get_arc(pid);
        for link in unique_links(&path) {
            let e = self.links.entry(link).or_default();
            e.w += 1;
            e.p = e.p.saturating_sub(1);
            self.dirty.insert(link);
        }
    }

    /// Registers a re-announcement of `prefix` with `new_path`, interning the
    /// path by reference (it is cloned only the first time it is ever seen).
    pub fn on_announce_path(&mut self, prefix: Prefix, new_path: &AsPath) {
        let pid = self.interner.intern(new_path);
        self.announce_interned(prefix, pid);
    }

    /// Registers a re-announcement of `prefix` with an owned `new_path`.
    pub fn on_announce(&mut self, prefix: Prefix, new_path: AsPath) {
        let pid = self.interner.intern_owned(new_path);
        self.announce_interned(prefix, pid);
    }

    /// Core announce handler over an already-interned path.
    ///
    /// If the prefix had been withdrawn during this burst it becomes routed
    /// again; its withdrawal contribution to W is kept (the withdrawal did
    /// happen) but the new path now counts towards P.
    fn announce_interned(&mut self, prefix: Prefix, new_pid: PathId) {
        let id = match self.ids.get(&prefix) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.prefixes.len()).expect("more than u32::MAX prefixes");
                self.ids.insert(prefix, id);
                self.prefixes.push(prefix);
                self.state.push(SlotState::Gone);
                id
            }
        };
        match self.state[id as usize] {
            SlotState::Routed(old_pid) => {
                let old = self.interner.get_arc(old_pid);
                for link in unique_links(&old) {
                    if let Some(e) = self.links.get_mut(&link) {
                        e.crosses.clear(id);
                        e.p = e.p.saturating_sub(1);
                    }
                }
                self.routed_count -= 1;
            }
            SlotState::Withdrawn(old_pid) => {
                // The old path's P contribution was already removed at
                // withdrawal time and its W contribution is deliberately kept.
                let old = self.interner.get_arc(old_pid);
                for link in unique_links(&old) {
                    if let Some(e) = self.links.get_mut(&link) {
                        e.crosses.clear(id);
                    }
                }
                self.withdrawn_bits.clear(id);
                self.withdrawn_count -= 1;
            }
            SlotState::Gone => {}
        }
        self.state[id as usize] = SlotState::Routed(new_pid);
        self.routed_bits.set(id);
        self.routed_count += 1;
        let path = self.interner.get_arc(new_pid);
        for link in unique_links(&path) {
            let e = self.links.entry(link).or_default();
            e.crosses.set(id);
            e.p += 1;
        }
    }

    /// Re-seeds the counters at burst start (§4.1: `W` is "seeded at burst
    /// start").
    ///
    /// Zeroes every `W(l)` and `W(t)`, forgets prefixes withdrawn in previous
    /// bursts (they are not in the RIB the new burst starts from), then
    /// replays `window` — the withdrawals of the burst-detection window, which
    /// *are* part of the new burst. Prefixes of the window that are currently
    /// withdrawn regain their `W` contributions; unknown or re-announced ones
    /// count towards `W(t)` only.
    ///
    /// Also clears the dirty-link set: callers keeping an incremental ranking
    /// (see [`crate::inference::fit_score::LinkRanker`]) must reset it
    /// alongside this call.
    pub fn start_burst<I>(&mut self, window: I)
    where
        I: IntoIterator<Item = Prefix>,
    {
        for e in self.links.values_mut() {
            e.w = 0;
        }
        self.total_withdrawals = 0;
        self.dirty.clear();

        // Purge withdrawals from previous bursts.
        let mut stale: HashMap<u32, PathId> = HashMap::new();
        for (id, s) in self.state.iter_mut().enumerate() {
            if let SlotState::Withdrawn(pid) = *s {
                *s = SlotState::Gone;
                stale.insert(id as u32, pid);
            }
        }
        for (&id, &pid) in &stale {
            let path = self.interner.get_arc(pid);
            for link in unique_links(&path) {
                if let Some(e) = self.links.get_mut(&link) {
                    e.crosses.clear(id);
                }
            }
        }
        self.withdrawn_bits.clear_all();
        self.withdrawn_count = 0;

        // Replay the detection window into the fresh burst.
        for prefix in window {
            self.total_withdrawals += 1;
            let Some(&id) = self.ids.get(&prefix) else {
                continue;
            };
            let Some(pid) = stale.remove(&id) else {
                continue;
            };
            self.state[id as usize] = SlotState::Withdrawn(pid);
            self.withdrawn_bits.set(id);
            self.withdrawn_count += 1;
            let path = self.interner.get_arc(pid);
            for link in unique_links(&path) {
                let e = self.links.entry(link).or_default();
                e.crosses.set(id);
                e.w += 1;
                self.dirty.insert(link);
            }
        }
    }

    /// `W(l,t)`: withdrawn prefixes whose path included `l`.
    pub fn w(&self, link: &AsLink) -> usize {
        self.links.get(link).map_or(0, |e| e.w)
    }

    /// `P(l,t)`: prefixes whose current path still includes `l`.
    pub fn p(&self, link: &AsLink) -> usize {
        self.links.get(link).map_or(0, |e| e.p)
    }

    /// `W(t)`: total withdrawals received.
    pub fn total_withdrawals(&self) -> usize {
        self.total_withdrawals
    }

    /// Every link with a non-zero `W` counter (the candidate failed links).
    pub fn links_with_withdrawals(&self) -> impl Iterator<Item = (&AsLink, usize)> {
        self.links
            .iter()
            .filter(|(_, e)| e.w > 0)
            .map(|(l, e)| (l, e.w))
    }

    /// Every link currently known to the counters (withdrawn or still routed).
    pub fn all_links(&self) -> impl Iterator<Item = &AsLink> {
        self.links.keys()
    }

    /// Links whose `W(l)` changed since the last call, drained in sorted
    /// order. Feeds the incremental candidate ranking in the engine.
    pub fn take_dirty(&mut self) -> Vec<AsLink> {
        std::mem::take(&mut self.dirty).into_iter().collect()
    }

    /// The current path of `prefix`, if still routed.
    pub fn current_path(&self, prefix: &Prefix) -> Option<&AsPath> {
        match self.state[*self.ids.get(prefix)? as usize] {
            SlotState::Routed(pid) => Some(self.interner.get(pid)),
            _ => None,
        }
    }

    /// Returns `true` if `prefix` has been withdrawn (and not re-announced).
    pub fn is_withdrawn(&self, prefix: &Prefix) -> bool {
        self.ids
            .get(prefix)
            .is_some_and(|&id| matches!(self.state[id as usize], SlotState::Withdrawn(_)))
    }

    /// Number of prefixes withdrawn (with a known pre-withdrawal path).
    pub fn withdrawn_count(&self) -> usize {
        self.withdrawn_count
    }

    /// Number of prefixes still routed.
    pub fn routed_count(&self) -> usize {
        self.routed_count
    }

    /// Iterates over the still-routed prefixes and their current paths.
    pub fn routed(&self) -> impl Iterator<Item = (&Prefix, &AsPath)> {
        self.state
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| match s {
                SlotState::Routed(pid) => Some((&self.prefixes[i], self.interner.get(*pid))),
                _ => None,
            })
    }

    /// Iterates over the withdrawn prefixes and the path they had.
    pub fn withdrawn(&self) -> impl Iterator<Item = (&Prefix, &AsPath)> {
        self.state
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| match s {
                SlotState::Withdrawn(pid) => Some((&self.prefixes[i], self.interner.get(*pid))),
                _ => None,
            })
    }

    /// The union of the per-link prefix bitsets of `links`, materialised into
    /// a fresh allocation — the pre-kernel behaviour, kept as the reference
    /// for [`LinkCounters::union_counts_materialized`] and the benches.
    fn union_bits(&self, links: &[AsLink]) -> IdBitSet {
        let mut union = IdBitSet::new();
        for link in links {
            if let Some(e) = self.links.get(link) {
                union.union_with(&e.crosses);
            }
        }
        union
    }

    /// `(W(S,t), P(S,t))` for a link set: one fused streaming pass over the
    /// per-link bitsets and both masks, no materialised union, no per-call
    /// heap allocation (see [`crate::inference::kernels`]).
    pub fn union_counts(&self, links: &[AsLink]) -> (usize, usize) {
        let mut srcs: [&IdBitSet; MAX_FUSED_SOURCES] = [&self.routed_bits; MAX_FUSED_SOURCES];
        let mut n = 0;
        for link in links {
            if let Some(e) = self.links.get(link) {
                if n == MAX_FUSED_SOURCES {
                    return self.union_counts_buffered(links);
                }
                srcs[n] = &e.crosses;
                n += 1;
            }
        }
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        fused_wp(
            &srcs[..n],
            &self.withdrawn_bits,
            &self.routed_bits,
            &mut s.pass,
            &mut s.stats,
        )
    }

    /// Overflow path of [`LinkCounters::union_counts`]: materialises the union
    /// into the reusable scratch buffer (capacity retained across calls).
    fn union_counts_buffered(&self, links: &[AsLink]) -> (usize, usize) {
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        let before = s.union_buf.heap_bytes();
        s.union_buf.clear_all();
        for link in links {
            if let Some(e) = self.links.get(link) {
                s.union_buf.union_with(&e.crosses);
            }
        }
        if s.union_buf.heap_bytes() > before {
            s.stats.scratch_growth += 1;
        } else {
            s.stats.scratch_reuse += 1;
        }
        (
            s.union_buf.intersection_count(&self.withdrawn_bits),
            s.union_buf.intersection_count(&self.routed_bits),
        )
    }

    /// Reference implementation of [`LinkCounters::union_counts`] that
    /// materialises a fresh union per call — the pre-kernel hot path, kept
    /// for the equivalence property tests and the `bench_inference` /
    /// `exp_scale` fused-vs-materialized measurements.
    pub fn union_counts_materialized(&self, links: &[AsLink]) -> (usize, usize) {
        let union = self.union_bits(links);
        (
            union.intersection_count(&self.withdrawn_bits),
            union.intersection_count(&self.routed_bits),
        )
    }

    /// `(W(l,t), P(l,t))` of a single link in one index lookup (the per-link
    /// scorer used to pay three `BTreeMap` probes for the same entry).
    pub fn wp(&self, link: &AsLink) -> (usize, usize) {
        self.links.get(link).map_or((0, 0), |e| (e.w, e.p))
    }

    /// Seeds the scratch-resident greedy aggregate with `seed`'s crossing set
    /// and returns its fused `(W, P)`.
    ///
    /// Together with [`LinkCounters::agg_trial`] and
    /// [`LinkCounters::agg_accept`] this gives the greedy common-endpoint
    /// aggregation an O(1)-per-candidate running union: a trial fuses the
    /// current aggregate with one more crossing set instead of re-unioning
    /// the whole link set from scratch (O(k²) → O(k) over a greedy chain).
    pub fn agg_seed(&self, seed: &AsLink) -> (usize, usize) {
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        let before = s.agg.heap_bytes();
        s.agg.clear_all();
        if let Some(e) = self.links.get(seed) {
            s.agg.union_with(&e.crosses);
        }
        if s.agg.heap_bytes() > before {
            s.stats.scratch_growth += 1;
        } else {
            s.stats.scratch_reuse += 1;
        }
        let srcs: [&IdBitSet; 1] = [&s.agg];
        fused_wp(
            &srcs,
            &self.withdrawn_bits,
            &self.routed_bits,
            &mut s.pass,
            &mut s.stats,
        )
    }

    /// Fused `(W, P)` of the current aggregate extended by `candidate`,
    /// without committing the extension.
    pub fn agg_trial(&self, candidate: &AsLink) -> (usize, usize) {
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        let srcs: [&IdBitSet; 2] = match self.links.get(candidate) {
            Some(e) => [&s.agg, &e.crosses],
            // Unknown link: the trial set equals the current aggregate.
            None => [&s.agg, &s.agg],
        };
        fused_wp(
            &srcs,
            &self.withdrawn_bits,
            &self.routed_bits,
            &mut s.pass,
            &mut s.stats,
        )
    }

    /// Folds `candidate`'s crossing set into the running aggregate (call
    /// after a successful [`LinkCounters::agg_trial`]).
    pub fn agg_accept(&self, candidate: &AsLink) {
        if let Some(e) = self.links.get(candidate) {
            let mut scratch = self.scratch.borrow_mut();
            scratch.agg.union_with(&e.crosses);
        }
    }

    /// Drains the kernel dispatch/scratch statistics accumulated since the
    /// last call (exported as `inference.kernel.*` / `inference.scratch.*`
    /// registry counters by the runtime).
    pub fn take_kernel_stats(&self) -> KernelStats {
        self.scratch.borrow_mut().take_stats()
    }

    /// `W(S,t)` for a link set: withdrawn prefixes whose path crossed *any*
    /// link of `links` (each prefix counted once).
    ///
    /// The paper's §4.2 formula writes the set scores as per-link sums; we use
    /// the per-prefix union instead so that a prefix crossing two links of the
    /// set (which always happens when the set shares an endpoint) is not
    /// double-counted. The union form keeps `WS ≤ 1` and makes the greedy
    /// aggregation reject upstream links whose extra still-routed prefixes
    /// would dilute the score — matching the behaviour the paper reports
    /// (aggregation covers router failures without swallowing healthy links).
    pub fn w_union(&self, links: &[AsLink]) -> usize {
        self.union_counts(links).0
    }

    /// `P(S,t)` for a link set: still-routed prefixes whose current path
    /// crosses *any* link of `links` (each prefix counted once).
    pub fn p_union(&self, links: &[AsLink]) -> usize {
        self.union_counts(links).1
    }

    /// The prefixes behind a link set, split into `(withdrawn, routed)` —
    /// the index-driven form of the §4.2 prediction (reroute everything whose
    /// current path crosses an inferred link).
    ///
    /// This path genuinely needs materialised union ids (the output is the
    /// prefix lists), so it builds them in the reusable scratch buffer: the
    /// dense words are cleared in place and only grow once per session.
    pub fn crossing_prefixes(&self, links: &[AsLink]) -> (PrefixSet, PrefixSet) {
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        let before = s.union_buf.heap_bytes();
        s.union_buf.clear_all();
        for link in links {
            if let Some(e) = self.links.get(link) {
                s.union_buf.union_with(&e.crosses);
            }
        }
        if s.union_buf.heap_bytes() > before {
            s.stats.scratch_growth += 1;
        } else {
            s.stats.scratch_reuse += 1;
        }
        let withdrawn = s
            .union_buf
            .intersection_ids(&self.withdrawn_bits)
            .map(|id| self.prefixes[id as usize])
            .collect();
        let routed = s
            .union_buf
            .intersection_ids(&self.routed_bits)
            .map(|id| self.prefixes[id as usize])
            .collect();
        (withdrawn, routed)
    }

    /// Reference implementation of [`LinkCounters::w_union`] by full scan —
    /// kept for property tests and as the `exp_scale` speedup baseline.
    pub fn w_union_scan(&self, links: &[AsLink]) -> usize {
        self.withdrawn()
            .filter(|(_, path)| path.crosses_any(links))
            .count()
    }

    /// Reference implementation of [`LinkCounters::p_union`] by full scan.
    pub fn p_union_scan(&self, links: &[AsLink]) -> usize {
        self.routed()
            .filter(|(_, path)| path.crosses_any(links))
            .count()
    }

    /// Number of distinct AS paths interned so far.
    pub fn distinct_paths(&self) -> usize {
        self.interner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    /// Builds the Fig. 1 / Fig. 4 scenario at small scale: on the session with
    /// AS 2, prefixes of AS 2 (1), AS 5 (1), AS 6 (1), AS 7 (10) and AS 8 (10)
    /// are routed via (2), (2 5), (2 5 6), (2 5 6 7) and (2 5 6 8).
    fn fig4_counters() -> LinkCounters {
        let mut rib: Vec<(Prefix, AsPath)> = Vec::new();
        rib.push((p(0), AsPath::new([2u32])));
        rib.push((p(1), AsPath::new([2u32, 5])));
        rib.push((p(2), AsPath::new([2u32, 5, 6])));
        for i in 0..10 {
            rib.push((p(10 + i), AsPath::new([2u32, 5, 6, 7])));
        }
        for i in 0..10 {
            rib.push((p(30 + i), AsPath::new([2u32, 5, 6, 8])));
        }
        LinkCounters::from_rib(rib.iter().map(|(a, b)| (a, b)))
    }

    #[test]
    fn seeding_counts_paths_per_link() {
        let c = fig4_counters();
        assert_eq!(c.p(&AsLink::new(2, 5)), 22);
        assert_eq!(c.p(&AsLink::new(5, 6)), 21);
        assert_eq!(c.p(&AsLink::new(6, 7)), 10);
        assert_eq!(c.p(&AsLink::new(6, 8)), 10);
        assert_eq!(c.w(&AsLink::new(5, 6)), 0);
        assert_eq!(c.total_withdrawals(), 0);
        assert_eq!(c.routed_count(), 23);
        // 23 prefixes but only 5 distinct paths.
        assert_eq!(c.distinct_paths(), 5);
    }

    #[test]
    fn fig4_end_of_burst_counters() {
        // Failure of (5,6): AS 6 and AS 8 prefixes withdrawn (11 messages),
        // AS 7 prefixes re-announced over a path avoiding (5,6).
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        for i in 0..10 {
            c.on_withdraw(p(30 + i));
        }
        for i in 0..10 {
            c.on_announce(p(10 + i), AsPath::new([2u32, 5, 3, 6, 7]));
        }
        assert_eq!(c.total_withdrawals(), 11);
        // W/P per link, as in Fig. 4 (scaled down 1000×).
        assert_eq!(c.w(&AsLink::new(5, 6)), 11);
        assert_eq!(c.p(&AsLink::new(5, 6)), 0);
        assert_eq!(c.w(&AsLink::new(2, 5)), 11);
        assert_eq!(
            c.p(&AsLink::new(2, 5)),
            11,
            "AS5 prefix + 10 updated AS7 prefixes"
        );
        assert_eq!(c.w(&AsLink::new(6, 8)), 10);
        assert_eq!(c.p(&AsLink::new(6, 8)), 0);
        assert_eq!(c.w(&AsLink::new(6, 7)), 0);
        assert_eq!(
            c.p(&AsLink::new(6, 7)),
            10,
            "re-announced paths still end at (6,7)... via 3"
        );
        assert_eq!(c.withdrawn_count(), 11);
        assert_eq!(c.routed_count(), 12);
    }

    #[test]
    fn noise_withdrawals_count_globally_only() {
        let mut c = fig4_counters();
        c.on_withdraw(p(9_999));
        assert_eq!(c.total_withdrawals(), 1);
        assert_eq!(c.withdrawn_count(), 0);
        assert_eq!(c.w(&AsLink::new(2, 5)), 0);
    }

    #[test]
    fn reannouncement_after_withdrawal_restores_p_but_keeps_w() {
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        assert_eq!(c.w(&AsLink::new(5, 6)), 1);
        assert_eq!(c.p(&AsLink::new(5, 6)), 20);
        assert!(c.is_withdrawn(&p(2)));
        c.on_announce(p(2), AsPath::new([2u32, 5, 6]));
        assert_eq!(c.w(&AsLink::new(5, 6)), 1, "the withdrawal still happened");
        assert_eq!(c.p(&AsLink::new(5, 6)), 21);
        assert!(!c.is_withdrawn(&p(2)));
        assert_eq!(c.current_path(&p(2)), Some(&AsPath::new([2u32, 5, 6])));
    }

    #[test]
    fn double_withdrawal_is_counted_once_per_message() {
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        c.on_withdraw(p(2));
        // Second withdrawal of an already-withdrawn prefix counts towards W(t)
        // (it is a received message) but cannot touch link counters again.
        assert_eq!(c.total_withdrawals(), 2);
        assert_eq!(c.w(&AsLink::new(5, 6)), 1);
    }

    #[test]
    fn links_with_withdrawals_iterates_only_positive_w() {
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        let links: Vec<AsLink> = c.links_with_withdrawals().map(|(l, _)| *l).collect();
        assert!(links.contains(&AsLink::new(2, 5)));
        assert!(links.contains(&AsLink::new(5, 6)));
        assert!(!links.contains(&AsLink::new(6, 7)));
        assert!(!links.contains(&AsLink::new(6, 8)));
    }

    #[test]
    fn union_counters_count_each_prefix_once() {
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        for i in 0..10 {
            c.on_withdraw(p(30 + i));
        }
        let set = [AsLink::new(5, 6), AsLink::new(6, 8)];
        // The 11 withdrawn prefixes all cross (5,6); the 10 AS 8 prefixes also
        // cross (6,8) but are not double-counted.
        assert_eq!(c.w_union(&set), 11);
        // Still routed across the set: the 10 AS 7 prefixes (via (5,6)).
        assert_eq!(c.p_union(&set), 10);
        // Adding an upstream link brings in its extra still-routed prefixes.
        let with_upstream = [AsLink::new(2, 5), AsLink::new(5, 6)];
        assert_eq!(c.w_union(&with_upstream), 11);
        assert_eq!(
            c.p_union(&with_upstream),
            11,
            "AS 5 prefix + 10 AS 7 prefixes"
        );
        assert_eq!(c.w_union(&[]), 0);
        assert_eq!(c.p_union(&[]), 0);
    }

    #[test]
    fn announce_of_new_prefix_adds_paths() {
        let mut c = LinkCounters::new();
        c.on_announce(p(1), AsPath::new([9u32, 8]));
        assert_eq!(c.p(&AsLink::new(9, 8)), 1);
        assert_eq!(c.routed_count(), 1);
        assert_eq!(c.withdrawn_count(), 0);
    }

    #[test]
    fn indexed_unions_match_scan_reference() {
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        for i in 0..10 {
            c.on_withdraw(p(30 + i));
        }
        for i in 0..5 {
            c.on_announce(p(10 + i), AsPath::new([2u32, 5, 3, 6, 7]));
        }
        let sets: [&[AsLink]; 5] = [
            &[AsLink::new(5, 6)],
            &[AsLink::new(5, 6), AsLink::new(6, 8)],
            &[AsLink::new(2, 5), AsLink::new(5, 6), AsLink::new(6, 7)],
            &[AsLink::new(9, 9)],
            &[],
        ];
        for set in sets {
            assert_eq!(c.w_union(set), c.w_union_scan(set), "set {set:?}");
            assert_eq!(c.p_union(set), c.p_union_scan(set), "set {set:?}");
            assert_eq!(c.union_counts(set), (c.w_union(set), c.p_union(set)));
        }
    }

    #[test]
    fn crossing_prefixes_split_matches_iterators() {
        let mut c = fig4_counters();
        c.on_withdraw(p(2));
        for i in 0..10 {
            c.on_withdraw(p(30 + i));
        }
        let set = [AsLink::new(5, 6)];
        let (withdrawn, routed) = c.crossing_prefixes(&set);
        let scan_withdrawn: PrefixSet = c
            .withdrawn()
            .filter(|(_, path)| path.crosses_any(&set))
            .map(|(q, _)| *q)
            .collect();
        let scan_routed: PrefixSet = c
            .routed()
            .filter(|(_, path)| path.crosses_any(&set))
            .map(|(q, _)| *q)
            .collect();
        assert_eq!(withdrawn, scan_withdrawn);
        assert_eq!(routed, scan_routed);
        assert_eq!(withdrawn.len(), 11);
        assert_eq!(routed.len(), 10);
    }

    #[test]
    fn from_interned_matches_from_rib() {
        let mut rib = InternedRib::new();
        rib.push_owned(p(0), AsPath::new([2u32, 5]));
        for i in 0..8 {
            rib.push_owned(p(1 + i), AsPath::new([2u32, 5, 6]));
        }
        let mut a = LinkCounters::from_interned(&rib);
        let mut b = LinkCounters::from_rib(rib.iter());
        assert_eq!(a.distinct_paths(), 2);
        for c in [&mut a, &mut b] {
            c.on_withdraw(p(3));
            c.on_announce_path(p(4), &AsPath::new([2u32, 9, 6]));
        }
        assert_eq!(a.w(&AsLink::new(5, 6)), b.w(&AsLink::new(5, 6)));
        assert_eq!(a.p(&AsLink::new(5, 6)), b.p(&AsLink::new(5, 6)));
        assert_eq!(a.p(&AsLink::new(9, 6)), 1);
        assert_eq!(
            a.w_union(&[AsLink::new(2, 5)]),
            b.w_union(&[AsLink::new(2, 5)])
        );
        assert_eq!(a.routed_count(), b.routed_count());
        assert_eq!(a.total_withdrawals(), b.total_withdrawals());
    }

    #[test]
    fn start_burst_resets_w_and_purges_old_withdrawals() {
        let mut c = fig4_counters();
        // Burst 1: the AS 8 prefixes go away.
        for i in 0..10 {
            c.on_withdraw(p(30 + i));
        }
        assert_eq!(c.w(&AsLink::new(6, 8)), 10);
        assert_eq!(c.total_withdrawals(), 10);

        // Burst 2 starts with an empty detection window: every counter the
        // paper seeds at burst start must be fresh.
        c.start_burst(std::iter::empty());
        assert_eq!(c.total_withdrawals(), 0);
        assert_eq!(c.w(&AsLink::new(6, 8)), 0);
        assert_eq!(c.w(&AsLink::new(5, 6)), 0);
        assert_eq!(c.withdrawn_count(), 0);
        assert_eq!(c.w_union(&[AsLink::new(6, 8)]), 0);
        // The routed side is untouched.
        assert_eq!(c.routed_count(), 13);
        assert_eq!(c.p(&AsLink::new(5, 6)), 11);
        // Old withdrawals are gone for good: withdrawing one again is noise.
        c.on_withdraw(p(30));
        assert_eq!(c.total_withdrawals(), 1);
        assert_eq!(c.w(&AsLink::new(6, 8)), 0);
        // ... but a re-announcement brings the prefix back under tracking.
        c.on_announce(p(31), AsPath::new([2u32, 5, 6, 8]));
        assert_eq!(c.p(&AsLink::new(6, 8)), 1);
        c.on_withdraw(p(31));
        assert_eq!(c.w(&AsLink::new(6, 8)), 1);
    }

    #[test]
    fn start_burst_replays_the_detection_window() {
        let mut c = fig4_counters();
        // Pre-burst history: p(2) withdrawn long ago.
        c.on_withdraw(p(2));
        // The detection window contains the burst's first withdrawals (p(30),
        // p(31)) plus one noise prefix.
        c.on_withdraw(p(30));
        c.on_withdraw(p(31));
        c.start_burst([p(30), p(31), p(9_999)]);
        // W(t) counts the whole window; W(l) only the known prefixes.
        assert_eq!(c.total_withdrawals(), 3);
        assert_eq!(c.w(&AsLink::new(6, 8)), 2);
        assert_eq!(c.w(&AsLink::new(5, 6)), 2, "p(2)'s old withdrawal purged");
        assert_eq!(c.withdrawn_count(), 2);
        assert!(c.is_withdrawn(&p(30)));
        assert!(!c.is_withdrawn(&p(2)), "pre-burst withdrawal forgotten");
        assert_eq!(c.w_union(&[AsLink::new(6, 8)]), 2);
        assert_eq!(c.w_union_scan(&[AsLink::new(6, 8)]), 2);
    }

    #[test]
    fn dirty_tracking_follows_w_changes() {
        let mut c = fig4_counters();
        assert!(c.take_dirty().is_empty(), "seeding never dirties W");
        c.on_withdraw(p(2));
        let dirty = c.take_dirty();
        assert_eq!(dirty, vec![AsLink::new(2, 5), AsLink::new(5, 6)]);
        assert!(c.take_dirty().is_empty(), "drained");
        c.on_announce(p(10), AsPath::new([2u32, 9]));
        assert!(c.take_dirty().is_empty(), "announcements do not change W");
        c.start_burst([p(2)]);
        assert_eq!(
            c.take_dirty(),
            vec![AsLink::new(2, 5), AsLink::new(5, 6)],
            "burst-start replay re-dirties the resurrected links"
        );
    }
}
