//! The SWIFT inference algorithm (§4 of the paper).
//!
//! The pipeline, per BGP session:
//!
//! 1. [`burst_detect`] — a sliding-window detector spots significant increases
//!    in the withdrawal frequency (burst start/end);
//! 2. [`counters`] — per-link `W(l,t)` / `P(l,t)` counters are maintained from
//!    the session's routing state and the incoming events, over an
//!    interned-path inverted index ([`bitset`]) so link-set queries are bitset
//!    unions rather than RIB scans;
//! 3. [`fit_score`] — links are ranked by the Fit Score, the weighted geometric
//!    mean of Withdrawal Share and Path Share (incrementally via
//!    [`LinkRanker`] on the hot path);
//! 4. [`aggregate`] — the inferred set is selected: all maximum-FS links, plus
//!    greedy common-endpoint aggregation for concurrent (router) failures;
//! 5. [`predictor`] — the inferred links are conservatively translated into the
//!    set of prefixes to reroute;
//! 6. [`engine`] — [`InferenceEngine`] orchestrates the above and applies the
//!    history model's plausibility gating.

pub mod aggregate;
pub mod bitset;
pub mod burst_detect;
pub mod counters;
pub mod engine;
pub mod fit_score;
pub mod kernels;
pub mod predictor;

pub use aggregate::{
    infer_links, infer_links_materialized, infer_links_ranked, infer_links_scan, InferredLinks,
};
pub use bitset::IdBitSet;
pub use burst_detect::{BurstDetector, BurstEvent, WindowHistory};
pub use counters::LinkCounters;
pub use engine::{EngineStatus, InferenceEngine, InferenceResult};
pub use fit_score::{
    fit_score_value, path_share, rank_links, score_link, score_link_set,
    score_link_set_materialized, score_link_set_scan, withdrawal_share, LinkRanker, Score,
};
pub use kernels::{fused_union_counts, KernelStats, ScoreScratch};
pub use predictor::{predict, predict_scan, predicted_prefixes, Prediction};
