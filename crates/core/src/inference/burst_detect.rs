//! Burst detection (§4.1) and the per-window history used to calibrate the
//! detection threshold (§2.2.1).
//!
//! SWIFT classifies the incoming stream as being "in a burst" when the number
//! of withdrawals received over a sliding window exceeds a start threshold
//! (the 99.99th percentile of recent history — 1,500 over 10 s in the paper's
//! dataset), and declares the burst over when the windowed count drops below a
//! stop threshold (the 90th percentile — 9 over 10 s).

use crate::config::InferenceConfig;
use std::collections::VecDeque;
use swift_bgp::Timestamp;

/// What the detector concluded after ingesting one withdrawal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstEvent {
    /// Nothing changed.
    None,
    /// A burst just started (at the given time).
    Started(Timestamp),
    /// The ongoing burst is continuing.
    Ongoing,
    /// The previous burst had already drained below the stop threshold by the
    /// time this withdrawal arrived: the burst is closed and the withdrawal is
    /// counted outside it. Emitted on withdrawal-only streams, where no
    /// announcement ever ticks the clock between two bursts.
    Ended,
}

/// Sliding-window burst detector for one session.
#[derive(Debug, Clone)]
pub struct BurstDetector {
    window: Timestamp,
    start_threshold: usize,
    stop_threshold: usize,
    recent: VecDeque<Timestamp>,
    in_burst: bool,
    burst_start: Option<Timestamp>,
    withdrawals_in_burst: usize,
}

impl BurstDetector {
    /// Creates a detector using the thresholds in `config`.
    pub fn new(config: &InferenceConfig) -> Self {
        BurstDetector {
            window: config.burst_window,
            start_threshold: config.burst_start_threshold,
            stop_threshold: config.burst_stop_threshold,
            recent: VecDeque::new(),
            in_burst: false,
            burst_start: None,
            withdrawals_in_burst: 0,
        }
    }

    /// Creates a detector with explicit thresholds (used by the trace tooling).
    pub fn with_thresholds(
        window: Timestamp,
        start_threshold: usize,
        stop_threshold: usize,
    ) -> Self {
        BurstDetector {
            window,
            start_threshold,
            stop_threshold,
            recent: VecDeque::new(),
            in_burst: false,
            burst_start: None,
            withdrawals_in_burst: 0,
        }
    }

    /// Ingests one withdrawal received at `t` and reports any burst
    /// state change.
    ///
    /// Before the withdrawal is admitted, the stop condition is checked
    /// against the window as it stood at `t` — exactly what an
    /// [`BurstDetector::on_tick`] at `t` would have seen. Without this, a
    /// burst on a withdrawal-only stream can never end: the next burst's
    /// first withdrawal would be classified as `Ongoing` no matter how long
    /// the silence before it.
    pub fn on_withdrawal(&mut self, t: Timestamp) -> BurstEvent {
        let mut ended = false;
        if self.in_burst {
            self.evict(t);
            if self.recent.len() <= self.stop_threshold {
                self.in_burst = false;
                self.burst_start = None;
                self.withdrawals_in_burst = 0;
                ended = true;
            }
        }
        self.recent.push_back(t);
        self.evict(t);
        if self.in_burst {
            self.withdrawals_in_burst += 1;
            return BurstEvent::Ongoing;
        }
        if self.recent.len() >= self.start_threshold {
            self.in_burst = true;
            let start = *self.recent.front().expect("window not empty");
            self.burst_start = Some(start);
            self.withdrawals_in_burst = self.recent.len();
            return BurstEvent::Started(start);
        }
        if ended {
            return BurstEvent::Ended;
        }
        BurstEvent::None
    }

    /// Advances time without a withdrawal (e.g. on announcements or
    /// keepalives); may close the current burst.
    ///
    /// Returns `true` if a burst ended at this call.
    pub fn on_tick(&mut self, t: Timestamp) -> bool {
        self.evict(t);
        if self.in_burst && self.recent.len() <= self.stop_threshold {
            self.in_burst = false;
            self.burst_start = None;
            self.withdrawals_in_burst = 0;
            return true;
        }
        false
    }

    fn evict(&mut self, now: Timestamp) {
        let cutoff = now.saturating_sub(self.window);
        while let Some(front) = self.recent.front() {
            if *front < cutoff {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    /// Returns `true` while a burst is ongoing.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// The start time of the ongoing burst, if any.
    pub fn burst_start(&self) -> Option<Timestamp> {
        self.burst_start
    }

    /// Withdrawals received since the ongoing burst started.
    pub fn withdrawals_in_burst(&self) -> usize {
        self.withdrawals_in_burst
    }

    /// Withdrawals currently inside the sliding window.
    pub fn window_count(&self) -> usize {
        self.recent.len()
    }
}

/// History of per-window withdrawal counts, used to derive the burst start
/// threshold as a percentile of recent activity (the paper uses the 99.99th
/// percentile of the counts observed over the previous month).
#[derive(Debug, Clone, Default)]
pub struct WindowHistory {
    counts: Vec<usize>,
}

impl WindowHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the withdrawal count of one window.
    pub fn record(&mut self, count: usize) {
        self.counts.push(count);
    }

    /// Number of recorded windows.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if no window has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The `q`-quantile (0.0–1.0) of the recorded counts, using the
    /// nearest-rank method. Returns `None` on an empty history.
    pub fn percentile(&self, q: f64) -> Option<usize> {
        if self.counts.is_empty() {
            return None;
        }
        let mut sorted = self.counts.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// A suggested burst start threshold: the 99.99th percentile of history,
    /// floored at `minimum` (the paper floors it at 1,500).
    pub fn suggested_start_threshold(&self, minimum: usize) -> usize {
        self.percentile(0.9999).unwrap_or(minimum).max(minimum)
    }

    /// A suggested burst stop threshold: the 90th percentile of history,
    /// floored at `minimum`.
    pub fn suggested_stop_threshold(&self, minimum: usize) -> usize {
        self.percentile(0.90).unwrap_or(minimum).max(minimum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_bgp::SECOND;

    fn detector(start: usize, stop: usize) -> BurstDetector {
        BurstDetector::with_thresholds(10 * SECOND, start, stop)
    }

    #[test]
    fn burst_starts_when_window_count_reaches_threshold() {
        let mut d = detector(5, 1);
        let mut started_at = None;
        for i in 0..10u64 {
            if let BurstEvent::Started(t) = d.on_withdrawal(i * SECOND / 10) {
                started_at = Some((i, t))
            }
        }
        let (i, t) = started_at.expect("burst should start");
        assert_eq!(i, 4, "fifth withdrawal triggers the threshold of 5");
        assert_eq!(t, 0, "burst start is the first withdrawal in the window");
        assert!(d.in_burst());
        assert_eq!(d.withdrawals_in_burst(), 10);
    }

    #[test]
    fn no_burst_for_slow_trickle() {
        let mut d = detector(5, 1);
        for i in 0..100u64 {
            // One withdrawal every 30 seconds: never 5 in a 10 s window.
            assert_eq!(d.on_withdrawal(i * 30 * SECOND), BurstEvent::None);
        }
        assert!(!d.in_burst());
    }

    #[test]
    fn burst_ends_when_window_drains() {
        let mut d = detector(5, 1);
        for i in 0..6u64 {
            d.on_withdrawal(i * 1_000);
        }
        assert!(d.in_burst());
        // 30 seconds of silence: the window empties below the stop threshold.
        assert!(d.on_tick(30 * SECOND));
        assert!(!d.in_burst());
        assert_eq!(d.burst_start(), None);
        // Ticking again does not report another end.
        assert!(!d.on_tick(31 * SECOND));
    }

    #[test]
    fn gap_in_withdrawal_only_stream_ends_the_burst() {
        let mut d = detector(5, 1);
        for i in 0..8u64 {
            d.on_withdrawal(i * 1_000);
        }
        assert!(d.in_burst());
        // One lone withdrawal a minute later: the window drained long ago, so
        // the burst must close and the straggler sits outside any burst.
        assert_eq!(d.on_withdrawal(60 * SECOND), BurstEvent::Ended);
        assert!(!d.in_burst());
        assert_eq!(d.burst_start(), None);
        assert_eq!(d.withdrawals_in_burst(), 0);
        assert_eq!(d.window_count(), 1);
        // A fresh burst can then start from scratch.
        let mut started = None;
        for i in 0..5u64 {
            if let BurstEvent::Started(t) = d.on_withdrawal(120 * SECOND + i * 1_000) {
                started = Some(t);
            }
        }
        assert_eq!(started, Some(120 * SECOND));
        assert_eq!(d.withdrawals_in_burst(), 5);
    }

    #[test]
    fn steady_burst_is_not_ended_by_the_stop_check() {
        let mut d = detector(5, 1);
        for i in 0..1_000u64 {
            let ev = d.on_withdrawal(i * 500_000); // 2/s, window holds 20
            assert_ne!(ev, BurstEvent::Ended);
            if i >= 4 {
                assert_ne!(ev, BurstEvent::None, "burst must stay open");
            }
        }
        assert!(d.in_burst());
    }

    #[test]
    fn window_eviction_is_time_based() {
        let mut d = detector(3, 0);
        d.on_withdrawal(0);
        d.on_withdrawal(SECOND);
        assert_eq!(d.window_count(), 2);
        d.on_withdrawal(15 * SECOND);
        // The first two fall outside the 10 s window.
        assert_eq!(d.window_count(), 1);
        assert!(!d.in_burst());
    }

    #[test]
    fn default_config_thresholds() {
        let d = BurstDetector::new(&InferenceConfig::default());
        assert_eq!(d.start_threshold, 1_500);
        assert_eq!(d.stop_threshold, 9);
        assert_eq!(d.window, 10 * SECOND);
    }

    #[test]
    fn history_percentiles() {
        let mut h = WindowHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
        for c in 1..=100 {
            h.record(c);
        }
        assert_eq!(h.len(), 100);
        assert_eq!(h.percentile(0.5), Some(50));
        assert_eq!(h.percentile(0.9), Some(90));
        assert_eq!(h.percentile(1.0), Some(100));
        assert_eq!(h.percentile(0.0), Some(1));
        // Suggested thresholds respect the floor.
        assert_eq!(h.suggested_start_threshold(1_500), 1_500);
        assert_eq!(h.suggested_stop_threshold(9), 90);
        let mut big = WindowHistory::new();
        for c in [0, 0, 0, 5_000] {
            big.record(c);
        }
        assert_eq!(big.suggested_start_threshold(1_500), 5_000);
    }
}
