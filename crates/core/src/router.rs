//! The SWIFTED router: the integration of inference and encoding (§3, Fig. 3).
//!
//! [`SwiftRouter`] models the workflow of a border router with SWIFT deployed:
//!
//! 1. before any outage it maintains its routing table, pre-computes backup
//!    next-hops and keeps the two-stage forwarding table in sync;
//! 2. every BGP session feeds a per-session [`InferenceEngine`];
//! 3. when an inference is accepted, the router installs the handful of
//!    stage-2 reroute rules returned by the encoding scheme — restoring
//!    connectivity for all predicted prefixes at once;
//! 4. once BGP has reconverged the SWIFT rules are removed and the stage-1
//!    tags of the prefixes whose routes changed are refreshed in place.
//!
//! The router is a thin inline composition of the two pipeline halves in
//! [`crate::pipeline`]: a [`SessionEngine`] per session and one [`Applier`].
//! The sharded `swift-runtime` drives the *same* two types across threads, so
//! the single-threaded router doubles as the executable specification of the
//! concurrent runtime's per-session behaviour.

use crate::config::SwiftConfig;
use crate::encoding::{ReroutingPolicy, TwoStageTable};
use crate::inference::{EngineStatus, InferenceEngine};
use crate::pipeline::{session_engines, Applier, SessionEngine};
use std::collections::BTreeMap;
use swift_bgp::{AsLink, ElementaryEvent, PeerId, Prefix, PrefixSet, RoutingTable, Timestamp};

/// What the router did in response to an accepted inference.
#[derive(Debug, Clone)]
pub struct RerouteAction {
    /// The session on which the burst was observed.
    pub session: PeerId,
    /// When the reroute was triggered.
    pub time: Timestamp,
    /// The inferred failed links.
    pub links: Vec<AsLink>,
    /// The prefixes predicted as affected (and therefore rerouted).
    pub predicted: PrefixSet,
    /// Number of stage-2 rules installed — the number of data-plane updates.
    pub rules_installed: usize,
}

/// A border router with SWIFT deployed.
#[derive(Debug, Clone)]
pub struct SwiftRouter {
    engines: BTreeMap<PeerId, SessionEngine>,
    applier: Applier,
}

impl SwiftRouter {
    /// Builds a SWIFTED router from its current routing state.
    pub fn new(config: SwiftConfig, table: RoutingTable, policy: ReroutingPolicy) -> Self {
        let engines = session_engines(&config, &table);
        let applier = Applier::new(config, table, policy);
        SwiftRouter { engines, applier }
    }

    /// The router's configuration.
    pub fn config(&self) -> &SwiftConfig {
        self.applier.config()
    }

    /// The current routing table.
    pub fn routing_table(&self) -> &RoutingTable {
        self.applier.table()
    }

    /// The two-stage forwarding table.
    pub fn forwarding(&self) -> &TwoStageTable {
        self.applier.forwarding()
    }

    /// The serialized half of the pipeline (routing state, rule installs,
    /// action log).
    pub fn applier(&self) -> &Applier {
        &self.applier
    }

    /// The per-session inference engine for `peer`, if the session exists.
    pub fn engine(&self, peer: PeerId) -> Option<&InferenceEngine> {
        self.engines.get(&peer).map(|s| s.engine())
    }

    /// Every reroute action taken so far.
    pub fn actions(&self) -> &[RerouteAction] {
        self.applier.actions()
    }

    /// Processes one per-prefix event received on the session with `peer`.
    ///
    /// Returns the reroute action if this event triggered an accepted
    /// inference. Events arriving after the burst's inference was accepted
    /// ([`EngineStatus::AlreadyAccepted`]) change nothing: the reroute rules
    /// are already installed and the router is waiting for BGP to converge.
    pub fn handle_event(&mut self, peer: PeerId, event: &ElementaryEvent) -> Option<RerouteAction> {
        // Keep the routing table in sync (the FIB rebuild that BGP would do is
        // intentionally *not* performed per event — that is the slow path SWIFT
        // works around; see `resync_after_convergence`).
        self.applier.note_event(peer, event);
        let engine = self.engines.get_mut(&peer)?;
        match engine.process(event) {
            (EngineStatus::Accepted, Some(result)) => {
                Some(self.applier.apply_inference(peer, &result))
            }
            _ => None,
        }
    }

    /// Processes a whole stream of events on one session.
    pub fn handle_stream<'a, I>(&mut self, peer: PeerId, events: I) -> Vec<RerouteAction>
    where
        I: IntoIterator<Item = &'a ElementaryEvent>,
    {
        events
            .into_iter()
            .filter_map(|ev| self.handle_event(peer, ev))
            .collect()
    }

    /// The next-hop currently used to forward traffic for `prefix`.
    pub fn forwarding_next_hop(&self, prefix: &Prefix) -> Option<PeerId> {
        self.applier.forwarding_next_hop(prefix)
    }

    /// Called once BGP has fully reconverged: removes the SWIFT rules of every
    /// outstanding reroute and refreshes the tags of the prefixes whose routes
    /// changed — incrementally, without rebuilding the forwarding table (see
    /// [`Applier::resync_after_convergence`]). Returns the number of SWIFT
    /// rules removed.
    pub fn resync_after_convergence(&mut self) -> usize {
        self.applier.resync_after_convergence()
    }

    /// Reference resync: the pre-incremental full rebuild, kept as the
    /// baseline `resync_after_convergence` is validated against.
    pub fn resync_with_rebuild(&mut self) -> usize {
        self.applier.resync_with_rebuild()
    }

    /// Safety check (Lemma 3.3): returns the prefixes among `predicted` whose
    /// *current* forwarding next-hop still offers a path crossing one of the
    /// inferred links — ideally none after a reroute.
    pub fn unsafe_reroutes(&self, predicted: &PrefixSet, links: &[AsLink]) -> PrefixSet {
        self.applier.unsafe_reroutes(predicted, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EncodingConfig, InferenceConfig};
    use swift_bgp::{AsPath, Asn, Route, RouteAttributes};

    fn p(i: u32) -> Prefix {
        Prefix::nth_slash24(i)
    }

    fn config() -> SwiftConfig {
        SwiftConfig {
            inference: InferenceConfig {
                burst_start_threshold: 50,
                burst_stop_threshold: 2,
                triggering_threshold: 100,
                use_history: false,
                ..Default::default()
            },
            encoding: EncodingConfig {
                min_prefixes_per_link: 50,
                ..Default::default()
            },
        }
    }

    /// Fig. 1 routing table with `n` prefixes per remote origin and peer 2
    /// preferred via LOCAL_PREF.
    fn fig1_table(n: u32) -> RoutingTable {
        let mut t = RoutingTable::new();
        t.add_peer(PeerId(2), Asn(2));
        t.add_peer(PeerId(3), Asn(3));
        t.add_peer(PeerId(4), Asn(4));
        let origins: [(&[u32], &[u32], &[u32]); 3] = [
            (&[2, 5, 6], &[3, 6], &[4, 5, 6]),
            (&[2, 5, 6, 7], &[3, 6, 7], &[4, 5, 6, 7]),
            (&[2, 5, 6, 8], &[3, 6, 8], &[4, 5, 6, 8]),
        ];
        for (o, (via2, via3, via4)) in origins.iter().enumerate() {
            for i in 0..n {
                let idx = o as u32 * n + i;
                let mut attrs2 = RouteAttributes::from_path(AsPath::new(via2.iter().copied()));
                attrs2.local_pref = Some(200);
                t.announce(PeerId(2), p(idx), Route::new(PeerId(2), attrs2, 0));
                t.announce(
                    PeerId(3),
                    p(idx),
                    Route::new(
                        PeerId(3),
                        RouteAttributes::from_path(AsPath::new(via3.iter().copied())),
                        0,
                    ),
                );
                t.announce(
                    PeerId(4),
                    p(idx),
                    Route::new(
                        PeerId(4),
                        RouteAttributes::from_path(AsPath::new(via4.iter().copied())),
                        0,
                    ),
                );
            }
        }
        t
    }

    /// Withdrawals for the AS 6 and AS 8 prefixes (the Fig. 1 failure of (5,6)
    /// as seen on the session with AS 2), 1 ms apart.
    fn fig1_burst(n: u32) -> Vec<ElementaryEvent> {
        let mut events = Vec::new();
        let mut t = 0u64;
        for i in 0..n {
            events.push(ElementaryEvent::Withdraw {
                timestamp: t,
                prefix: p(i),
            });
            t += 1_000;
        }
        for i in 2 * n..3 * n {
            events.push(ElementaryEvent::Withdraw {
                timestamp: t,
                prefix: p(i),
            });
            t += 1_000;
        }
        events
    }

    #[test]
    fn router_reroutes_the_predicted_prefixes_with_few_rules() {
        let table = fig1_table(100);
        let mut router = SwiftRouter::new(config(), table, ReroutingPolicy::allow_all());
        // Before the outage everything goes to peer 2 (LOCAL_PREF 200).
        assert_eq!(router.forwarding_next_hop(&p(0)), Some(PeerId(2)));

        let actions = router.handle_stream(PeerId(2), fig1_burst(100).iter());
        assert_eq!(actions.len(), 1, "one accepted inference");
        let action = &actions[0];
        assert_eq!(action.session, PeerId(2));
        assert!(action.links.contains(&AsLink::new(5, 6)));
        // The AS 7 prefixes (indices 100..200) are predicted although not yet
        // withdrawn.
        assert!(action.predicted.contains(&p(150)));
        // Rules installed are few — not one per prefix.
        assert!(
            action.rules_installed <= 8,
            "got {}",
            action.rules_installed
        );
        assert_eq!(router.actions().len(), 1);
    }

    #[test]
    fn rerouted_traffic_avoids_the_failed_link() {
        let table = fig1_table(100);
        let mut router = SwiftRouter::new(config(), table, ReroutingPolicy::allow_all());
        let actions = router.handle_stream(PeerId(2), fig1_burst(100).iter());
        let action = &actions[0];
        // Safety: no predicted prefix may still be forwarded onto a next-hop
        // whose announced path crosses an inferred link.
        let unsafe_set = router.unsafe_reroutes(&action.predicted, &action.links);
        assert!(
            unsafe_set.is_empty(),
            "{} prefixes still forwarded through the outage",
            unsafe_set.len()
        );
        // The AS 7 prefixes must now leave via peer 3 — the only neighbour
        // avoiding both endpoints of (2,5)/(5,6) region... via its (3 6 7) path.
        let nh = router.forwarding_next_hop(&p(150));
        assert_eq!(nh, Some(PeerId(3)));
    }

    #[test]
    fn resync_clears_swift_state() {
        let table = fig1_table(100);
        let mut router = SwiftRouter::new(config(), table, ReroutingPolicy::allow_all());
        router.handle_stream(PeerId(2), fig1_burst(100).iter());
        assert!(router.forwarding().swift_rule_count() > 0);
        let removed = router.resync_after_convergence();
        assert!(removed > 0);
        assert_eq!(router.forwarding().swift_rule_count(), 0);
    }

    /// The incremental resync must be indistinguishable from the full rebuild
    /// when BGP converges back to the pre-outage routes (transient failure:
    /// the withdrawn prefixes return with their original paths) — rule for
    /// rule and tag for tag.
    #[test]
    fn incremental_resync_equals_rebuild_when_routes_restore() {
        let table = fig1_table(100);
        let mut router = SwiftRouter::new(config(), table, ReroutingPolicy::allow_all());
        router.handle_stream(PeerId(2), fig1_burst(100).iter());
        assert!(router.forwarding().swift_rule_count() > 0);

        // BGP reconverges: the link comes back and peer 2 re-announces every
        // withdrawn prefix with its original attributes.
        let mut t = 10_000_000u64;
        let reannounce: Vec<(u32, &[u32])> = (0..100)
            .map(|i| (i, &[2u32, 5, 6][..]))
            .chain((200..300).map(|i| (i, &[2u32, 5, 6, 8][..])))
            .collect();
        for (idx, path) in reannounce {
            let mut attrs = RouteAttributes::from_path(AsPath::new(path.iter().copied()));
            attrs.local_pref = Some(200);
            router.handle_event(
                PeerId(2),
                &ElementaryEvent::Announce {
                    timestamp: t,
                    prefix: p(idx),
                    attrs,
                },
            );
            t += 1_000;
        }

        let mut incremental = router.clone();
        let mut rebuilt = router;
        let removed_inc = incremental.resync_after_convergence();
        let removed_reb = rebuilt.resync_with_rebuild();
        assert_eq!(removed_inc, removed_reb);
        assert_eq!(incremental.forwarding().swift_rule_count(), 0);

        let fi = incremental.forwarding();
        let fr = rebuilt.forwarding();
        assert_eq!(fi.stage1_len(), fr.stage1_len());
        assert_eq!(fi.stage2_rules(), fr.stage2_rules());
        for i in 0..300 {
            assert_eq!(fi.tag_of(&p(i)), fr.tag_of(&p(i)), "tag of prefix {i}");
            assert_eq!(fi.lookup(&p(i)), fr.lookup(&p(i)), "lookup of prefix {i}");
        }
    }

    /// When convergence permanently moves routes (the withdrawn prefixes stay
    /// gone from the primary session), the incremental resync reuses the
    /// offline-precomputed encoding plan while the rebuild recomputes it —
    /// tags may differ, but the *forwarding behaviour* must not.
    #[test]
    fn incremental_resync_matches_rebuild_forwarding_after_path_changes() {
        let table = fig1_table(100);
        let mut router = SwiftRouter::new(config(), table, ReroutingPolicy::allow_all());
        router.handle_stream(PeerId(2), fig1_burst(100).iter());

        let mut incremental = router.clone();
        let mut rebuilt = router;
        incremental.resync_after_convergence();
        rebuilt.resync_with_rebuild();
        assert_eq!(incremental.forwarding().swift_rule_count(), 0);
        assert_eq!(rebuilt.forwarding().swift_rule_count(), 0);
        for i in 0..300 {
            assert_eq!(
                incremental.forwarding_next_hop(&p(i)),
                rebuilt.forwarding_next_hop(&p(i)),
                "forwarding of prefix {i} diverged"
            );
        }
        // The withdrawn prefixes now leave via the next-best session (peer 3).
        assert_eq!(incremental.forwarding_next_hop(&p(0)), Some(PeerId(3)));
    }

    #[test]
    fn uneventful_sessions_trigger_nothing() {
        let table = fig1_table(100);
        let mut router = SwiftRouter::new(config(), table, ReroutingPolicy::allow_all());
        // A handful of withdrawals on peer 3's session: no burst, no action.
        for i in 0..10u64 {
            let act = router.handle_event(
                PeerId(3),
                &ElementaryEvent::Withdraw {
                    timestamp: i * 60_000_000,
                    prefix: p(i as u32),
                },
            );
            assert!(act.is_none());
        }
        assert!(router.actions().is_empty());
        // Unknown sessions are ignored gracefully.
        assert!(router
            .handle_event(
                PeerId(99),
                &ElementaryEvent::Withdraw {
                    timestamp: 0,
                    prefix: p(0),
                }
            )
            .is_none());
    }

    #[test]
    fn engines_exist_per_session() {
        let table = fig1_table(10);
        let router = SwiftRouter::new(config(), table, ReroutingPolicy::allow_all());
        assert!(router.engine(PeerId(2)).is_some());
        assert!(router.engine(PeerId(3)).is_some());
        assert!(router.engine(PeerId(4)).is_some());
        assert!(router.engine(PeerId(9)).is_none());
        assert_eq!(router.forwarding().stage1_len(), 30);
    }

    /// The applier's deferred-RIB mode (used by the sharded runtime) must
    /// produce the same routing table and resync outcome as the eager mode.
    #[test]
    fn deferred_applier_converges_to_the_eager_state() {
        let cfg = config();
        let table = fig1_table(50);
        let mut eager = Applier::new(cfg.clone(), table.clone(), ReroutingPolicy::allow_all());
        let mut deferred =
            Applier::new(cfg, table, ReroutingPolicy::allow_all()).with_deferred_rib();
        let events = fig1_burst(50);
        for ev in &events {
            eager.note_event(PeerId(2), ev);
            deferred.note_event(PeerId(2), ev);
        }
        assert_eq!(deferred.pending_events(), events.len());
        // Before the sync the deferred table still sees the pre-burst routes.
        assert!(deferred.table().best(&p(0)).is_some());
        assert_eq!(deferred.sync_rib(), events.len());
        assert_eq!(deferred.pending_events(), 0);
        assert_eq!(
            eager.table().best(&p(0)).map(|r| r.peer),
            deferred.table().best(&p(0)).map(|r| r.peer)
        );
        assert_eq!(
            eager.table().prefix_count(),
            deferred.table().prefix_count()
        );
        // Resyncs agree too (sync_rib is implicit in resync).
        assert_eq!(
            eager.resync_after_convergence(),
            deferred.resync_after_convergence()
        );
        for i in 0..150 {
            assert_eq!(
                eager.forwarding_next_hop(&p(i)),
                deferred.forwarding_next_hop(&p(i))
            );
        }
    }
}
