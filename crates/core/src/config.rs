//! Configuration of the SWIFT algorithms.
//!
//! Defaults reproduce the values used in the paper: WS weighted three times
//! more than PS (§4.2 calibration), a 2,500-withdrawal triggering threshold,
//! the burst start/stop thresholds of §2.2.1 (1,500 / 9 withdrawals over a 10 s
//! window — the 99.99th / 90th percentiles of the measured per-window counts),
//! and the prediction-plausibility table of the history model.

use swift_bgp::{Timestamp, SECOND};

/// Tunable parameters of the SWIFT inference algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceConfig {
    /// Weight of the Withdrawal Share in the fit score (paper: 3).
    pub ws_weight: f64,
    /// Weight of the Path Share in the fit score (paper: 1).
    pub ps_weight: f64,
    /// Sliding-window length used by burst detection (paper: 10 s).
    pub burst_window: Timestamp,
    /// Withdrawals per window that start a burst (paper: 1,500).
    pub burst_start_threshold: usize,
    /// Withdrawals per window below which a burst ends (paper: 9).
    pub burst_stop_threshold: usize,
    /// Withdrawals received (since burst start) between inference attempts
    /// (paper: 2,500).
    pub triggering_threshold: usize,
    /// Whether the history model gates inferences on prediction plausibility
    /// (Fig. 6(b) vs Fig. 6(a)).
    pub use_history: bool,
    /// History-model plausibility table: `(withdrawals received, maximum
    /// plausible predicted withdrawals)`. An inference made after receiving
    /// `r` withdrawals is accepted only if the predicted number of affected
    /// prefixes is below the cap of the first row with `received >= r`'s cap —
    /// see [`InferenceConfig::plausibility_cap`].
    pub plausibility_table: Vec<(usize, usize)>,
    /// After this many withdrawals the inference is returned regardless of the
    /// predicted size (paper: 20,000).
    pub force_threshold: usize,
    /// Relative tolerance when comparing fit scores for the "maximum FS set".
    pub fs_tolerance: f64,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            ws_weight: 3.0,
            ps_weight: 1.0,
            burst_window: 10 * SECOND,
            burst_start_threshold: 1_500,
            burst_stop_threshold: 9,
            triggering_threshold: 2_500,
            use_history: true,
            plausibility_table: vec![
                (2_500, 10_000),
                (5_000, 20_000),
                (7_500, 50_000),
                (10_000, 100_000),
            ],
            force_threshold: 20_000,
            fs_tolerance: 1e-9,
        }
    }
}

impl InferenceConfig {
    /// The paper's configuration with the history model disabled (Fig. 6(a)).
    pub fn without_history() -> Self {
        InferenceConfig {
            use_history: false,
            ..Default::default()
        }
    }

    /// The maximum plausible prediction size after having received `received`
    /// withdrawals. Returns `None` if `received` is past
    /// [`InferenceConfig::force_threshold`] (no cap: always accept).
    pub fn plausibility_cap(&self, received: usize) -> Option<usize> {
        if received >= self.force_threshold {
            return None;
        }
        // Use the cap of the largest table row not exceeding `received`; if
        // `received` is below the first row, use the first row's cap.
        let mut cap = self.plausibility_table.first().map(|(_, c)| *c);
        for (r, c) in &self.plausibility_table {
            if received >= *r {
                cap = Some(*c);
            }
        }
        cap
    }

    /// Normalised WS/PS weights (sum to 1).
    pub fn normalized_weights(&self) -> (f64, f64) {
        let total = self.ws_weight + self.ps_weight;
        (self.ws_weight / total, self.ps_weight / total)
    }
}

/// Tunable parameters of the SWIFT encoding scheme (§5).
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingConfig {
    /// Total number of tag bits available (paper: 48, the destination MAC).
    pub total_bits: u8,
    /// Bits reserved for the AS-path part of the tag (paper sweep: 13–28;
    /// default 18, the value §6.4 recommends).
    pub path_bits: u8,
    /// Deepest AS-path position encoded (paper: up to position 5, i.e. depth 4
    /// remote links beyond the immediate next-hop link).
    pub max_depth: usize,
    /// Links carrying fewer prefixes than this are not encoded (paper: 1,500).
    pub min_prefixes_per_link: usize,
}

impl Default for EncodingConfig {
    fn default() -> Self {
        EncodingConfig {
            total_bits: 48,
            path_bits: 18,
            max_depth: 4,
            min_prefixes_per_link: 1_500,
        }
    }
}

impl EncodingConfig {
    /// Bits left for the next-hop part of the tag.
    pub fn nexthop_part_bits(&self) -> u8 {
        self.total_bits.saturating_sub(self.path_bits)
    }

    /// Bits available per next-hop slot: the next-hop part holds one primary
    /// next-hop plus one backup per protected depth.
    pub fn bits_per_nexthop(&self) -> u8 {
        let slots = (self.max_depth + 1) as u8;
        self.nexthop_part_bits() / slots
    }

    /// Maximum number of distinct next-hops representable per slot.
    pub fn max_nexthops(&self) -> usize {
        1usize << self.bits_per_nexthop()
    }
}

/// Complete SWIFT configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwiftConfig {
    /// Inference parameters.
    pub inference: InferenceConfig,
    /// Encoding parameters.
    pub encoding: EncodingConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = InferenceConfig::default();
        assert_eq!(c.ws_weight, 3.0);
        assert_eq!(c.ps_weight, 1.0);
        assert_eq!(c.burst_start_threshold, 1_500);
        assert_eq!(c.burst_stop_threshold, 9);
        assert_eq!(c.burst_window, 10 * SECOND);
        assert_eq!(c.triggering_threshold, 2_500);
        assert_eq!(c.force_threshold, 20_000);
        assert!(c.use_history);

        let e = EncodingConfig::default();
        assert_eq!(e.total_bits, 48);
        assert_eq!(e.path_bits, 18);
        assert_eq!(e.max_depth, 4);
        assert_eq!(e.min_prefixes_per_link, 1_500);
    }

    #[test]
    fn plausibility_caps_follow_table() {
        let c = InferenceConfig::default();
        assert_eq!(c.plausibility_cap(2_500), Some(10_000));
        assert_eq!(c.plausibility_cap(3_000), Some(10_000));
        assert_eq!(c.plausibility_cap(5_000), Some(20_000));
        assert_eq!(c.plausibility_cap(7_500), Some(50_000));
        assert_eq!(c.plausibility_cap(10_000), Some(100_000));
        assert_eq!(c.plausibility_cap(19_999), Some(100_000));
        assert_eq!(c.plausibility_cap(20_000), None);
        assert_eq!(c.plausibility_cap(1_000), Some(10_000));
    }

    #[test]
    fn normalized_weights_sum_to_one() {
        let (w, p) = InferenceConfig::default().normalized_weights();
        assert!((w + p - 1.0).abs() < 1e-12);
        assert!((w - 0.75).abs() < 1e-12);
    }

    #[test]
    fn encoding_bit_budget_matches_paper_example() {
        // §6.4: with 48-bit tags, 18 bits for AS paths and depth-4 protection,
        // 30 / 5 = 6 bits per next-hop slot → 64 next-hops.
        let e = EncodingConfig::default();
        assert_eq!(e.nexthop_part_bits(), 30);
        assert_eq!(e.bits_per_nexthop(), 6);
        assert_eq!(e.max_nexthops(), 64);
        // Depth-3 protection leaves 128 next-hops with two more path bits.
        let e3 = EncodingConfig {
            path_bits: 20,
            max_depth: 3,
            ..Default::default()
        };
        assert_eq!(e3.bits_per_nexthop(), 7);
        assert_eq!(e3.max_nexthops(), 128);
    }

    #[test]
    fn without_history_only_toggles_history() {
        let a = InferenceConfig::default();
        let b = InferenceConfig::without_history();
        assert!(!b.use_history);
        assert_eq!(a.triggering_threshold, b.triggering_threshold);
    }
}
