//! # swift-core
//!
//! The SWIFT predictive fast-reroute framework (Holterbach et al., SIGCOMM
//! 2017): the inference algorithm that localises remote outages from the first
//! few thousand BGP withdrawals of a burst, and the data-plane encoding scheme
//! that reroutes every affected prefix with a handful of rule updates.
//!
//! The crate is organised exactly like the paper:
//!
//! * [`inference`] — burst detection, the WS/PS/Fit-Score link ranking, the
//!   history model and the prefix prediction (§4);
//! * [`encoding`] — tag layout, per-position bit allocation, backup next-hop
//!   computation, rerouting policies and the two-stage forwarding table (§5);
//! * [`pipeline`] — the reroute pipeline split into its per-session half
//!   ([`SessionEngine`]) and its serialized half ([`Applier`]), shared by the
//!   inline router below and the sharded `swift-runtime`;
//! * [`router`] — [`SwiftRouter`], the integration of both halves on a border
//!   router (§3);
//! * [`metrics`] — the TPR/FPR/CPR machinery used by the evaluation (§6);
//! * [`config`] — every tunable, with the paper's defaults.
//!
//! ```
//! use swift_core::{SwiftConfig, SwiftRouter};
//! use swift_core::encoding::ReroutingPolicy;
//! use swift_bgp::RoutingTable;
//!
//! // An (empty) router: real tables come from swift-bgpsim or swift-traces.
//! let router = SwiftRouter::new(
//!     SwiftConfig::default(),
//!     RoutingTable::new(),
//!     ReroutingPolicy::allow_all(),
//! );
//! assert_eq!(router.actions().len(), 0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod encoding;
pub mod inference;
pub mod metrics;
pub mod pipeline;
pub mod router;

pub use config::{EncodingConfig, InferenceConfig, SwiftConfig};
pub use encoding::{EncodingPlan, ReroutingPolicy, TwoStageTable};
pub use inference::{InferenceEngine, InferenceResult, InferredLinks, Prediction};
pub use metrics::{Classification, LatencyRecorder, LatencySummary, Quadrant};
pub use pipeline::{session_engines, Applier, SessionEngine};
pub use router::{RerouteAction, SwiftRouter};
